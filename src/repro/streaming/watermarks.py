"""Out-of-order handling: bounded-lateness reordering with watermarks.

Satellite AIS arrives minutes late and interleaved with terrestrial data
(§1 "sparse, or delayed ... multi-level processing issues").  Downstream
operators want time order; this operator restores it up to a bounded
lateness, counting what it had to drop.
"""

import enum
import heapq
from collections.abc import Iterator

from repro.streaming.stream import Record, Stream


class LateRecordPolicy(enum.Enum):
    """What to do with records older than the watermark."""

    DROP = "drop"
    #: Emit immediately (out of order) rather than losing data.
    EMIT_OUT_OF_ORDER = "emit"


class ReorderStats:
    """Mutable counters exposed by :func:`reorder_with_watermark`."""

    def __init__(self) -> None:
        self.emitted = 0
        self.late = 0
        self.max_observed_skew_s = 0.0


def reorder_with_watermark(
    stream: Stream,
    max_lateness_s: float,
    policy: LateRecordPolicy = LateRecordPolicy.DROP,
    stats: ReorderStats | None = None,
) -> Stream:
    """Buffer records and release them in time order.

    The watermark trails the maximum seen event time by ``max_lateness_s``;
    records below the watermark on arrival are late and handled per
    ``policy``.  Memory is bounded by the arrival rate times the lateness
    bound.
    """
    if max_lateness_s < 0:
        raise ValueError("max_lateness_s must be non-negative")
    stats = stats if stats is not None else ReorderStats()

    def _gen() -> Iterator[Record]:
        heap: list[Record] = []
        watermark = float("-inf")
        for record in stream:
            if record.t < watermark:
                stats.late += 1
                if policy is LateRecordPolicy.EMIT_OUT_OF_ORDER:
                    stats.emitted += 1
                    yield record
                continue
            heapq.heappush(heap, record)
            high = max(watermark + max_lateness_s, record.t)
            stats.max_observed_skew_s = max(
                stats.max_observed_skew_s, high - record.t
            )
            new_watermark = high - max_lateness_s
            if new_watermark > watermark:
                watermark = new_watermark
                while heap and heap[0].t <= watermark:
                    stats.emitted += 1
                    yield heapq.heappop(heap)
        while heap:
            stats.emitted += 1
            yield heapq.heappop(heap)

    return Stream(_gen())
