"""Out-of-order handling: bounded-lateness reordering with watermarks.

Satellite AIS arrives minutes late and interleaved with terrestrial data
(§1 "sparse, or delayed ... multi-level processing issues").  Downstream
operators want time order; this operator restores it up to a bounded
lateness, counting what it had to drop.

Two entry points share one implementation:

- :class:`WatermarkReorderer` — the incremental core: ``feed`` batches of
  records, collect the in-order prefix each time, ``flush`` the tail.
  This is what the stage runtime drives, one micro-batch at a time.
- :func:`reorder_with_watermark` — the stream-to-stream wrapper used by
  one-shot replays.
"""

import enum
import heapq
from collections.abc import Iterable, Iterator

from repro.streaming.stream import Record, Stream


class LateRecordPolicy(enum.Enum):
    """What to do with records older than the watermark."""

    DROP = "drop"
    #: Emit immediately (out of order) rather than losing data.
    EMIT_OUT_OF_ORDER = "emit"


class ReorderStats:
    """Mutable counters exposed by the reorder operators."""

    def __init__(self) -> None:
        self.emitted = 0
        self.late = 0
        self.max_observed_skew_s = 0.0


class WatermarkReorderer:
    """Incremental bounded-lateness reorder buffer.

    The watermark trails the maximum seen event time by ``max_lateness_s``;
    records below the watermark on arrival are late and handled per
    ``policy``.  Memory is bounded by the arrival rate times the lateness
    bound.  Results depend only on the record sequence, never on how that
    sequence is sliced into ``feed`` calls.
    """

    def __init__(
        self,
        max_lateness_s: float,
        policy: LateRecordPolicy = LateRecordPolicy.DROP,
        stats: ReorderStats | None = None,
    ) -> None:
        if max_lateness_s < 0:
            raise ValueError("max_lateness_s must be non-negative")
        self.max_lateness_s = max_lateness_s
        self.policy = policy
        self.stats = stats if stats is not None else ReorderStats()
        self.watermark = float("-inf")
        self._heap: list[Record] = []

    def __len__(self) -> int:
        return len(self._heap)

    def feed_one(self, record: Record) -> list[Record]:
        """Offer one record; returns records released in event-time order."""
        stats = self.stats
        if record.t < self.watermark:
            stats.late += 1
            if self.policy is LateRecordPolicy.EMIT_OUT_OF_ORDER:
                stats.emitted += 1
                return [record]
            return []
        heapq.heappush(self._heap, record)
        high = max(self.watermark + self.max_lateness_s, record.t)
        stats.max_observed_skew_s = max(
            stats.max_observed_skew_s, high - record.t
        )
        out: list[Record] = []
        new_watermark = high - self.max_lateness_s
        if new_watermark > self.watermark:
            self.watermark = new_watermark
            while self._heap and self._heap[0].t <= self.watermark:
                stats.emitted += 1
                out.append(heapq.heappop(self._heap))
        return out

    def feed(self, records: Iterable[Record]) -> list[Record]:
        out: list[Record] = []
        for record in records:
            out.extend(self.feed_one(record))
        return out

    def flush(self) -> list[Record]:
        """Drain the buffer at end of stream (remaining in time order)."""
        out: list[Record] = []
        while self._heap:
            self.stats.emitted += 1
            out.append(heapq.heappop(self._heap))
        return out


def reorder_with_watermark(
    stream: Stream,
    max_lateness_s: float,
    policy: LateRecordPolicy = LateRecordPolicy.DROP,
    stats: ReorderStats | None = None,
) -> Stream:
    """Buffer records and release them in time order (stream wrapper
    around :class:`WatermarkReorderer`)."""
    reorderer = WatermarkReorderer(max_lateness_s, policy, stats)

    def _gen() -> Iterator[Record]:
        for record in stream:
            yield from reorderer.feed_one(record)
        yield from reorderer.flush()

    return Stream(_gen())
