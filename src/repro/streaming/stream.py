"""Core stream abstraction: lazily evaluated timestamped record flows."""

import heapq
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Record:
    """A timestamped, optionally keyed datum flowing through the engine.

    Ordering is by ``(t, str(key))`` so records can sit directly in heaps;
    ``value`` is excluded from comparisons because it may be unorderable.
    """

    t: float
    key: Any = None
    value: Any = None

    def __lt__(self, other: "Record") -> bool:
        if self.t != other.t:
            return self.t < other.t
        return str(self.key) < str(other.key)


class Stream:
    """A lazily evaluated stream of :class:`Record`.

    Construction wraps any iterable; transformation methods return new
    streams without consuming the source.  A stream is single-shot, like a
    generator: drain it once.
    """

    def __init__(self, records: Iterable[Record]) -> None:
        self._records = iter(records)

    def __iter__(self) -> Iterator[Record]:
        return self._records

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_values(
        cls,
        values: Iterable[Any],
        timestamp: Callable[[Any], float],
        key: Callable[[Any], Any] = lambda v: None,
    ) -> "Stream":
        """Wrap plain objects, extracting time and key with accessors."""
        return cls(Record(timestamp(v), key(v), v) for v in values)

    # -- stateless transforms ---------------------------------------------

    def map(self, fn: Callable[[Record], Record]) -> "Stream":
        return Stream(fn(r) for r in self)

    def map_values(self, fn: Callable[[Any], Any]) -> "Stream":
        return Stream(Record(r.t, r.key, fn(r.value)) for r in self)

    def filter(self, predicate: Callable[[Record], bool]) -> "Stream":
        return Stream(r for r in self if predicate(r))

    def flat_map(self, fn: Callable[[Record], Iterable[Record]]) -> "Stream":
        def _gen() -> Iterator[Record]:
            for record in self:
                yield from fn(record)

        return Stream(_gen())

    def key_by(self, key_fn: Callable[[Record], Any]) -> "Stream":
        return Stream(Record(r.t, key_fn(r), r.value) for r in self)

    # -- stateful helpers ---------------------------------------------------

    def tap(self, fn: Callable[[Record], None]) -> "Stream":
        """Side-effect observer (metrics, logging) that passes records on."""

        def _gen() -> Iterator[Record]:
            for record in self:
                fn(record)
                yield record

        return Stream(_gen())

    def throttle_per_key(self, min_gap_s: float) -> "Stream":
        """Drop records arriving within ``min_gap_s`` of the previous record
        with the same key — the simplest load-shedding synopsis.

        Keys idle for longer than ``min_gap_s`` behind the observed clock
        are evicted (lazy-deleted expiry heap, mirroring
        :class:`~repro.spatial.streaming.StreamingGridIndex`), so state is
        bounded by the arrival rate times the gap instead of growing with
        key cardinality.  Eviction is lossless on time-ordered streams: an
        entry older than ``min_gap_s`` can never suppress anything.  On
        disordered streams a record more than ``min_gap_s`` older than the
        max seen time may survive throttling that an unbounded table would
        have caught — use a reorder operator upstream if that matters.
        """

        def _gen() -> Iterator[Record]:
            last_seen: dict[Any, float] = {}
            expiry: list[tuple[float, Any]] = []
            now = float("-inf")
            for record in self:
                now = max(now, record.t)
                while expiry and expiry[0][0] < now - min_gap_s:
                    expired_t, key = heapq.heappop(expiry)
                    if last_seen.get(key) == expired_t:
                        del last_seen[key]
                prev = last_seen.get(record.key)
                if prev is not None and record.t - prev < min_gap_s:
                    continue
                last_seen[record.key] = record.t
                heapq.heappush(expiry, (record.t, record.key))
                yield record

        return Stream(_gen())

    # -- terminals ----------------------------------------------------------

    def collect(self) -> list[Record]:
        return list(self)

    def count(self) -> int:
        return sum(1 for _ in self)

    def drain(self) -> None:
        for _ in self:
            pass


def merge_by_time(*streams: Stream) -> Stream:
    """K-way merge of time-ordered streams into one time-ordered stream.

    Inputs must each be non-decreasing in time (use
    :func:`repro.streaming.watermarks.reorder_with_watermark` first if not);
    the merge is then globally ordered — the cross-streaming primitive of
    §2.2.
    """
    return Stream(heapq.merge(*streams, key=lambda r: r.t))
