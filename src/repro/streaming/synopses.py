"""Stream synopses: sub-linear summaries of unbounded maritime streams.

§2.1 pairs trajectory compression with "the computation of data synopses"
in general.  Three classic sketches, tuned to the maritime use cases:

- :class:`CountMinSketch` — approximate per-key counts (messages per
  MMSI, per cell) with a provable overestimate bound;
- :class:`ReservoirSample` — a uniform sample of an unbounded stream,
  for model training on bounded memory;
- :class:`HeavyHitters` (Misra-Gries) — the k most active keys (densest
  cells, chattiest vessels) in O(k) space.
"""

import random


class CountMinSketch:
    """Count-min sketch: conservative approximate counting.

    Guarantees ``true <= estimate <= true + eps * total`` with probability
    ``1 - delta`` for width ``ceil(e/eps)`` and depth ``ceil(ln(1/delta))``.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        rng = random.Random(seed)
        #: Per-row hash salts (Python's hash is salted per-process for
        #: str; we combine with row salts for independence).
        self._salts = [rng.getrandbits(61) for __ in range(depth)]
        self._rows = [[0] * width for __ in range(depth)]
        self.total = 0

    def _index(self, row: int, key) -> int:
        return (hash((self._salts[row], key))) % self.width

    def add(self, key, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.total += count
        for row in range(self.depth):
            self._rows[row][self._index(row, key)] += count

    def estimate(self, key) -> int:
        """Never underestimates; overestimates by at most ~total/width."""
        return min(
            self._rows[row][self._index(row, key)]
            for row in range(self.depth)
        )

    @property
    def memory_cells(self) -> int:
        return self.width * self.depth


class ReservoirSample:
    """Vitter's algorithm R: a uniform sample of a stream of unknown length."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self.items: list = []
        self.n_seen = 0

    def offer(self, item) -> None:
        self.n_seen += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
            return
        index = self._rng.randint(0, self.n_seen - 1)
        if index < self.capacity:
            self.items[index] = item

    def sample(self) -> list:
        return list(self.items)


class HeavyHitters:
    """Misra-Gries frequent-items summary.

    Any key with true frequency above ``total / (k + 1)`` is guaranteed to
    be present; reported counts underestimate by at most ``total/(k+1)``.
    """

    def __init__(self, k: int = 10) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self._counters: dict = {}
        self.total = 0

    def add(self, key, count: int = 1) -> None:
        self.total += count
        if key in self._counters:
            self._counters[key] += count
            return
        if len(self._counters) < self.k:
            self._counters[key] = count
            return
        # Decrement-all: the hallmark Misra-Gries step.
        decrement = min(count, min(self._counters.values()))
        for existing in list(self._counters):
            self._counters[existing] -= decrement
            if self._counters[existing] <= 0:
                del self._counters[existing]
        remaining = count - decrement
        if remaining > 0 and len(self._counters) < self.k:
            self._counters[key] = remaining

    def top(self, n: int | None = None) -> list[tuple]:
        """Candidate heavy hitters, most frequent first."""
        ranked = sorted(
            self._counters.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked if n is None else ranked[:n]

    def __contains__(self, key) -> bool:
        return key in self._counters
