"""In-situ processing model: operator placement and communication cost.

§2.1 argues that detection should move *to* the data (receivers, edge
nodes) rather than shipping raw streams to a centre, and that such
frameworks "have to become communication efficient".  This module makes
that trade-off measurable: a :class:`PlacementPlan` assigns pipeline stages
to nodes, a :class:`CommunicationLedger` accounts bytes crossing node
boundaries, and :func:`compare_placements` quantifies the saving of
in-situ synopsis computation versus centralising raw data.
"""

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.streaming.stream import Stream


@dataclass(frozen=True)
class ProcessingNode:
    """A compute location (receiver site, edge box, or the fusion centre)."""

    name: str
    #: Link bandwidth towards the centre, bytes/s (for latency estimates).
    uplink_bytes_per_s: float = 125_000.0  # 1 Mbit/s default


@dataclass
class CommunicationLedger:
    """Accumulates inter-node traffic per link."""

    bytes_by_link: dict[tuple[str, str], int] = field(default_factory=dict)
    records_by_link: dict[tuple[str, str], int] = field(default_factory=dict)

    def charge(self, src: str, dst: str, n_bytes: int, n_records: int = 1) -> None:
        if src == dst:
            return  # local hand-off is free
        link = (src, dst)
        self.bytes_by_link[link] = self.bytes_by_link.get(link, 0) + n_bytes
        self.records_by_link[link] = self.records_by_link.get(link, 0) + n_records

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_link.values())

    @property
    def total_records(self) -> int:
        return sum(self.records_by_link.values())

    def transfer_time_s(self, node: ProcessingNode) -> float:
        """Seconds to push everything this ledger charged over the uplink."""
        outgoing = sum(
            n for (src, __), n in self.bytes_by_link.items() if src == node.name
        )
        return outgoing / node.uplink_bytes_per_s


@dataclass
class Stage:
    """One pipeline stage: a stream transform plus a record-size model."""

    name: str
    transform: Callable[[Stream], Stream]
    #: Estimated serialised size of one output record, bytes.
    output_record_bytes: int


class PlacementPlan:
    """Assignment of pipeline stages to nodes.

    ``run`` threads a source stream through all stages, charging the ledger
    whenever consecutive stages live on different nodes.
    """

    def __init__(
        self,
        stages: list[Stage],
        assignment: dict[str, ProcessingNode],
        source_node: ProcessingNode,
        sink_node: ProcessingNode,
        source_record_bytes: int = 48,
    ) -> None:
        missing = [s.name for s in stages if s.name not in assignment]
        if missing:
            raise ValueError(f"stages without node assignment: {missing}")
        self.stages = stages
        self.assignment = assignment
        self.source_node = source_node
        self.sink_node = sink_node
        self.source_record_bytes = source_record_bytes
        self.ledger = CommunicationLedger()

    def run(self, source: Stream) -> list:
        """Execute the plan, returning the sink records; the ledger fills
        as a side effect."""
        current = source
        prev_node = self.source_node
        prev_bytes = self.source_record_bytes
        for stage in self.stages:
            node = self.assignment[stage.name]
            if node.name != prev_node.name:
                # Everything flowing into this stage crosses the link; we
                # must materialise to count (streams are single-shot).
                records = current.collect()
                for __ in records:
                    self.ledger.charge(prev_node.name, node.name, prev_bytes)
                current = Stream(iter(records))
            current = stage.transform(current)
            prev_node = node
            prev_bytes = stage.output_record_bytes
        sink_records = current.collect()
        if prev_node.name != self.sink_node.name:
            for __ in sink_records:
                self.ledger.charge(prev_node.name, self.sink_node.name, prev_bytes)
        return sink_records


def compare_placements(
    make_source: Callable[[], Stream],
    stages: list[Stage],
    edge: ProcessingNode,
    centre: ProcessingNode,
    in_situ_stages: set[str],
) -> dict[str, float]:
    """Run the same pipeline centralised vs in-situ and compare traffic.

    ``in_situ_stages`` are placed on the edge node in the in-situ plan;
    the centralised plan puts every stage at the centre, so the raw stream
    crosses the uplink.  Returns bytes for both plans and the ratio.
    """
    central_plan = PlacementPlan(
        stages, {s.name: centre for s in stages}, source_node=edge,
        sink_node=centre,
    )
    central_plan.run(make_source())

    in_situ_assignment = {
        s.name: (edge if s.name in in_situ_stages else centre) for s in stages
    }
    in_situ_plan = PlacementPlan(
        stages, in_situ_assignment, source_node=edge, sink_node=centre
    )
    in_situ_plan.run(make_source())

    central = central_plan.ledger.total_bytes
    insitu = in_situ_plan.ledger.total_bytes
    return {
        "central_bytes": float(central),
        "in_situ_bytes": float(insitu),
        "savings_ratio": (central - insitu) / central if central else 0.0,
    }
