"""Tests for the forecasting layer: dead reckoning, Kalman, routes, ETA."""

import random

import pytest

from repro.forecasting import (
    KalmanPredictor,
    RouteGraph,
    RouteGraphConfig,
    RoutePredictor,
    estimate_eta,
    evaluate_predictor,
    predict_constant_turn,
    predict_constant_velocity,
)
from repro.geo import haversine_m
from repro.simulation.behaviours import plan_transit
from repro.simulation.world import Port
from repro.trajectory.points import TrackPoint, Trajectory


def northbound(n=40, dt=60.0, sog=10.0):
    # 10 kn due north: ~5.14 m/s ≈ 2.777e-3 deg/min.
    dlat = sog * 1852.0 / 3600.0 * dt / 111_195.0
    return Trajectory(
        1,
        [TrackPoint(i * dt, 48.0 + i * dlat, -5.0, sog, 0.0) for i in range(n)],
    )


class TestDeadReckoning:
    def test_cv_distance(self):
        state = TrackPoint(0.0, 48.0, -5.0, 12.0, 90.0)
        lat, lon = predict_constant_velocity(state, 1800.0)
        assert haversine_m(48.0, -5.0, lat, lon) == pytest.approx(
            12.0 * 1852.0 / 2.0, rel=1e-6
        )

    def test_cv_missing_kinematics_holds(self):
        state = TrackPoint(0.0, 48.0, -5.0, None, None)
        assert predict_constant_velocity(state, 1800.0) == (48.0, -5.0)

    def test_ct_zero_rate_equals_cv(self):
        state = TrackPoint(0.0, 48.0, -5.0, 12.0, 45.0)
        cv = predict_constant_velocity(state, 900.0)
        ct = predict_constant_turn(state, 0.0, 900.0)
        assert haversine_m(*cv, *ct) < 100.0

    def test_ct_curves(self):
        state = TrackPoint(0.0, 48.0, -5.0, 12.0, 0.0)
        straight = predict_constant_turn(state, 0.0, 1200.0)
        turning = predict_constant_turn(state, 10.0, 1200.0)
        assert haversine_m(*straight, *turning) > 1000.0

    def test_ct_full_circle_returns(self):
        state = TrackPoint(0.0, 48.0, -5.0, 10.0, 0.0)
        # 360° at 12°/min takes 30 min.
        final = predict_constant_turn(state, 12.0, 1800.0, step_s=5.0)
        assert haversine_m(48.0, -5.0, *final) < 1_000.0


class TestKalmanPredictor:
    def test_straight_line_accuracy(self):
        track = northbound(n=40)
        predictor = KalmanPredictor()
        prediction = predictor.predict(track, 600.0)
        # Truth: continue north at 10 kn for 10 min ≈ 3086 m.
        truth_lat = track[-1].lat + 3086.0 / 111_195.0
        error = haversine_m(prediction.lat, prediction.lon, truth_lat, -5.0)
        assert error < 500.0

    def test_sigma_grows(self):
        track = northbound()
        predictor = KalmanPredictor()
        near = predictor.predict(track, 300.0)
        far = predictor.predict(track, 3600.0)
        assert far.sigma_m > near.sigma_m

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            KalmanPredictor().predict(northbound(), -1.0)


class TestRouteGraph:
    def make_graph(self, seed=0, n_tracks=10):
        """Historical traffic along a dog-leg route."""
        graph = RouteGraph(RouteGraphConfig(cell_deg=0.05))
        rng = random.Random(seed)
        for k in range(n_tracks):
            rng_k = random.Random(seed * 100 + k)
            plan = plan_transit(
                0.0, 20 * 3600.0, (48.0, -6.0), (49.5, -3.0),
                12.0, rng_k,
            )
            points = [
                TrackPoint(s.t, s.lat, s.lon, s.sog_knots, s.cog_deg)
                for s in plan.sample(120.0)
            ]
            graph.add_trajectory(Trajectory(100 + k, points))
        return graph

    def test_edges_mined(self):
        graph = self.make_graph()
        assert graph.n_edges > 20
        assert graph.n_trajectories == 10

    def test_successors_sorted_by_count(self):
        graph = self.make_graph()
        cell = next(iter(graph.edges))[0]
        successors = graph.successors(cell)
        counts = [c for __, c in successors]
        assert counts == sorted(counts, reverse=True)

    def test_route_following_beats_cv_after_turn(self):
        """The E6 shape: after the route's dog-leg, CV sails off the lane
        while the graph predictor follows it."""
        graph = self.make_graph()
        predictor = RoutePredictor(graph)
        rng = random.Random(999)
        plan = plan_transit(
            0.0, 20 * 3600.0, (48.0, -6.0), (49.5, -3.0), 12.0, rng
        )
        points = [
            TrackPoint(s.t, s.lat, s.lon, s.sog_knots, s.cog_deg)
            for s in plan.sample(120.0)
        ]
        track = Trajectory(1, points)
        cut = track.slice_time(0.0, track.duration_s * 0.3)
        horizon = 2 * 3600.0
        truth = track.position_at(cut.t_end + horizon)
        route_prediction = predictor.predict(cut, horizon)
        cv_prediction = predict_constant_velocity(cut.points[-1], horizon)
        route_error = haversine_m(*route_prediction, *truth)
        cv_error = haversine_m(*cv_prediction, *truth)
        assert route_error < cv_error * 1.5  # route never catastrophically worse

    def test_off_network_falls_back_to_cv(self):
        graph = self.make_graph()
        predictor = RoutePredictor(graph)
        lonely = Trajectory(
            1,
            [
                TrackPoint(i * 60.0, -30.0 + i * 0.001, 100.0, 10.0, 0.0)
                for i in range(20)
            ],
        )
        prediction = predictor.predict(lonely, 600.0)
        cv = predict_constant_velocity(lonely.points[-1], 600.0)
        assert haversine_m(*prediction, *cv) < 100.0

    def test_stationary_vessel_stays_put(self):
        graph = self.make_graph()
        predictor = RoutePredictor(graph)
        parked = Trajectory(
            1, [TrackPoint(i * 60.0, 48.0, -6.0, 0.1, 0.0) for i in range(10)]
        )
        assert predictor.predict(parked, 3600.0) == (48.0, -6.0)


class TestEta:
    PORTS = [
        Port("NORTH", 49.0, -5.0),
        Port("EAST", 48.0, -3.0),
    ]

    def test_course_selects_port(self):
        track = northbound()
        estimate = estimate_eta(track, self.PORTS)
        assert estimate is not None
        assert estimate.port.name == "NORTH"

    def test_eta_magnitude(self):
        track = northbound()
        estimate = estimate_eta(track, self.PORTS)
        distance = haversine_m(
            track[-1].lat, track[-1].lon, 49.0, -5.0
        )
        assert estimate.eta_s == pytest.approx(
            distance / (10.0 * 1852.0 / 3600.0), rel=1e-6
        )

    def test_stationary_returns_none(self):
        parked = Trajectory(
            1, [TrackPoint(i * 60.0, 48.0, -5.0, 0.1, 0.0) for i in range(5)]
        )
        assert estimate_eta(parked, self.PORTS) is None

    def test_nothing_ahead_returns_none(self):
        southbound = Trajectory(
            1,
            [
                TrackPoint(i * 60.0, 47.0 - i * 0.002, -5.0, 10.0, 180.0)
                for i in range(10)
            ],
        )
        assert estimate_eta(southbound, self.PORTS) is None


class TestEvaluationHarness:
    def test_errors_grow_with_horizon(self):
        tracks = [northbound(n=120) for __ in range(3)]
        results = evaluate_predictor(
            lambda prefix, h: predict_constant_velocity(prefix.points[-1], h),
            tracks,
            horizons_s=[300.0, 1800.0],
        )
        assert results[0].n_samples > 0
        # CV on a straight line is nearly exact; both should be tiny, but
        # well-ordered and finite.
        assert results[0].mean_error_m <= results[1].mean_error_m + 1.0

    def test_insufficient_data_yields_nan(self):
        short = Trajectory(1, [TrackPoint(0.0, 48.0, -5.0, 10.0, 0.0)])
        results = evaluate_predictor(
            lambda prefix, h: (48.0, -5.0), [short], horizons_s=[300.0]
        )
        assert results[0].n_samples == 0

    def test_percentiles_ordered(self):
        rng = random.Random(0)
        plan = plan_transit(
            0.0, 6 * 3600.0, (48.0, -6.0), (49.5, -3.0), 12.0, rng
        )
        track = Trajectory(
            1,
            [
                TrackPoint(s.t, s.lat, s.lon, s.sog_knots, s.cog_deg)
                for s in plan.sample(60.0)
            ],
        )
        results = evaluate_predictor(
            lambda prefix, h: predict_constant_velocity(prefix.points[-1], h),
            [track],
            horizons_s=[1800.0],
        )
        r = results[0]
        assert r.median_error_m <= r.p90_error_m
