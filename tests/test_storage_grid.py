"""Tests for the spatio-temporal grid index."""

import random

import pytest

from repro.geo import BoundingBox
from repro.storage import GridIndex, IndexedPoint


def random_points(n=2000, seed=1):
    rng = random.Random(seed)
    return [
        IndexedPoint(
            mmsi=rng.randint(1, 50),
            t=rng.uniform(0.0, 86400.0),
            lat=rng.uniform(40.0, 55.0),
            lon=rng.uniform(-10.0, 5.0),
        )
        for _ in range(n)
    ]


class TestRangeQuery:
    def test_matches_brute_force(self):
        points = random_points()
        index = GridIndex(cell_deg=0.5, time_bucket_s=3600.0)
        index.insert_many(points)
        box = BoundingBox(44.0, 49.0, -6.0, -1.0)
        t0, t1 = 10_000.0, 50_000.0
        expected = {
            (p.mmsi, p.t) for p in points
            if box.contains(p.lat, p.lon) and t0 <= p.t <= t1
        }
        got = {(p.mmsi, p.t) for p in index.range_query(box, t0, t1)}
        assert got == expected

    def test_empty_region(self):
        index = GridIndex()
        index.insert_many(random_points(100))
        out = index.range_query(BoundingBox(-10.0, -5.0, 100.0, 110.0), 0, 1e6)
        assert out == []

    def test_time_bounds_inclusive(self):
        index = GridIndex()
        point = IndexedPoint(1, 1000.0, 48.0, -5.0)
        index.insert(point)
        box = BoundingBox(47.0, 49.0, -6.0, -4.0)
        assert index.range_query(box, 1000.0, 1000.0) == [point]

    def test_invalid_time_order(self):
        index = GridIndex()
        with pytest.raises(ValueError):
            index.range_query(BoundingBox(0, 1, 0, 1), 10.0, 0.0)

    def test_antimeridian_box(self):
        index = GridIndex(cell_deg=1.0)
        east = IndexedPoint(1, 0.0, 0.0, 179.5)
        west = IndexedPoint(2, 0.0, 0.0, -179.5)
        middle = IndexedPoint(3, 0.0, 0.0, 0.0)
        index.insert_many([east, west, middle])
        box = BoundingBox(-5.0, 5.0, 175.0, -175.0)
        got = {p.mmsi for p in index.range_query(box, 0.0, 1.0)}
        assert got == {1, 2}

    def test_len(self):
        index = GridIndex()
        index.insert_many(random_points(123))
        assert len(index) == 123


class TestKnn:
    def test_finds_true_nearest(self):
        points = random_points(1000)
        index = GridIndex(cell_deg=0.5)
        index.insert_many(points)
        from repro.geo import haversine_m

        query = (48.0, -5.0)
        true_order = sorted(
            points, key=lambda p: haversine_m(*query, p.lat, p.lon)
        )
        got = index.knn(query[0], query[1], 0.0, 86400.0, 5)
        assert [p.mmsi for __, p in got] == [p.mmsi for p in true_order[:5]]

    def test_respects_time_window(self):
        index = GridIndex(cell_deg=0.5)
        near_wrong_time = IndexedPoint(1, 90_000.0, 48.0, -5.0)
        far_right_time = IndexedPoint(2, 100.0, 48.5, -5.0)
        index.insert_many([near_wrong_time, far_right_time])
        got = index.knn(48.0, -5.0, 0.0, 1000.0, 1)
        assert got[0][1].mmsi == 2

    def test_k_larger_than_data(self):
        index = GridIndex()
        index.insert(IndexedPoint(1, 0.0, 48.0, -5.0))
        assert len(index.knn(48.0, -5.0, 0.0, 10.0, 10)) == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            GridIndex().knn(0.0, 0.0, 0.0, 1.0, 0)

    def test_distances_ascending(self):
        index = GridIndex(cell_deg=0.5)
        index.insert_many(random_points(500))
        got = index.knn(48.0, -5.0, 0.0, 86400.0, 10)
        distances = [d for d, __ in got]
        assert distances == sorted(distances)


class TestHistogram:
    def test_counts_sum(self):
        index = GridIndex(cell_deg=1.0)
        index.insert_many(random_points(500))
        histogram = index.cell_histogram()
        assert sum(histogram.values()) == 500
