"""Tests for the stateful sentence-stream decoder (garbage tolerance)."""

from repro.ais import AisDecoder, PositionReport, encode_sentences


def make_sentence() -> str:
    return encode_sentences(
        PositionReport(mmsi=227000001, lat=48.0, lon=-5.0, sog_knots=10.0,
                       cog_deg=90.0)
    )[0]


class TestFeedRobustness:
    def test_clean_sentence_decodes(self):
        decoder = AisDecoder()
        assert decoder.feed(make_sentence()) is not None
        assert decoder.stats["decoded"] == 1

    def test_non_aivdm_skipped(self):
        decoder = AisDecoder()
        assert decoder.feed("$GPGGA,123519,4807.038,N") is None
        assert decoder.stats["not_aivdm"] == 1

    def test_bad_checksum_skipped(self):
        decoder = AisDecoder()
        sentence = make_sentence()
        broken = sentence[:-2] + "00" if not sentence.endswith("00") else sentence[:-2] + "11"
        assert decoder.feed(broken) is None
        assert decoder.stats["bad_checksum"] == 1

    def test_checksum_check_can_be_disabled(self):
        decoder = AisDecoder(check_checksum=False)
        sentence = make_sentence()
        broken = sentence[:-2] + ("00" if not sentence.endswith("00") else "11")
        # Payload is intact, only the checksum trailer is wrong.
        assert decoder.feed(broken) is not None

    def test_wrong_field_count(self):
        decoder = AisDecoder(check_checksum=False)
        assert decoder.feed("!AIVDM,1,1,,A,xx*00") is None
        assert decoder.stats["bad_field_count"] == 1

    def test_bad_numeric_fields(self):
        decoder = AisDecoder(check_checksum=False)
        assert decoder.feed("!AIVDM,x,1,,A,payload,0*00") is None
        assert decoder.stats["bad_numeric_field"] == 1

    def test_garbage_payload_counted(self):
        decoder = AisDecoder(check_checksum=False)
        assert decoder.feed("!AIVDM,1,1,,A,~~~~,0*00") is None
        assert decoder.stats["decode_error"] >= 1

    def test_whitespace_tolerated(self):
        decoder = AisDecoder()
        assert decoder.feed("  " + make_sentence() + "\r\n") is not None

    def test_received_at_attached(self):
        decoder = AisDecoder()
        out = decoder.feed(make_sentence(), received_at=1234.5)
        assert out.received_at == 1234.5

    def test_mixed_feed_survives(self):
        decoder = AisDecoder()
        feed = [
            make_sentence(),
            "garbage line",
            "$GPRMC,081836,A",
            make_sentence(),
            "!AIVDM,1,1",
        ]
        decoded = [m for s in feed if (m := decoder.feed(s)) is not None]
        assert len(decoded) == 2


class TestMultipart:
    def test_interleaved_sequences(self):
        """Two multi-part messages on different channels interleave."""
        from repro.ais import StaticVoyageData

        msg_a = StaticVoyageData(mmsi=227000001, shipname="ALPHA")
        msg_b = StaticVoyageData(mmsi=227000002, shipname="BRAVO")
        sentences_a = encode_sentences(msg_a, channel="A", sequence_id=1)
        sentences_b = encode_sentences(msg_b, channel="B", sequence_id=2)
        decoder = AisDecoder()
        results = []
        for sentence in [
            sentences_a[0], sentences_b[0], sentences_b[1], sentences_a[1]
        ]:
            out = decoder.feed(sentence)
            if out is not None:
                results.append(out)
        names = {m.shipname for m in results}
        assert names == {"ALPHA", "BRAVO"}

    def test_incomplete_fragment_never_completes(self):
        from repro.ais import StaticVoyageData

        sentences = encode_sentences(
            StaticVoyageData(mmsi=227000003, shipname="GHOST")
        )
        decoder = AisDecoder()
        assert decoder.feed(sentences[0]) is None
        # Second part never arrives; decoder holds state but stays sane.
        assert decoder.feed(make_sentence()) is not None
