"""Tests (incl. property-based) for stream sketches."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.streaming.synopses import CountMinSketch, HeavyHitters, ReservoirSample


class TestCountMin:
    def test_never_underestimates(self):
        sketch = CountMinSketch(width=64, depth=4)
        truth = Counter()
        rng = random.Random(0)
        for __ in range(5000):
            key = rng.randint(0, 200)
            sketch.add(key)
            truth[key] += 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_overestimate_bounded(self):
        width = 256
        sketch = CountMinSketch(width=width, depth=5)
        truth = Counter()
        rng = random.Random(1)
        for __ in range(10_000):
            key = rng.randint(0, 500)
            sketch.add(key)
            truth[key] += 1
        # e/width bound with depth independent rows: allow 3x slack.
        bound = 3 * 2.72 * sketch.total / width
        violations = sum(
            1 for key, count in truth.items()
            if sketch.estimate(key) - count > bound
        )
        assert violations <= len(truth) * 0.05

    def test_unseen_key_small(self):
        sketch = CountMinSketch(width=1024, depth=4)
        for i in range(1000):
            sketch.add(i % 50)
        # Probe with an int: str hashes are salted per process, so a str
        # probe key makes this a 1-in-200 hash-seed flake; int hashes
        # are value-based and keep the estimate deterministic.
        assert sketch.estimate(10**9) <= 3 * 1000 / 1024 + 5

    def test_weighted_add(self):
        sketch = CountMinSketch()
        sketch.add("v", 10)
        sketch.add("v", 5)
        assert sketch.estimate("v") >= 15

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch().add("x", -1)

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_property_no_underestimate(self, keys):
        sketch = CountMinSketch(width=128, depth=4)
        truth = Counter(keys)
        for key in keys:
            sketch.add(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count


class TestReservoir:
    def test_fills_then_caps(self):
        reservoir = ReservoirSample(capacity=10, seed=0)
        for i in range(100):
            reservoir.offer(i)
        assert len(reservoir.sample()) == 10
        assert reservoir.n_seen == 100

    def test_small_stream_kept_entirely(self):
        reservoir = ReservoirSample(capacity=10, seed=0)
        for i in range(5):
            reservoir.offer(i)
        assert sorted(reservoir.sample()) == [0, 1, 2, 3, 4]

    def test_approximately_uniform(self):
        """Each item's inclusion probability ≈ capacity/n."""
        counts = Counter()
        for seed in range(400):
            reservoir = ReservoirSample(capacity=10, seed=seed)
            for i in range(100):
                reservoir.offer(i)
            counts.update(reservoir.sample())
        # Expected inclusion count per item: 400 * 10/100 = 40.
        for i in range(100):
            assert 15 <= counts[i] <= 75

    def test_validation(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)


class TestHeavyHitters:
    def test_finds_dominant_keys(self):
        hh = HeavyHitters(k=5)
        rng = random.Random(0)
        for __ in range(10_000):
            if rng.random() < 0.6:
                hh.add(rng.choice(["whale-1", "whale-2"]))
            else:
                hh.add(rng.randint(0, 5000))
        top_keys = [key for key, __ in hh.top(2)]
        assert set(top_keys) == {"whale-1", "whale-2"}

    def test_guarantee_above_threshold(self):
        """Keys above total/(k+1) must survive."""
        hh = HeavyHitters(k=9)
        stream = ["big"] * 300 + [f"small-{i}" for i in range(700)]
        random.Random(1).shuffle(stream)
        for key in stream:
            hh.add(key)
        assert "big" in hh

    def test_bounded_memory(self):
        hh = HeavyHitters(k=10)
        for i in range(100_000):
            hh.add(i)  # all distinct
        assert len(hh.top()) <= 10

    def test_counts_underestimate_boundedly(self):
        hh = HeavyHitters(k=10)
        truth = Counter()
        rng = random.Random(2)
        for __ in range(5000):
            key = rng.choice(["a"] * 5 + ["b"] * 3 + list(range(50)))
            hh.add(key)
            truth[key] += 1
        for key, estimate in hh.top():
            assert estimate <= truth[key]
            assert truth[key] - estimate <= hh.total / (hh.k + 1) + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            HeavyHitters(0)

    def test_mmsi_chatter_use_case(self):
        """The maritime use: find the chattiest vessels in one pass."""
        hh = HeavyHitters(k=8)
        rng = random.Random(3)
        # A fast ferry reports every 2 s; cargo every 10 s.
        for t in range(0, 3600, 2):
            hh.add(227000111)
            if t % 10 == 0:
                for mmsi in range(227000200, 227000230):
                    hh.add(mmsi)
        top = hh.top(1)
        assert top[0][0] == 227000111
