"""Tests for radar and LRIT sensor models."""

import random

import pytest

from repro.ais.types import ShipType
from repro.geo import haversine_m
from repro.simulation import FleetBuilder, plan_transit
from repro.simulation.sensors import LritReporter, RadarSite


@pytest.fixture
def coastal_plan():
    rng = random.Random(0)
    # A transit passing near Brest.
    return plan_transit(0.0, 2 * 3600.0, (48.38, -4.60), (48.72, -3.97), 10.0, rng)


class TestRadar:
    def test_detects_in_range_vessel(self, coastal_plan):
        site = RadarSite("R", 48.38, -4.49, detection_probability=1.0)
        contacts = site.contacts(
            {1: coastal_plan}, 0.0, 3600.0, random.Random(1)
        )
        assert contacts
        assert all(c.truth_mmsi == 1 for c in contacts)

    def test_sweep_cadence(self, coastal_plan):
        site = RadarSite(
            "R", 48.38, -4.49, scan_period_s=30.0, detection_probability=1.0
        )
        contacts = site.contacts({1: coastal_plan}, 0.0, 600.0, random.Random(1))
        times = sorted({c.t for c in contacts})
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g % 30.0 == 0 for g in gaps)

    def test_position_noise(self, coastal_plan):
        site = RadarSite(
            "R", 48.38, -4.49, position_sigma_m=100.0, detection_probability=1.0
        )
        contacts = site.contacts({1: coastal_plan}, 0.0, 1800.0, random.Random(1))
        errors = [
            haversine_m(c.lat, c.lon, *coastal_plan.position_at(c.t))
            for c in contacts
        ]
        assert max(errors) < 600.0  # bounded noise
        assert sum(errors) / len(errors) > 20.0  # but real noise

    def test_out_of_range_invisible(self):
        rng = random.Random(0)
        far_plan = plan_transit(0.0, 3600.0, (30.0, -40.0), (31.0, -40.0), 10.0, rng)
        site = RadarSite("R", 48.38, -4.49, detection_probability=1.0)
        assert site.contacts({1: far_plan}, 0.0, 3600.0, random.Random(1)) == []

    def test_detection_probability(self, coastal_plan):
        site = RadarSite("R", 48.38, -4.49, detection_probability=0.5)
        full = RadarSite("R", 48.38, -4.49, detection_probability=1.0)
        degraded = site.contacts({1: coastal_plan}, 0.0, 3600.0, random.Random(1))
        complete = full.contacts({1: coastal_plan}, 0.0, 3600.0, random.Random(1))
        assert 0.3 * len(complete) < len(degraded) < 0.7 * len(complete)

    def test_sees_dark_vessels(self):
        """Radar is non-cooperative: it does not care about AIS silence.

        (The radar model reads ground-truth plans, so 'dark' never hides a
        vessel from it — asserted here as the design invariant E5 relies
        on.)"""
        rng = random.Random(0)
        plan = plan_transit(0.0, 3600.0, (48.38, -4.60), (48.5, -4.2), 10.0, rng)
        site = RadarSite("R", 48.38, -4.49, detection_probability=1.0)
        contacts = site.contacts({42: plan}, 0.0, 3600.0, random.Random(2))
        assert len(contacts) > 100


class TestLrit:
    def test_six_hour_cadence(self):
        rng = random.Random(0)
        builder = FleetBuilder(0)
        spec = builder.build(ShipType.CARGO)
        plan = plan_transit(
            0.0, 24 * 3600.0, (48.38, -4.49), (38.70, -9.16), 14.0, rng
        )
        reports = LritReporter().reports(
            {spec.mmsi: spec}, {spec.mmsi: plan}, random.Random(1),
            until=24 * 3600.0,
        )
        assert 3 <= len(reports) <= 5  # ~4 in 24 h
        gaps = [b.t - a.t for a, b in zip(reports, reports[1:])]
        for gap in gaps:
            assert gap == pytest.approx(21_600.0, rel=1e-6)

    def test_class_b_excluded(self):
        rng = random.Random(0)
        builder = FleetBuilder(0)
        fisher = builder.build(ShipType.FISHING)
        plan = plan_transit(0.0, 24 * 3600.0, (48.38, -4.49), (48.72, -3.97), 8.0, rng)
        reports = LritReporter().reports(
            {fisher.mmsi: fisher}, {fisher.mmsi: plan}, random.Random(1)
        )
        assert reports == []

    def test_reports_sorted(self):
        rng = random.Random(0)
        builder = FleetBuilder(0)
        specs = {s.mmsi: s for s in (builder.build(ShipType.CARGO) for _ in range(5))}
        plans = {
            mmsi: plan_transit(
                0.0, 24 * 3600.0, (48.38, -4.49), (43.35, -3.03), 12.0, rng
            )
            for mmsi in specs
        }
        reports = LritReporter().reports(specs, plans, random.Random(1))
        times = [r.t for r in reports]
        assert times == sorted(times)
