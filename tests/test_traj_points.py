"""Tests for TrackPoint and Trajectory."""

import pytest

from repro.trajectory.points import TrackPoint, Trajectory


def straight_track(n=10, dt=60.0, speed_deg=0.01):
    return Trajectory(
        1,
        [
            TrackPoint(i * dt, 48.0 + i * speed_deg, -5.0, 10.0, 0.0)
            for i in range(n)
        ],
    )


class TestInvariants:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(1, [])

    def test_non_increasing_rejected(self):
        points = [
            TrackPoint(0.0, 48.0, -5.0),
            TrackPoint(0.0, 48.1, -5.0),
        ]
        with pytest.raises(ValueError):
            Trajectory(1, points)

    def test_single_point_ok(self):
        trajectory = Trajectory(1, [TrackPoint(0.0, 48.0, -5.0)])
        assert trajectory.duration_s == 0.0
        assert trajectory.length_m() == 0.0


class TestGeometry:
    def test_length(self):
        trajectory = straight_track(n=11, speed_deg=0.01)
        # 0.1 degrees of latitude total ≈ 11.1 km.
        assert trajectory.length_m() == pytest.approx(11_119.5, rel=1e-3)

    def test_position_at_fix_times(self):
        trajectory = straight_track()
        assert trajectory.position_at(60.0) == (48.01, -5.0)

    def test_position_interpolates(self):
        trajectory = straight_track()
        lat, lon = trajectory.position_at(90.0)
        assert lat == pytest.approx(48.015, abs=1e-6)

    def test_position_clamps(self):
        trajectory = straight_track()
        assert trajectory.position_at(-100.0) == trajectory[0].position
        assert trajectory.position_at(1e9) == trajectory[-1].position

    def test_bounding_box(self):
        trajectory = straight_track(n=5)
        lat_min, lat_max, lon_min, lon_max = trajectory.bounding_box()
        assert lat_min == 48.0 and lat_max == pytest.approx(48.04)
        assert lon_min == lon_max == -5.0

    def test_mean_speed(self):
        trajectory = straight_track(n=11, dt=360.0, speed_deg=0.01)
        # 11.1 km in 1 h ≈ 6 kn.
        assert trajectory.mean_speed_knots() == pytest.approx(6.0, rel=0.01)


class TestSlice:
    def test_slice_inclusive(self):
        trajectory = straight_track(n=10)
        sliced = trajectory.slice_time(60.0, 180.0)
        assert [p.t for p in sliced] == [60.0, 120.0, 180.0]

    def test_slice_empty_returns_none(self):
        trajectory = straight_track(n=10)
        assert trajectory.slice_time(1e6, 2e6) is None

    def test_slice_preserves_mmsi(self):
        assert straight_track().slice_time(0.0, 120.0).mmsi == 1

    def test_iteration_and_indexing(self):
        trajectory = straight_track(n=3)
        assert len(list(trajectory)) == 3
        assert trajectory[0].t == 0.0
        assert trajectory[-1].t == 120.0
