"""The sharded stage runtime: vessel-partitioned workers, exact parity.

The headline property: ``config.workers`` is purely a throughput knob.
For any scenario, any worker count produces the *identical* event set,
forecasts and cube cells as ``workers=1`` — batch and live, at any tick
size, including across the antimeridian seam.  Plus the contracts that
make the sharding safe: MMSI 0 routes like any other key (multipart
fragments are assembled serially before routing), and the shard count is
fixed for a session's lifetime.
"""

import functools

import pytest

from repro.ais.encoder import encode_sentences
from repro.ais.types import PositionReport, StaticVoyageData
from repro.core import MaritimePipeline, PipelineConfig
from repro.core.config import ConfigError
from repro.core.stages import ShardPool, ShardState, shard_of
from repro.simulation.receivers import Observation

from test_core_stages import SCENARIOS, event_keys

WORKER_COUNTS = [1, 2, 4]


@functools.lru_cache(maxsize=None)
def scenario_run(name):
    return SCENARIOS[name]().run()


@functools.lru_cache(maxsize=None)
def baseline(name):
    """The single-shard batch products every other mode must reproduce."""
    return MaritimePipeline(PipelineConfig(workers=1)).process(
        scenario_run(name)
    )


def assert_same_products(batch, events, complex_events, forecasts, cube):
    assert event_keys(events) == event_keys(batch.events)
    assert event_keys(complex_events) == event_keys(batch.complex_events)
    assert forecasts == batch.forecasts
    assert cube.total == batch.cube.total
    assert cube.cell_counts() == batch.cube.cell_counts()


class TestShardParity:
    """workers ∈ {1, 2, 4} × {regional, seam} × batch + two tick sizes."""

    @pytest.mark.parametrize("name", ["regional", "seam"])
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_batch_parity(self, name, workers):
        run = scenario_run(name)
        batch = baseline(name)
        result = MaritimePipeline(PipelineConfig(workers=workers)).process(run)
        assert_same_products(
            batch, result.events, result.complex_events,
            result.forecasts, result.cube,
        )
        # Trajectories and synopses too — same segments, same order.
        assert [
            (t.mmsi, t.t_start, len(t)) for t in result.trajectories
        ] == [
            (t.mmsi, t.t_start, len(t)) for t in batch.trajectories
        ]
        assert [len(s) for s in result.synopses] == [
            len(s) for s in batch.synopses
        ]

    @pytest.mark.parametrize("name", ["regional", "seam"])
    @pytest.mark.parametrize("tick_s", [240.0, 1500.0])
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_live_parity(self, name, tick_s, workers):
        run = scenario_run(name)
        batch = baseline(name)
        pipeline = MaritimePipeline(PipelineConfig(workers=workers))
        session = pipeline.new_session(
            specs=run.specs,
            weather=run.weather,
            pol_split_t=pipeline._pol_split(run),
            keep_products=False,
        )
        assert session.workers == workers
        events, complex_events, forecasts = [], [], {}
        for increment in pipeline.run_live(
            run.observations,
            tick_s=tick_s,
            radar_contacts=run.radar_contacts,
            lrit_reports=run.lrit_reports,
            session=session,
        ):
            events.extend(increment.new_events)
            complex_events.extend(increment.new_complex_events)
            forecasts.update(increment.updated_forecasts)
        assert_same_products(
            batch, events, complex_events, forecasts, session.state.cube
        )


def observation(message, t, i=0):
    sentences = encode_sentences(message)
    assert len(sentences) == 1
    return Observation(
        t_received=t + 1.0,
        sentence=sentences[0],
        source="STA-TEST",
        mmsi=message.mmsi,
        t_transmitted=t,
    )


def position(mmsi, t, i):
    return PositionReport(
        mmsi=mmsi,
        lat=48.0 + 0.002 * i,
        lon=-5.0 + 0.001 * i,
        sog_knots=9.0,
        cog_deg=45.0,
    )


class TestRouting:
    def test_shard_of_is_deterministic_and_in_range(self):
        for n in (1, 2, 4, 7):
            for mmsi in (0, 1, 227000001, 999999999):
                index = shard_of(mmsi, n)
                assert 0 <= index < n
                assert shard_of(mmsi, n) == index  # stable

    def test_keys_spread_across_shards(self):
        hit = {shard_of(mmsi, 4) for mmsi in range(64)}
        assert hit == {0, 1, 2, 3}

    def test_mmsi_zero_routes_like_any_key(self):
        """Anonymous reports (MMSI 0) are one vessel key: all of them on
        one shard, products identical to the single-shard run."""
        assert shard_of(0, 4) == hash(0) % 4
        feed = []
        t = 0.0
        for i in range(60):
            mmsi = [0, 227000001, 227000002, 227000003][i % 4]
            feed.append(observation(position(mmsi, t, i), t, i))
            t += 10.0
        results = []
        for workers in (1, 4):
            pipeline = MaritimePipeline(PipelineConfig(workers=workers))
            session = pipeline.new_session(keep_products=True)
            session.feed(feed)
            session.flush(build_overview=False)
            state = session.state
            results.append((
                dict(state.decoder.stats),
                [(tr.mmsi, tr.t_start, len(tr)) for tr in state.trajectories],
                state.cube.cell_counts(),
            ))
        assert results[0] == results[1]
        assert results[0][0]["decoded"] == 60

    def test_multipart_fragments_survive_sharded_decode(self):
        """Two-fragment type 5 messages interleaved with positions: the
        serial assembler pairs fragments whatever the worker count, and
        the chunk-parallel payload decode loses nothing."""
        feed = []
        t = 0.0
        for i in range(40):
            mmsi = 227000001 + (i % 3)
            feed.append(observation(position(mmsi, t, i), t, i))
            t += 10.0
            if i % 5 == 0:
                static = StaticVoyageData(
                    mmsi=mmsi, imo=9074729, callsign="FQAB",
                    shipname="PONT AVEN", ship_type_code=70,
                    destination="ROSCOFF",
                )
                for sentence in encode_sentences(static):
                    feed.append(Observation(
                        t_received=t + 1.0, sentence=sentence,
                        source="STA-TEST", mmsi=mmsi, t_transmitted=t,
                    ))
                t += 10.0
        stats = []
        for workers in (1, 2):
            pipeline = MaritimePipeline(PipelineConfig(workers=workers))
            session = pipeline.new_session(keep_products=False)
            session.feed(feed)
            session.flush(build_overview=False)
            stats.append(dict(session.state.decoder.stats))
        assert stats[0] == stats[1]
        # 40 positions + 8 assembled type-5s, zero dangling fragments.
        assert stats[0]["decoded"] == 48
        assert stats[0]["fragment_buffered"] == 8


class TestShardCountLifecycle:
    def test_workers_knob_is_validated(self):
        with pytest.raises(ConfigError):
            PipelineConfig(workers=0).validate()
        with pytest.raises(ConfigError):
            PipelineConfig(workers=2.5).validate()
        with pytest.raises(ConfigError):
            PipelineConfig(workers=True).validate()

    def test_mid_run_shard_count_change_is_rejected(self):
        pipeline = MaritimePipeline(PipelineConfig(workers=2))
        session = pipeline.new_session(keep_products=False)
        feed = [
            observation(position(227000001, 10.0 * i, i), 10.0 * i, i)
            for i in range(4)
        ]
        session.feed(feed)
        session.state.config.workers = 4
        with pytest.raises(RuntimeError, match="changed mid-run"):
            session.feed(feed)
        with pytest.raises(RuntimeError, match="changed mid-run"):
            session.flush()


class TestShardPool:
    def test_split_is_contiguous_ceil_division(self):
        pool = ShardPool(2)
        assert pool.split(list(range(7))) == [[0, 1, 2, 3], [4, 5, 6]]
        assert pool.split([1]) == [[1]]
        assert pool.split([]) == []
        pool.close()

    def test_run_preserves_task_order(self):
        pool = ShardPool(3)
        try:
            got = pool.run([
                (lambda value=i: value * value) for i in range(8)
            ])
            assert got == [i * i for i in range(8)]
        finally:
            pool.close()

    def test_task_exception_propagates(self):
        pool = ShardPool(2)
        try:
            def boom():
                raise ValueError("shard task failed")
            with pytest.raises(ValueError, match="shard task failed"):
                pool.run([lambda: 1, boom])
        finally:
            pool.close()

    def test_shard_state_purge_keeps_size_report_keys(self):
        state = MaritimePipeline(
            PipelineConfig(workers=3)
        ).new_session(keep_products=False).state
        report = state.size_report()
        assert len(state.shards) == 3
        for key in ("open_segments", "teleport_state", "clash_state"):
            assert key in report
        assert all(isinstance(s, ShardState) for s in state.shards)
