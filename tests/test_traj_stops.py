"""Tests for stop/move segmentation and port-call detection."""

from repro.simulation.world import Port
from repro.trajectory import detect_stops, port_calls, stops_and_moves
from repro.trajectory.points import TrackPoint, Trajectory


def track_with_stop(
    stop_start=20, stop_len=30, n=70, dt=60.0, stop_lat=48.5, mmsi=5
):
    """Move north, dwell at ``stop_lat`` (reached at ``stop_start``),
    move on."""
    points = []
    lat = stop_lat - stop_start * 0.002
    for i in range(n):
        moving = i < stop_start or i >= stop_start + stop_len
        if moving and i > 0:
            lat += 0.002
        points.append(
            TrackPoint(
                i * dt, lat, -5.0, sog_knots=7.0 if moving else 0.2,
                cog_deg=0.0,
            )
        )
    return Trajectory(mmsi, points)


class TestDetectStops:
    def test_finds_the_dwell(self):
        track = track_with_stop()
        stops = detect_stops(track, min_duration_s=900.0)
        assert len(stops) == 1
        stop = stops[0]
        assert stop.duration_s >= 25 * 60.0
        assert stop.mmsi == 5

    def test_short_pause_ignored(self):
        track = track_with_stop(stop_len=5)  # 5 min < 15 min threshold
        assert detect_stops(track, min_duration_s=900.0) == []

    def test_moving_track_no_stops(self):
        points = [
            TrackPoint(i * 60.0, 48.0 + i * 0.002, -5.0, 8.0, 0.0)
            for i in range(60)
        ]
        assert detect_stops(Trajectory(1, points)) == []

    def test_uses_implied_speed_when_sog_missing(self):
        points = []
        for i in range(40):
            lat = 48.0 if i < 30 else 48.0 + (i - 30) * 0.002
            points.append(TrackPoint(i * 60.0, lat, -5.0, None, None))
        stops = detect_stops(Trajectory(1, points), min_duration_s=900.0)
        assert len(stops) == 1

    def test_drifting_beyond_radius_not_a_stop(self):
        # Slow but steadily moving: covers > max_radius.
        points = [
            TrackPoint(i * 60.0, 48.0 + i * 0.0004, -5.0, 0.8, 0.0)
            for i in range(60)
        ]
        stops = detect_stops(
            Trajectory(1, points), min_duration_s=900.0, max_radius_m=500.0
        )
        assert stops == []


class TestStopsAndMoves:
    def test_alternation(self):
        episodes = stops_and_moves(track_with_stop())
        labels = [label for label, __, __ in episodes]
        assert labels == ["move", "stop", "move"]

    def test_episodes_cover_span(self):
        track = track_with_stop()
        episodes = stops_and_moves(track)
        assert episodes[0][1] == track.t_start
        assert episodes[-1][2] == track.t_end
        for (__, __, end), (__, start, __) in zip(episodes, episodes[1:]):
            assert end == start

    def test_all_stop_track(self):
        points = [
            TrackPoint(i * 60.0, 48.0, -5.0, 0.1, 0.0) for i in range(40)
        ]
        episodes = stops_and_moves(Trajectory(1, points))
        assert [label for label, *_ in episodes] == ["stop"]


class TestPortCalls:
    PORTS = [Port("BREST", 48.38, -4.49), Port("CHERBOURG", 49.65, -1.62)]

    def test_stop_near_port_is_call(self):
        track = track_with_stop(stop_lat=48.38)
        # Shift longitudes so the dwell sits on Brest.
        points = [
            TrackPoint(p.t, p.lat, -4.49, p.sog_knots, p.cog_deg)
            for p in track.points
        ]
        stops = detect_stops(Trajectory(5, points), min_duration_s=900.0)
        calls = port_calls(stops, self.PORTS)
        assert len(calls) == 1
        assert calls[0][1].name == "BREST"

    def test_open_sea_stop_is_not_a_call(self):
        track = track_with_stop(stop_lat=47.0)  # far from both ports
        stops = detect_stops(track, min_duration_s=900.0)
        assert stops  # sanity
        assert port_calls(stops, self.PORTS) == []

    def test_nearest_port_wins(self):
        stop = detect_stops(
            track_with_stop(stop_lat=48.38), min_duration_s=900.0
        )
        # Build a fake stop exactly between two nearby ports.
        from repro.trajectory.stops import StopSegment

        near_brest = StopSegment(1, 0.0, 1800.0, 48.39, -4.49)
        calls = port_calls([near_brest], self.PORTS)
        assert calls[0][1].name == "BREST"
