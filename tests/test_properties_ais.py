"""Property-based tests for the AIS codec: decode(encode(x)) == x."""

import math

from hypothesis import given, settings, strategies as st

from repro.ais import (
    ClassBPositionReport,
    NavigationStatus,
    PositionReport,
    StaticVoyageData,
    decode_sentences,
    encode_sentences,
    verify_checksum,
)
from repro.ais.sixbit import BitBuffer, SIXBIT_ALPHABET

mmsi_strategy = st.integers(min_value=200_000_000, max_value=775_999_999)
lat_strategy = st.floats(min_value=-89.99, max_value=89.99)
lon_strategy = st.floats(min_value=-179.99, max_value=179.99)
sog_strategy = st.one_of(
    st.none(), st.floats(min_value=0.0, max_value=102.0)
)
cog_strategy = st.one_of(
    st.none(), st.floats(min_value=0.0, max_value=359.9)
)
#: Text from the AIS 6-bit alphabet minus the '@' padding char; no
#: leading/trailing spaces (trimmed by the wire format by design).
sixbit_text = st.text(
    alphabet=sorted(set(SIXBIT_ALPHABET) - {"@"}), min_size=0, max_size=18
).map(lambda s: s.strip())


class TestBitBufferRoundtrip:
    @given(st.integers(min_value=0, max_value=2**30 - 1),
           st.integers(min_value=30, max_value=32))
    def test_uint(self, value, width):
        buf = BitBuffer()
        buf.write_uint(value, width)
        assert buf.read_uint(width) == value

    @given(st.integers(min_value=-(2**27), max_value=2**27 - 1))
    def test_int28(self, value):
        buf = BitBuffer()
        buf.write_int(value, 28)
        assert buf.read_int(28) == value

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=100))
    def test_payload_armor(self, values):
        buf = BitBuffer()
        for v in values:
            buf.write_uint(v, 6)
        payload, fill = buf.to_payload()
        assert fill == 0
        restored = BitBuffer.from_payload(payload)
        assert [restored.read_uint(6) for __ in values] == values


class TestPositionRoundtrip:
    @given(
        mmsi=mmsi_strategy, lat=lat_strategy, lon=lon_strategy,
        sog=sog_strategy, cog=cog_strategy,
        heading=st.one_of(st.none(), st.integers(min_value=0, max_value=359)),
        status=st.sampled_from(list(NavigationStatus)),
        second=st.one_of(st.none(), st.integers(min_value=0, max_value=59)),
    )
    @settings(max_examples=200)
    def test_roundtrip(self, mmsi, lat, lon, sog, cog, heading, status, second):
        msg = PositionReport(
            mmsi=mmsi, lat=lat, lon=lon, sog_knots=sog, cog_deg=cog,
            heading_deg=float(heading) if heading is not None else None,
            nav_status=status, timestamp_s=second,
        )
        sentences = encode_sentences(msg)
        assert all(verify_checksum(s) for s in sentences)
        out = decode_sentences(sentences)[0]
        assert out.mmsi == mmsi
        assert math.isclose(out.lat, lat, abs_tol=2e-6)
        assert math.isclose(out.lon, lon, abs_tol=2e-6)
        if sog is None:
            assert out.sog_knots is None
        else:
            assert math.isclose(out.sog_knots, min(sog, 102.2), abs_tol=0.051)
        if cog is None:
            assert out.cog_deg is None
        else:
            assert math.isclose(out.cog_deg, cog, abs_tol=0.051) or (
                cog > 359.94 and out.cog_deg == 0.0
            )
        if heading is None:
            assert out.heading_deg is None
        else:
            assert out.heading_deg == float(heading)
        assert out.nav_status is status
        assert out.timestamp_s == second

    @given(mmsi=mmsi_strategy, lat=lat_strategy, lon=lon_strategy)
    @settings(max_examples=100)
    def test_class_b_roundtrip(self, mmsi, lat, lon):
        msg = ClassBPositionReport(mmsi=mmsi, lat=lat, lon=lon,
                                   sog_knots=5.0, cog_deg=123.4)
        out = decode_sentences(encode_sentences(msg))[0]
        assert out.mmsi == mmsi
        assert math.isclose(out.lat, lat, abs_tol=2e-6)
        assert math.isclose(out.lon, lon, abs_tol=2e-6)


class TestLongRangeRoundtrip:
    @given(
        mmsi=mmsi_strategy,
        lat=st.floats(min_value=-89.9, max_value=89.9),
        lon=st.floats(min_value=-179.9, max_value=179.9),
        sog=st.one_of(st.none(), st.integers(min_value=0, max_value=62)),
        cog=st.one_of(st.none(), st.integers(min_value=0, max_value=359)),
    )
    @settings(max_examples=100)
    def test_roundtrip_within_type27_quantum(self, mmsi, lat, lon, sog, cog):
        from repro.ais import LongRangeReport

        msg = LongRangeReport(
            mmsi=mmsi, lat=lat, lon=lon,
            sog_knots=None if sog is None else float(sog),
            cog_deg=None if cog is None else float(cog),
        )
        out = decode_sentences(encode_sentences(msg))[0]
        assert out.mmsi == mmsi
        # 1/10 arc-minute quantum ≈ 0.00167°.
        assert math.isclose(out.lat, lat, abs_tol=0.001)
        assert math.isclose(out.lon, lon, abs_tol=0.001)
        if sog is None:
            assert out.sog_knots is None
        else:
            assert out.sog_knots == float(sog)
        if cog is None:
            assert out.cog_deg is None
        else:
            assert out.cog_deg == float(cog)


class TestStaticRoundtrip:
    @given(
        mmsi=mmsi_strategy,
        name=sixbit_text,
        callsign=st.text(
            alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", max_size=7
        ),
        destination=sixbit_text,
        draught=st.floats(min_value=0.0, max_value=25.5),
        ship_type=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=100)
    def test_roundtrip(self, mmsi, name, callsign, destination, draught,
                       ship_type):
        msg = StaticVoyageData(
            mmsi=mmsi, imo=9074729, callsign=callsign, shipname=name,
            ship_type_code=ship_type, draught_m=draught,
            destination=destination,
        )
        out = decode_sentences(encode_sentences(msg))[0]
        assert out.mmsi == mmsi
        assert out.shipname == name[:20].rstrip()
        assert out.callsign == callsign[:7].rstrip()
        assert out.destination == destination[:20].rstrip()
        assert out.ship_type_code == ship_type
        assert math.isclose(out.draught_m, draught, abs_tol=0.051)

    @given(mmsi=mmsi_strategy, name=sixbit_text)
    @settings(max_examples=50)
    def test_multipart_reassembly_order_independent(self, mmsi, name):
        from repro.ais import AisDecoder

        msg = StaticVoyageData(mmsi=mmsi, shipname=name)
        sentences = encode_sentences(msg)
        if len(sentences) == 1:
            return
        decoder = AisDecoder()
        results = [decoder.feed(s) for s in reversed(sentences)]
        decoded = [r for r in results if r is not None]
        assert len(decoded) == 1
        assert decoded[0].shipname == name[:20].rstrip()
