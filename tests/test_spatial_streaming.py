"""Tests for the incremental (streaming) spatial index."""

import pytest

from repro.spatial import StreamingGridIndex


class TestObserve:
    def test_latest_position_wins(self):
        index = StreamingGridIndex(1000.0)
        index.observe(7, 0.0, 48.0, -5.0)
        index.observe(7, 60.0, 48.1, -5.0)
        assert len(index) == 1
        assert index.position(7) == (48.1, -5.0)
        assert index.timestamp(7) == 60.0

    def test_out_of_order_fix_ignored(self):
        index = StreamingGridIndex(1000.0)
        index.observe(7, 60.0, 48.1, -5.0)
        assert index.observe(7, 30.0, 47.0, -6.0) is False
        assert index.position(7) == (48.1, -5.0)

    def test_queries_follow_updates(self):
        index = StreamingGridIndex(1000.0)
        index.observe(1, 0.0, 48.0, -5.0)
        index.observe(2, 0.0, 48.0005, -5.0)
        assert [p[:2] for p in index.all_pairs_within(200.0)] == [(1, 2)]
        # Vessel 2 steams away; the pair disappears.
        index.observe(2, 60.0, 49.0, -5.0)
        assert list(index.all_pairs_within(200.0)) == []
        assert [k for k, __ in index.knn(49.0, -5.0, 1)] == [2]


class TestEviction:
    def test_silent_vessels_expire(self):
        index = StreamingGridIndex(1000.0, max_age_s=300.0)
        index.observe(1, 0.0, 48.0, -5.0)
        index.observe(2, 0.0, 48.001, -5.0)
        index.observe(2, 600.0, 48.001, -5.0)  # vessel 1 now 600 s silent
        assert 1 not in index
        assert 2 in index
        assert list(index.radius_query(48.0, -5.0, 500.0)) != []

    def test_refresh_defers_eviction(self):
        index = StreamingGridIndex(1000.0, max_age_s=300.0)
        index.observe(1, 0.0, 48.0, -5.0)
        index.observe(1, 250.0, 48.0, -5.0)
        index.advance(450.0)  # 200 s after the refresh: still live
        assert 1 in index
        index.advance(600.0)
        assert 1 not in index

    def test_advance_never_goes_backward(self):
        index = StreamingGridIndex(1000.0, max_age_s=100.0)
        index.observe(1, 1000.0, 48.0, -5.0)
        index.advance(0.0)
        assert index.now == 1000.0
        assert 1 in index

    def test_invalid_max_age_rejected(self):
        with pytest.raises(ValueError):
            StreamingGridIndex(1000.0, max_age_s=0.0)

    def test_remove(self):
        index = StreamingGridIndex(1000.0)
        index.observe(1, 0.0, 48.0, -5.0)
        index.remove(1)
        assert 1 not in index
        assert list(index.radius_query(48.0, -5.0, 1000.0)) == []
