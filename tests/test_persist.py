"""Durable state: checkpoints, crash-restore parity, the track store.

The headline property: **crash-at-tick-k + restore == uninterrupted**.
A monitor that checkpoints at every barrier, is killed after any tick k,
and is restored into a fresh process (any worker count) produces the
exact event set, forecasts and cube the never-interrupted run produces —
regional and antimeridian-seam scenarios alike.  Around it: the
checkpoint container's integrity guarantees (atomicity, hash-verified
sections, versioning, fingerprint binding), the resumable-source
position contract, the SQLite track store's query parity with in-memory
products, and the adaptive CEP lateness + state-size satellites.
"""

import dataclasses
import functools
import os
import pickle
import tempfile
import zipfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MaritimePipeline, PipelineConfig
from repro.core.config import ConfigError
from repro.core.stages.state import TtlTable
from repro.events.cep import AdaptiveLateness
from repro.monitor import MaritimeMonitor
from repro.persist import (
    CheckpointError,
    SqliteTrackStore,
    config_fingerprint,
    latest_checkpoint,
    read_checkpoint,
    read_manifest,
    write_checkpoint,
)
from repro.simulation.world import Port
from repro.sources import (
    IterableSource,
    NmeaFileSource,
    NmeaTcpSource,
    SourcePosition,
    write_nmea_file,
)

from test_core_stages import SCENARIOS, event_keys

TICK_S = 240.0


@functools.lru_cache(maxsize=None)
def scenario_run(name):
    return SCENARIOS[name]().run()


def _pol_split(run):
    return MaritimePipeline(PipelineConfig())._pol_split(run)


def _monitor(run, workers=1, **kwargs):
    return MaritimeMonitor(
        PipelineConfig(workers=workers),
        specs=run.specs,
        weather=run.weather,
        keep_products=True,
        **kwargs,
    )


@functools.lru_cache(maxsize=None)
def uninterrupted(name):
    """The never-crashed monitor products every restore must reproduce."""
    run = scenario_run(name)
    monitor = _monitor(run)
    monitor.attach(IterableSource(list(run.observations)))
    monitor.run(tick_s=TICK_S, pol_split_t=_pol_split(run))
    return monitor.result()


@functools.lru_cache(maxsize=None)
def checkpointed(name, workers):
    """One checkpoint-per-tick run; returns (dir, result, n_checkpoints)."""
    run = scenario_run(name)
    directory = tempfile.mkdtemp(prefix=f"ckpt-{name}-")
    monitor = _monitor(run, workers=workers)
    monitor.attach(IterableSource(list(run.observations)))
    monitor.run(
        tick_s=TICK_S, pol_split_t=_pol_split(run),
        checkpoint_dir=directory,
    )
    names = sorted(os.listdir(directory))
    return directory, monitor.result(), names


def assert_same_products(result, baseline):
    assert event_keys(result.events) == event_keys(baseline.events)
    assert event_keys(result.complex_events) == event_keys(
        baseline.complex_events
    )
    assert result.forecasts == baseline.forecasts
    assert result.cube.total == baseline.cube.total
    assert result.cube.cell_counts() == baseline.cube.cell_counts()


# ---------------------------------------------------------------------------
# Checkpoint container


class TestCheckpointContainer:
    def _write(self, tmp_path, sections=None, **kwargs):
        path = str(tmp_path / "x.ckpt")
        write_checkpoint(
            path,
            sections if sections is not None else {"a": [1, 2], "b": {"k": 3}},
            fingerprint=kwargs.pop("fingerprint", "f" * 64),
            watermark=kwargs.pop("watermark", 42.0),
            workers=kwargs.pop("workers", 1),
            **kwargs,
        )
        return path

    def test_round_trip(self, tmp_path):
        path = self._write(
            tmp_path,
            sections={"a": [1, 2.5, "x"], "b": {"k": (3, None)}},
            n_increments=7,
            source_positions=[{"kind": "file", "offset": 99}],
        )
        manifest, sections = read_checkpoint(path)
        assert sections == {"a": [1, 2.5, "x"], "b": {"k": (3, None)}}
        assert manifest.watermark == 42.0
        assert manifest.n_increments == 7
        assert manifest.source_positions == [{"kind": "file", "offset": 99}]
        assert sorted(manifest.section_hashes) == ["a", "b"]

    def test_no_tmp_residue(self, tmp_path):
        path = self._write(tmp_path)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_truncated_file_rejected(self, tmp_path):
        path = self._write(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_not_a_zip_rejected(self, tmp_path):
        path = str(tmp_path / "junk.ckpt")
        open(path, "w").write("not a checkpoint")
        with pytest.raises(CheckpointError, match="not a readable"):
            read_checkpoint(path)

    def test_corrupt_section_rejected(self, tmp_path):
        """Flipping section bytes without touching the manifest trips the
        per-section hash."""
        path = self._write(tmp_path)
        with zipfile.ZipFile(path) as archive:
            members = {n: archive.read(n) for n in archive.namelist()}
        members["sections/a.pkl"] = pickle.dumps([9, 9, 9])
        with zipfile.ZipFile(path, "w") as archive:
            for name, blob in members.items():
                archive.writestr(name, blob)
        with pytest.raises(CheckpointError, match="corrupt"):
            read_checkpoint(path)

    def test_missing_section_rejected(self, tmp_path):
        path = self._write(tmp_path)
        with zipfile.ZipFile(path) as archive:
            members = {n: archive.read(n) for n in archive.namelist()}
        del members["sections/b.pkl"]
        with zipfile.ZipFile(path, "w") as archive:
            for name, blob in members.items():
                archive.writestr(name, blob)
        with pytest.raises(CheckpointError, match="missing"):
            read_checkpoint(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = self._write(tmp_path)
        manifest = read_manifest(path)
        for bump in ("format_version", "schema_version"):
            bad = dataclasses.replace(
                manifest, **{bump: getattr(manifest, bump) + 1}
            )
            with zipfile.ZipFile(path) as archive:
                members = {n: archive.read(n) for n in archive.namelist()}
            members["manifest.json"] = bad.to_json()
            with zipfile.ZipFile(path, "w") as archive:
                for name, blob in members.items():
                    archive.writestr(name, blob)
            with pytest.raises(CheckpointError, match="not supported"):
                read_checkpoint(path)

    def test_unpicklable_section_rejected_before_write(self, tmp_path):
        path = str(tmp_path / "x.ckpt")
        with pytest.raises(CheckpointError, match="not serialisable"):
            write_checkpoint(
                path, {"bad": lambda: None},
                fingerprint="f", watermark=0.0, workers=1,
            )
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_latest_checkpoint(self, tmp_path):
        assert latest_checkpoint(str(tmp_path)) is None
        assert latest_checkpoint(str(tmp_path / "nope")) is None
        for n in (3, 1, 12):
            self._write(tmp_path)
            os.replace(
                str(tmp_path / "x.ckpt"),
                str(tmp_path / f"ckpt-{n:08d}.ckpt"),
            )
        (tmp_path / "notes.txt").write_text("ignored")
        assert latest_checkpoint(str(tmp_path)).endswith(
            "ckpt-00000012.ckpt"
        )

    @settings(max_examples=25, deadline=None)
    @given(
        sections=st.dictionaries(
            st.text(
                st.characters(
                    whitelist_categories=("Ll", "Nd"), min_codepoint=48
                ),
                min_size=1, max_size=8,
            ),
            st.recursive(
                st.none() | st.booleans() | st.integers()
                | st.floats(allow_nan=False) | st.text(max_size=12),
                lambda leaf: st.lists(leaf, max_size=4)
                | st.dictionaries(st.text(max_size=6), leaf, max_size=4),
                max_leaves=12,
            ),
            min_size=1, max_size=5,
        ),
        watermark=st.floats(allow_nan=False),
    )
    def test_property_round_trip(self, sections, watermark):
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "p.ckpt")
            write_checkpoint(
                path, sections,
                fingerprint="f" * 64, watermark=watermark, workers=3,
            )
            manifest, loaded = read_checkpoint(path)
            assert loaded == sections
            assert manifest.watermark == watermark


class TestFingerprint:
    def test_ignores_performance_knobs(self):
        a = PipelineConfig(workers=1, batch_decode=True)
        b = PipelineConfig(workers=4, batch_decode=False)
        assert config_fingerprint(a, [], [], []) == \
            config_fingerprint(b, [], [], [])

    def test_semantic_fields_bind(self):
        a = PipelineConfig()
        b = PipelineConfig(gap_min_s=a.gap_min_s + 1.0)
        assert config_fingerprint(a, [], [], []) != \
            config_fingerprint(b, [], [], [])

    def test_ports_zones_patterns_bind(self):
        config = PipelineConfig()
        base = config_fingerprint(config, [], [], [])
        port = Port("X", 1.0, 2.0)
        assert config_fingerprint(config, [port], [], []) != base
        from repro.core.pipeline import DARK_RENDEZVOUS
        assert config_fingerprint(config, [], [], [DARK_RENDEZVOUS]) != base

    def test_restore_rejects_mismatch(self, tmp_path):
        run = scenario_run("regional")
        path = str(tmp_path / "a.ckpt")
        pipeline = MaritimePipeline(PipelineConfig())
        session = pipeline.new_session(specs=run.specs)
        session.checkpoint(path)
        other = MaritimePipeline(PipelineConfig(gap_min_s=123.0))
        with pytest.raises(CheckpointError, match="different logical"):
            other.restore_session(path)

    def test_restore_accepts_different_workers(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        MaritimePipeline(PipelineConfig(workers=2)).new_session()\
            .checkpoint(path)
        session, manifest = MaritimePipeline(
            PipelineConfig(workers=4)
        ).restore_session(path)
        assert manifest.workers == 2
        assert session.workers == 4


# ---------------------------------------------------------------------------
# Crash/restore parity — the tentpole property


class TestCrashRestoreParity:
    def _restore_and_finish(self, name, ckpt_path, workers):
        run = scenario_run(name)
        monitor = MaritimeMonitor(PipelineConfig(workers=workers))
        monitor.restore(ckpt_path)
        monitor.attach(IterableSource(list(run.observations)))
        monitor.run(tick_s=TICK_S)
        return monitor.result()

    def test_checkpointing_does_not_change_products(self):
        __, result, names = checkpointed("regional", workers=1)
        assert len(names) > 5
        assert_same_products(result, uninterrupted("regional"))

    @pytest.mark.parametrize("position", ["first", "mid", "last"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_crash_at_k_equals_uninterrupted(self, position, workers):
        directory, __, names = checkpointed("regional", workers=1)
        k = {"first": 0, "mid": len(names) // 2, "last": -1}[position]
        result = self._restore_and_finish(
            "regional", os.path.join(directory, names[k]), workers
        )
        assert_same_products(result, uninterrupted("regional"))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_seam_restore_across_worker_counts(self, workers):
        """Snapshot written by a 2-worker run, restored under 1/2/4, on
        traffic straddling the antimeridian."""
        directory, result, names = checkpointed("seam", workers=2)
        assert_same_products(result, uninterrupted("seam"))
        restored = self._restore_and_finish(
            "seam", os.path.join(directory, names[len(names) // 2]), workers
        )
        assert_same_products(restored, uninterrupted("seam"))

    def test_real_crash_mid_run_then_restore(self, tmp_path):
        """An actual mid-stream abort (failing subscriber), not just the
        barrier-equivalence argument: restore from the last checkpoint
        on disk and finish; products match the uninterrupted run."""
        run = scenario_run("regional")
        directory = str(tmp_path / "ck")

        class Boom(Exception):
            pass

        ticks = {"n": 0}

        def crash_after_8(increment):
            ticks["n"] += 1
            if ticks["n"] >= 8:
                raise Boom()

        monitor = _monitor(run)
        monitor.attach(IterableSource(list(run.observations)))
        monitor.subscribe(on_increment=crash_after_8)
        with pytest.raises(Boom):
            monitor.run(
                tick_s=TICK_S, pol_split_t=_pol_split(run),
                checkpoint_dir=directory,
            )
        last = latest_checkpoint(directory)
        assert last is not None and last.endswith("ckpt-00000007.ckpt")
        result = self._restore_and_finish("regional", last, workers=2)
        assert_same_products(result, uninterrupted("regional"))

    def test_restore_from_nmea_file_byte_offsets(self, tmp_path):
        """The whole catch-up path over a real NMEA file: byte-offset
        positions recorded at barriers, a fresh source sought to them."""
        run = scenario_run("regional")
        feed = str(tmp_path / "feed.nmea")
        write_nmea_file(run.observations, feed)
        directory = str(tmp_path / "ck")

        monitor = _monitor(run)
        monitor.attach(NmeaFileSource(feed))
        monitor.run(
            tick_s=TICK_S, pol_split_t=_pol_split(run),
            checkpoint_dir=directory,
        )
        assert_same_products(monitor.result(), uninterrupted("regional"))

        names = sorted(os.listdir(directory))
        ckpt = os.path.join(directory, names[len(names) // 2])
        manifest = read_manifest(ckpt)
        recorded = manifest.source_positions[0]
        assert recorded is not None and recorded["kind"] == "file"
        assert 0 < recorded["offset"] < os.path.getsize(feed)

        restored = MaritimeMonitor(PipelineConfig(workers=2))
        restored.restore(ckpt)
        restored.attach(NmeaFileSource(feed))
        report = restored.run(tick_s=TICK_S)
        assert_same_products(restored.result(), uninterrupted("regional"))
        # Catch-up replay read only the unprocessed suffix.
        assert report.n_observations < len(run.observations)

    def test_checkpoint_every_thins_files(self, tmp_path):
        run = scenario_run("regional")
        directory = str(tmp_path / "ck")
        monitor = _monitor(run)
        monitor.attach(IterableSource(list(run.observations)))
        monitor.run(
            tick_s=TICK_S, pol_split_t=_pol_split(run),
            checkpoint_dir=directory, checkpoint_every=5,
        )
        names = sorted(os.listdir(directory))
        __, __, dense = checkpointed("regional", workers=1)
        assert 0 < len(names) < len(dense)
        assert all(
            int(name[5:13]) % 5 == 0 for name in names
        )

    def test_checkpoint_mid_feed_refused(self):
        """A synchronous subscriber runs mid-barrier: no consistent
        state exists, so checkpoint() must refuse."""
        run = scenario_run("regional")
        pipeline = MaritimePipeline(PipelineConfig())
        session = pipeline.new_session(specs=run.specs)
        errors = []

        def checkpoint_from_callback(increment):
            with tempfile.TemporaryDirectory() as d:
                try:
                    session.checkpoint(os.path.join(d, "x.ckpt"))
                except RuntimeError as exc:
                    errors.append(str(exc))

        session.subscribe(on_increment=checkpoint_from_callback)
        session.feed(run.observations[:50])
        assert errors and "watermark barrier" in errors[0]

    def test_snapshot_reexport_is_canonical(self, tmp_path):
        """Same worker count, no new records: a restored state exports
        byte-identical section pickles (sorted sets, canonical orders —
        the property that makes checkpoints diffable)."""
        run = scenario_run("regional")
        pipeline = MaritimePipeline(PipelineConfig())
        session = pipeline.new_session(
            specs=run.specs, weather=run.weather,
            pol_split_t=_pol_split(run),
        )
        session.feed(run.observations[: len(run.observations) // 2])
        path = str(tmp_path / "a.ckpt")
        first = session.checkpoint(path)
        restored, __ = pipeline.restore_session(path)
        second = restored.checkpoint(str(tmp_path / "b.ckpt"))
        assert first.section_hashes == second.section_hashes
        assert first.watermark == second.watermark


# ---------------------------------------------------------------------------
# SQLite track store


@functools.lru_cache(maxsize=None)
def stored_run():
    """One monitored run archived into a store; returns
    (db_path, result, report)."""
    run = scenario_run("regional")
    directory = tempfile.mkdtemp(prefix="trackstore-")
    db = os.path.join(directory, "tracks.db")
    monitor = _monitor(run)
    store = SqliteTrackStore(db)
    store.attach(monitor)
    monitor.attach(IterableSource(list(run.observations)))
    report = monitor.run(tick_s=TICK_S, pol_split_t=_pol_split(run))
    result = monitor.result()
    store.close()
    return db, result, report


class TestSqliteTrackStore:
    def test_positions_match_pipeline_segments(self):
        db, result, __ = stored_run()
        store = SqliteTrackStore(db)
        mmsis = {t.mmsi for t in result.trajectories}
        assert mmsis
        for mmsi in mmsis:
            expected = sorted(
                (p for t in result.trajectories if t.mmsi == mmsi
                 for p in t.points),
                key=lambda p: p.t,
            )
            assert store.positions(mmsi) == expected
        store.close()

    def test_time_window_narrowing(self):
        db, result, __ = stored_run()
        store = SqliteTrackStore(db)
        mmsi = result.trajectories[0].mmsi
        full = store.positions(mmsi)
        t0, t1 = full[2].t, full[-3].t
        window = store.positions(mmsi, t0, t1)
        assert window == [p for p in full if t0 <= p.t <= t1]
        store.close()

    def test_events_match_pipeline_products(self):
        db, result, __ = stored_run()
        store = SqliteTrackStore(db)
        assert event_keys(store.events()) == event_keys(
            result.events + result.complex_events
        )
        assert event_keys(store.events(include_complex=False)) == \
            event_keys(result.events)
        store.close()

    def test_event_filters(self):
        db, result, __ = stored_run()
        store = SqliteTrackStore(db)
        some = result.events[0]
        by_kind = store.events(kind=some.kind)
        assert by_kind and all(e.kind is some.kind for e in by_kind)
        assert event_keys(by_kind) == event_keys(
            [e for e in result.events + result.complex_events
             if e.kind is some.kind]
        )
        mmsi = some.mmsis[0]
        by_vessel = store.events(mmsi=mmsi)
        assert by_vessel and all(mmsi in e.mmsis for e in by_vessel)
        with pytest.raises(ValueError):
            store.events(kind="not_a_kind")
        store.close()

    def test_tracks_in_region(self):
        db, result, __ = stored_run()
        store = SqliteTrackStore(db)
        everywhere = store.tracks_in_region(-90, 90, -180, 180)
        assert len(everywhere) == len(result.trajectories)
        assert store.tracks_in_region(-89, -80, 100, 110) == []
        segment = everywhere[0]
        points = store.segment_points(segment["segment_id"])
        assert len(points) == segment["n_points"]
        assert all(
            segment["lat_min"] <= p.lat <= segment["lat_max"]
            for p in points
        )
        store.close()

    def test_counts_reconcile_with_report(self):
        db, result, report = stored_run()
        store = SqliteTrackStore(db)
        summary = store.summary()
        assert summary["track_segments"] == len(result.trajectories)
        assert summary["vessel_positions"] == sum(
            len(t) for t in result.trajectories
        )
        assert summary["events"] == \
            report.n_events + report.n_complex_events
        assert summary["alarms"] == report.n_alarms
        assert summary["watermark"] is not None
        store.close()

    def test_survives_reopen(self):
        """Durability: a fresh connection (fresh process, in effect)
        sees everything the writing run archived."""
        db, result, __ = stored_run()
        again = SqliteTrackStore(db)
        assert again.summary()["track_segments"] == len(result.trajectories)
        again.close()

    def test_non_json_details_round_trip_as_equal_events(self, tmp_path):
        from repro.events.base import Event, EventKind

        db = str(tmp_path / "d.db")
        store = SqliteTrackStore(db)
        event = Event(
            kind=EventKind.GAP, t_start=1.0, t_end=2.0, mmsis=(7,),
            lat=0.0, lon=0.0,
            details={"vessel": Port("X", 1.0, 2.0)},  # not JSON-native
        )

        class FakeIncrement:
            t_watermark = 2.0
            new_segments = ()
            new_events = (event,)
            new_complex_events = ()
            new_alarms = ()

        store.write_increment(FakeIncrement())
        [loaded] = store.events()
        assert loaded == event  # details excluded from equality
        assert isinstance(loaded.details["vessel"], str)
        store.close()


# ---------------------------------------------------------------------------
# Resumable sources


class TestSourcePositions:
    def _tagged_feed(self, tmp_path):
        run = scenario_run("regional")
        path = str(tmp_path / "feed.nmea")
        write_nmea_file(run.observations, path)
        # Compare against a full file read, not the simulator's feed:
        # the file format drops per-fragment metadata the simulator had.
        return path, list(NmeaFileSource(path))

    def test_file_seek_yields_exact_suffix(self, tmp_path):
        path, all_obs = self._tagged_feed(tmp_path)
        source = NmeaFileSource(path)
        iterator = iter(source)
        consumed = [next(iterator) for __ in range(100)]
        position = source.position()
        assert position.kind == "file"
        assert position.n_observations == 100
        assert position.t_last == consumed[-1].t_received

        resumed = NmeaFileSource(path)
        resumed.seek(position)
        suffix = list(resumed)
        assert consumed + suffix == all_obs

    def test_file_position_is_line_aligned(self, tmp_path):
        path, __ = self._tagged_feed(tmp_path)
        source = NmeaFileSource(path)
        iterator = iter(source)
        next(iterator)
        offset = source.position().offset
        with open(path, "rb") as fh:
            fh.seek(offset - 1)
            assert fh.read(1) == b"\n"

    def test_synthetic_timeline_continues_after_seek(self, tmp_path):
        """Untagged lines get reception times from the cumulative
        observation counter — the seeded counter keeps the clock
        monotonic across a restore."""
        run = scenario_run("regional")
        path = str(tmp_path / "bare.nmea")
        with open(path, "w") as fh:
            for obs in run.observations[:50]:
                fh.write(obs.sentence + "\n")
        full = list(NmeaFileSource(path, synthetic_interval_s=2.0))
        source = NmeaFileSource(path, synthetic_interval_s=2.0)
        iterator = iter(source)
        head = [next(iterator) for __ in range(20)]
        resumed = NmeaFileSource(path, synthetic_interval_s=2.0)
        resumed.seek(source.position())
        tail = list(resumed)
        assert [o.t_received for o in head + tail] == \
            [o.t_received for o in full]

    def test_seek_after_iteration_started_refused(self, tmp_path):
        path, __ = self._tagged_feed(tmp_path)
        source = NmeaFileSource(path)
        next(iter(source))
        with pytest.raises(RuntimeError, match="before iteration"):
            source.seek(SourcePosition(kind="file", offset=0))

    def test_iterable_source_seek(self):
        run = scenario_run("regional")
        observations = list(run.observations)[:40]
        source = IterableSource(observations)
        iterator = iter(source)
        head = [next(iterator) for __ in range(15)]
        position = source.position()
        assert position.kind == "index" and position.offset == 15

        resumed = IterableSource(observations)
        resumed.seek(position)
        assert head + list(resumed) == observations
        with pytest.raises(RuntimeError):
            source.seek(position)

    def test_tcp_source_is_stream_kind(self):
        source = NmeaTcpSource("localhost", 1)  # never connected
        position = source.position()
        assert position.kind == "stream"
        assert not hasattr(source, "seek")


# ---------------------------------------------------------------------------
# Satellites: adaptive CEP lateness, state-size probe, config validation


class TestAdaptiveLateness:
    def test_cap_until_first_observation(self):
        lateness = AdaptiveLateness(floor_s=10.0, cap_s=100.0)
        assert lateness.value() == 100.0
        lateness.observe(0.0)
        assert lateness.value() == 10.0  # clamped up to the floor

    def test_tracks_ewma_with_margin(self):
        lateness = AdaptiveLateness(
            floor_s=0.0, cap_s=1e9, alpha=0.5, margin=2.0
        )
        lateness.observe(100.0)
        assert lateness.value() == pytest.approx(200.0)
        lateness.observe(200.0)  # ewma -> 150
        assert lateness.value() == pytest.approx(300.0)
        assert lateness.n_observed == 2

    def test_clamps_to_cap_and_floor(self):
        lateness = AdaptiveLateness(floor_s=50.0, cap_s=60.0)
        lateness.observe(1e6)
        assert lateness.value() == 60.0
        lateness = AdaptiveLateness(floor_s=50.0, cap_s=60.0)
        lateness.observe(0.0)
        assert lateness.value() == 50.0

    def test_negative_latency_clamped(self):
        lateness = AdaptiveLateness(floor_s=0.0, cap_s=100.0)
        lateness.observe(-5.0)  # an event ahead of the watermark
        assert lateness.ewma_s == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        latencies=st.lists(
            st.floats(min_value=-1e4, max_value=1e6), max_size=30
        ),
        floor=st.floats(min_value=0.0, max_value=1e3),
        span=st.floats(min_value=0.0, max_value=1e4),
    )
    def test_value_always_within_bounds(self, latencies, floor, span):
        lateness = AdaptiveLateness(floor_s=floor, cap_s=floor + span)
        for latency in latencies:
            lateness.observe(latency)
        assert floor <= lateness.value() <= floor + span or (
            not latencies and lateness.value() == floor + span
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLateness(floor_s=-1.0, cap_s=10.0)
        with pytest.raises(ValueError):
            AdaptiveLateness(floor_s=10.0, cap_s=5.0)
        with pytest.raises(ValueError):
            AdaptiveLateness(floor_s=0.0, cap_s=1.0, alpha=0.0)

    def test_config_wiring(self):
        auto = MaritimePipeline(PipelineConfig()).new_session()
        assert isinstance(auto.state.cep_lateness, AdaptiveLateness)
        static = MaritimePipeline(
            PipelineConfig(cep_event_lateness_s=3600.0)
        ).new_session()
        assert static.state.cep_lateness is None

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(cep_event_lateness_s=-1.0).validate()
        with pytest.raises(ConfigError):
            PipelineConfig(cep_event_lateness_s="soon").validate()
        with pytest.raises(ConfigError):
            PipelineConfig(cep_lateness_floor_s=100.0,
                           cep_lateness_cap_s=50.0).validate()

    def test_adaptive_survives_checkpoint(self, tmp_path):
        run = scenario_run("regional")
        pipeline = MaritimePipeline(PipelineConfig())
        session = pipeline.new_session(specs=run.specs)
        session.feed(run.observations[: len(run.observations) // 2])
        before = session.state.cep_lateness
        assert before.n_observed > 0
        path = str(tmp_path / "a.ckpt")
        session.checkpoint(path)
        restored, __ = pipeline.restore_session(path)
        after = restored.state.cep_lateness
        assert after.ewma_s == before.ewma_s
        assert after.n_observed == before.n_observed
        assert after.value() == before.value()


class TestStateSizeProbe:
    def test_alarm_once_per_crossing(self):
        run = scenario_run("regional")
        pipeline = MaritimePipeline(PipelineConfig(state_size_soft_limit=5))
        session = pipeline.new_session(specs=run.specs)
        alarms = []
        session.subscribe(
            on_alarm=lambda a: alarms.append(a)
        )
        half = len(run.observations) // 2
        session.feed(run.observations[:half])
        session.feed(run.observations[half:])
        session.flush()
        sized = [a for a in alarms if "state-size" in a.explanation]
        assert len(sized) == 1  # crossed once, stayed above: one alarm
        assert "exceed the soft limit 5" in sized[0].explanation
        assert "largest:" in sized[0].explanation
        assert "state-size" in session.health.report()

    def test_disabled_when_unlimited(self):
        pipeline = MaritimePipeline(
            PipelineConfig(state_size_soft_limit=None)
        )
        session = pipeline.new_session()
        assert "state-size" not in session.health.report()

    def test_limit_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(state_size_soft_limit=0).validate()


class TestTtlTableEntries:
    @settings(max_examples=50, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.floats(min_value=0, max_value=1e6),
                st.text(max_size=5),
            ),
            max_size=20,
            unique_by=lambda e: e[0],
        )
    )
    def test_export_load_round_trip(self, entries):
        table = TtlTable()
        for key, t, value in entries:
            table.put(key, t, value)
        exported = table.export_entries()
        assert exported == sorted(exported)  # canonical order

        loaded = TtlTable()
        loaded.put(999, 0.0, "stale")  # load must clear pre-existing
        loaded.load_entries(exported)
        assert loaded.export_entries() == exported
        assert len(loaded) == len(entries)
        for key, t, value in entries:
            assert loaded.get(key) == value
            assert loaded.timestamp(key) == t
