"""Tests for uniform resampling."""

import pytest

from repro.trajectory import resample
from repro.trajectory.points import TrackPoint, Trajectory


def irregular_track():
    times = [0.0, 7.0, 30.0, 31.0, 95.0, 180.0]
    return Trajectory(
        3,
        [
            TrackPoint(t, 48.0 + t * 1e-4, -5.0, 9.0, 0.0)
            for t in times
        ],
    )


class TestResample:
    def test_uniform_cadence(self):
        out = resample(irregular_track(), 30.0)
        gaps = [b.t - a.t for a, b in zip(out.points, out.points[1:-1])]
        assert all(g == pytest.approx(30.0) for g in gaps)

    def test_span_preserved(self):
        track = irregular_track()
        out = resample(track, 30.0)
        assert out.t_start == track.t_start
        assert out.t_end == track.t_end

    def test_positions_on_path(self):
        track = irregular_track()
        out = resample(track, 10.0)
        for point in out:
            expected = track.position_at(point.t)
            assert point.lat == pytest.approx(expected[0], abs=1e-9)

    def test_kinematics_carried_from_previous_fix(self):
        points = [
            TrackPoint(0.0, 48.0, -5.0, 5.0, 10.0),
            TrackPoint(100.0, 48.01, -5.0, 15.0, 20.0),
        ]
        out = resample(Trajectory(1, points), 40.0)
        # Samples before t=100 carry the first fix's SOG.
        assert out[1].sog_knots == 5.0

    def test_single_point_passthrough(self):
        track = Trajectory(1, [TrackPoint(0.0, 48.0, -5.0)])
        assert resample(track, 10.0) is track

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            resample(irregular_track(), 0.0)

    def test_upsampling(self):
        track = irregular_track()
        out = resample(track, 5.0)
        assert len(out) > len(track)
