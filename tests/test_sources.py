"""Sources: TAG-block grammar, file replay/tail, TCP client semantics."""

import socket
import threading
import time

import pytest

from repro.ais import PositionReport, encode_sentences
from repro.simulation.receivers import Observation
from repro.sources import (
    IterableSource,
    MergedSource,
    NmeaFileSource,
    NmeaTcpSource,
    Source,
    format_tagged_sentence,
    parse_tagged_line,
    write_nmea_file,
)


def make_observation(
    i: int = 0, mmsi: int = 227000001, t: float = 100.0
) -> Observation:
    sentence = encode_sentences(
        PositionReport(
            mmsi=mmsi, lat=48.0 + 0.01 * i, lon=-5.0, sog_knots=9.0,
            cog_deg=45.0,
        )
    )[0]
    return Observation(
        t_received=t + 2.5,
        sentence=sentence,
        source="STA-TEST",
        mmsi=mmsi,
        t_transmitted=t,
    )


class TestTagBlocks:
    def test_round_trip(self):
        obs = make_observation()
        fields, sentence = parse_tagged_line(format_tagged_sentence(obs))
        assert sentence == obs.sentence
        assert float(fields["c"]) == pytest.approx(obs.t_received)
        assert float(fields["x"]) == pytest.approx(obs.t_transmitted)
        assert fields["s"] == "STA-TEST"

    def test_untagged_line_passes_through(self):
        fields, sentence = parse_tagged_line("!AIVDM,1,1,,A,x,0*00\n")
        assert fields == {}
        assert sentence.startswith("!AIVDM")

    def test_bad_checksum_flagged_but_sentence_kept(self):
        obs = make_observation()
        line = format_tagged_sentence(obs)
        block_end = line.find("\\", 1)
        corrupted = "\\" + line[1:block_end - 2] + "00" + line[block_end:]
        fields, sentence = parse_tagged_line(corrupted)
        assert fields == {"_bad_tag": "checksum"}
        assert sentence == obs.sentence

    def test_milliseconds_epoch_normalised(self):
        from repro.sources.nmea import _tag_times

        received, transmitted = _tag_times({"c": "1496127430000"})
        assert received == pytest.approx(1496127430.0)
        assert transmitted is None


class TestIterableSource:
    def test_counts_and_protocol(self):
        observations = [make_observation(i, t=100.0 + i) for i in range(5)]
        source = IterableSource(observations)
        assert isinstance(source, Source)
        assert list(source) == observations
        assert source.stats().n_observations == 5

    def test_close_stops_iteration(self):
        source = IterableSource(
            make_observation(i, t=100.0 + i) for i in range(100)
        )
        out = []
        for obs in source:
            out.append(obs)
            if len(out) == 3:
                source.close()
        assert len(out) == 3


class TestNmeaFileSource:
    def test_tagged_round_trip_preserves_times(self, tmp_path):
        observations = [make_observation(i, t=100.0 + 7 * i) for i in range(20)]
        path = tmp_path / "feed.nmea"
        assert write_nmea_file(observations, str(path)) == 20
        got = list(NmeaFileSource(str(path)))
        assert len(got) == 20
        for a, b in zip(got, observations):
            assert a.sentence == b.sentence
            assert a.t_received == pytest.approx(b.t_received, abs=1e-3)
            assert a.t_transmitted == pytest.approx(b.t_transmitted, abs=1e-3)
            assert a.source == b.source
            assert a.mmsi == b.mmsi

    def test_bare_sentences_get_synthetic_timeline(self, tmp_path):
        observations = [make_observation(i) for i in range(4)]
        path = tmp_path / "bare.nmea"
        write_nmea_file(observations, str(path), tagged=False)
        got = list(
            NmeaFileSource(str(path), start_t=50.0, synthetic_interval_s=2.0)
        )
        assert [o.t_received for o in got] == [50.0, 52.0, 54.0, 56.0]
        assert all(o.t_transmitted == o.t_received for o in got)

    def test_garbage_lines_counted_not_fatal(self, tmp_path):
        path = tmp_path / "dirty.nmea"
        path.write_text(
            format_tagged_sentence(make_observation())
            + "\ngarbage line\n\n"
            + make_observation(1).sentence + "\n"
        )
        source = NmeaFileSource(str(path))
        assert len(list(source)) == 2
        stats = source.stats()
        # Parse rejects are not backpressure drops.
        assert stats.n_rejected == 1
        assert stats.n_dropped == 0
        assert stats.errors.get("not_a_sentence") == 1

    def test_tail_mode_follows_appends(self, tmp_path):
        path = tmp_path / "tail.nmea"
        first = [make_observation(i, t=100.0 + i) for i in range(3)]
        later = [make_observation(i, t=200.0 + i) for i in range(3, 6)]
        write_nmea_file(first, str(path))
        source = NmeaFileSource(
            str(path), tail=True, poll_interval_s=0.01, idle_timeout_s=5.0
        )

        def append_then_close():
            time.sleep(0.05)
            with open(path, "a") as fh:
                write_nmea_file(later, fh)
            time.sleep(0.05)
            source.close()

        writer = threading.Thread(target=append_then_close)
        writer.start()
        got = list(source)
        writer.join()
        assert [o.t_transmitted for o in got] == [
            o.t_transmitted for o in first + later
        ]

    def test_tail_idle_timeout_ends_iteration(self, tmp_path):
        path = tmp_path / "idle.nmea"
        write_nmea_file([make_observation()], str(path))
        source = NmeaFileSource(
            str(path), tail=True, poll_interval_s=0.01, idle_timeout_s=0.05
        )
        assert len(list(source)) == 1  # returns rather than hanging


def serve_lines(lines, close_after=None, accept_n=1):
    """One-shot loopback NMEA server; returns (port, thread)."""
    server = socket.socket()
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind(("127.0.0.1", 0))
    server.listen(accept_n)
    port = server.getsockname()[1]

    def run():
        for __ in range(accept_n):
            conn, __addr = server.accept()
            payload = lines if close_after is None else lines[:close_after]
            conn.sendall(("\n".join(payload) + "\n").encode())
            conn.close()
        server.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return port, thread


class TestNmeaTcpSource:
    def test_loopback_replay_preserves_feed(self):
        observations = [make_observation(i, t=100.0 + i) for i in range(30)]
        lines = [format_tagged_sentence(o) for o in observations]
        port, thread = serve_lines(lines)
        source = NmeaTcpSource("127.0.0.1", port, reconnect=False)
        got = list(source)
        thread.join(timeout=2.0)
        assert len(got) == 30
        for a, b in zip(got, observations):
            assert a.sentence == b.sentence
            assert a.t_received == pytest.approx(b.t_received, abs=1e-3)
            assert a.t_transmitted == pytest.approx(b.t_transmitted, abs=1e-3)
        stats = source.stats()
        assert stats.n_lines == 30
        assert stats.n_reconnects == 0
        assert stats.queue_depth == 0

    def test_bounded_queue_drops_oldest(self):
        observations = [make_observation(i, t=100.0 + i) for i in range(50)]
        lines = [format_tagged_sentence(o) for o in observations]
        port, thread = serve_lines(lines)
        source = NmeaTcpSource(
            "127.0.0.1", port, max_queue=10, reconnect=False
        )
        iterator = iter(source)
        # Let the reader outrun the (absent) consumer, then drain.
        deadline = time.time() + 5.0
        while source.stats().n_lines < 50 and time.time() < deadline:
            time.sleep(0.01)
        got = list(iterator)
        stats = source.stats()
        assert stats.n_dropped == 50 - len(got)
        assert stats.n_dropped > 0
        # n_observations promises "yielded downstream": overflow victims
        # are not counted.
        assert stats.n_observations == len(got)
        assert stats.errors.get("queue_overflow") == stats.n_dropped
        # Drop-oldest: the tail of the feed survives verbatim.
        assert [o.sentence for o in got] == [
            o.sentence for o in observations[-len(got):]
        ]
        assert stats.queue_high_water <= 10

    def test_reconnect_counted_and_feed_resumes(self):
        observations = [make_observation(i, t=100.0 + i) for i in range(6)]
        lines = [format_tagged_sentence(o) for o in observations]
        port, thread = serve_lines(lines, close_after=3, accept_n=2)
        source = NmeaTcpSource(
            "127.0.0.1", port,
            reconnect=True, max_retries=5, backoff_initial_s=0.01,
        )
        got = []
        for obs in source:
            got.append(obs)
            if len(got) == 6:  # first 3 + replayed 3 from second accept
                source.close()
        assert source.stats().n_reconnects >= 1

    def test_no_reconnect_is_single_shot_even_on_connect_failure(self):
        """reconnect=False against a dead endpoint ends the feed after
        one attempt instead of retrying forever."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        source = NmeaTcpSource(
            "127.0.0.1", port, reconnect=False, backoff_initial_s=0.01
        )
        assert list(source) == []
        assert source.stats().errors.get("connect_failed") == 1

    def test_connect_failure_exhausts_retries(self):
        # Nothing listens on this port: grab one and close it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        source = NmeaTcpSource(
            "127.0.0.1", port,
            reconnect=True, max_retries=2, backoff_initial_s=0.01,
        )
        assert list(source) == []
        assert source.stats().errors.get("connect_failed", 0) >= 1

    def test_accept_then_close_server_backs_off_and_terminates(self):
        """A server that accepts and immediately closes (quota kick) is
        treated like a failed connect: backoff applies and max_retries
        ends the feed instead of a tight reconnect busy-loop."""
        server = socket.socket()
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(8)
        port = server.getsockname()[1]

        def kick():
            try:
                while True:
                    conn, __ = server.accept()
                    conn.close()
            except OSError:
                pass  # server closed at test end

        threading.Thread(target=kick, daemon=True).start()
        source = NmeaTcpSource(
            "127.0.0.1", port,
            reconnect=True, max_retries=3, backoff_initial_s=0.01,
        )
        assert list(source) == []  # terminates rather than looping
        stats = source.stats()
        assert stats.errors.get("empty_connection", 0) >= 1
        assert stats.n_reconnects <= 4  # bounded by max_retries, not ∞
        server.close()

    def test_close_unblocks_consumer(self):
        server = socket.socket()
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]
        source = NmeaTcpSource("127.0.0.1", port, reconnect=False)
        closer = threading.Timer(0.1, source.close)
        closer.start()
        assert list(source) == []  # returns instead of blocking forever
        closer.join()
        server.close()

    def test_parse_rejects_kept_apart_from_overflow_drops(self):
        """A dirty feed must not read as queue pressure: garbage lines
        count in n_rejected, only overflow victims in n_dropped."""
        observations = [make_observation(i, t=100.0 + i) for i in range(40)]
        lines = []
        for obs in observations:
            lines.append(format_tagged_sentence(obs))
            lines.append("THIS IS NOT NMEA")  # interleaved garbage
        port, thread = serve_lines(lines)
        source = NmeaTcpSource(
            "127.0.0.1", port, max_queue=10, reconnect=False
        )
        iterator = iter(source)
        deadline = time.time() + 5.0
        while source.stats().n_lines < 80 and time.time() < deadline:
            time.sleep(0.01)
        got = list(iterator)
        stats = source.stats()
        assert stats.n_rejected == 40
        assert stats.errors.get("not_a_sentence") == 40
        # Overflow accounting is exact and untouched by the rejects.
        assert stats.n_dropped == 40 - len(got)
        assert stats.n_dropped > 0
        assert stats.errors.get("queue_overflow") == stats.n_dropped
        assert stats.n_observations == len(got)

    def test_reconnect_resumes_with_second_connection_content(self):
        """After a mid-feed remote close the source reconnects and the
        second connection's data flows through the same iterator."""
        observations = [make_observation(i, t=100.0 + i) for i in range(6)]
        lines = [format_tagged_sentence(o) for o in observations]
        port, thread = serve_lines(lines, close_after=3, accept_n=2)
        source = NmeaTcpSource(
            "127.0.0.1", port,
            reconnect=True, max_retries=5, backoff_initial_s=0.01,
        )
        got = []
        for obs in source:
            got.append(obs)
            if len(got) == 6:
                source.close()
        # close_after serves lines[:3] on *each* accept: the reconnect
        # replays the prefix, proving the second connection delivered.
        assert [o.sentence for o in got] == [
            o.sentence for o in (observations[:3] + observations[:3])
        ]
        assert source.stats().n_reconnects >= 1

    def test_retry_exhaustion_after_data_ends_feed(self):
        """max_retries bounds *consecutive* failures even after a
        healthy connection delivered data (server gone for good)."""
        observations = [make_observation(i, t=100.0 + i) for i in range(3)]
        lines = [format_tagged_sentence(o) for o in observations]
        port, thread = serve_lines(lines, accept_n=1)  # serves once, closes
        source = NmeaTcpSource(
            "127.0.0.1", port,
            reconnect=True, max_retries=2, backoff_initial_s=0.01,
        )
        got = list(source)  # must terminate by exhausting retries
        assert len(got) == 3
        stats = source.stats()
        assert stats.errors.get("connect_failed", 0) >= 1
        thread.join(timeout=2.0)


class TestMergedSource:
    def make_feeds(self, n: int = 30, n_feeds: int = 3):
        """Interleaved sub-feeds, each internally reception-ordered."""
        observations = [
            make_observation(i, mmsi=227000001 + i % 4, t=100.0 + 3.0 * i)
            for i in range(n)
        ]
        feeds = [observations[i::n_feeds] for i in range(n_feeds)]
        return observations, feeds

    def test_merges_iterables_in_reception_order(self):
        observations, feeds = self.make_feeds()
        merged = MergedSource(*feeds)
        got = list(merged)
        assert [o.t_received for o in got] == [
            o.t_received for o in observations
        ]
        assert merged.stats().n_observations == len(observations)

    def test_provenance_preserved_per_feed(self):
        observations, feeds = self.make_feeds(n=12)
        tagged = [
            [
                Observation(
                    t_received=o.t_received, sentence=o.sentence,
                    source=f"FEED-{i}", mmsi=o.mmsi,
                    t_transmitted=o.t_transmitted,
                )
                for o in feed
            ]
            for i, feed in enumerate(feeds)
        ]
        got = list(MergedSource(*tagged))
        by_source = {o.source for o in got}
        assert by_source == {"FEED-0", "FEED-1", "FEED-2"}
        # Every observation kept the source its feed assigned.
        for obs in got:
            feed_index = int(obs.source[-1])
            assert obs.sentence in {o.sentence for o in tagged[feed_index]}

    def test_merges_file_and_tcp_transports(self, tmp_path):
        observations, feeds = self.make_feeds(n=24, n_feeds=3)
        path = tmp_path / "feed0.nmea"
        write_nmea_file(feeds[0], str(path))
        port, thread = serve_lines(
            [format_tagged_sentence(o) for o in feeds[1]]
        )
        merged = MergedSource(
            NmeaFileSource(str(path)),
            NmeaTcpSource("127.0.0.1", port, reconnect=False),
            IterableSource(feeds[2]),
        )
        got = list(merged)
        thread.join(timeout=2.0)
        assert [o.t_received for o in got] == [
            o.t_received for o in observations
        ]

    def test_holdback_bounds_disorder_from_lagging_feed(self):
        """A slow feed may lag without stalling the merge: emitted
        disorder stays within holdback_s of reception time."""
        fast = [make_observation(i, t=100.0 + i) for i in range(200)]

        def slow():
            for i in range(0, 200, 50):
                time.sleep(0.05)
                yield make_observation(i, t=100.5 + i)

        merged = MergedSource(fast, slow(), holdback_s=25.0)
        got = list(merged)
        assert len(got) == 204
        max_disorder = 0.0
        frontier = float("-inf")
        for obs in got:
            frontier = max(frontier, obs.t_received)
            max_disorder = max(max_disorder, frontier - obs.t_received)
        assert max_disorder <= 25.0

    def test_silent_feed_holds_merge_until_closed(self):
        """A feed that never produces holds the stream back (bounded
        disorder by design); closing it releases the backlog."""
        silent = NmeaFileSource("/dev/null", tail=True, poll_interval_s=0.01)
        fast = [make_observation(i, t=100.0 + i) for i in range(10)]
        merged = MergedSource(IterableSource(fast), silent, holdback_s=5.0)
        got = []
        iterator = iter(merged)
        threading.Timer(0.3, silent.close).start()
        for obs in iterator:
            got.append(obs)
        # Nothing could be released before the close (frontier -inf),
        # and everything staged drains afterwards, still in order.
        assert [o.t_received for o in got] == [o.t_received for o in fast]

    def test_aggregated_stats_roll_up_children(self, tmp_path):
        path = tmp_path / "dirty.nmea"
        path.write_text(
            format_tagged_sentence(make_observation(0, t=100.0))
            + "\ngarbage\n"
            + format_tagged_sentence(make_observation(1, t=101.0))
            + "\n"
        )
        feed = [make_observation(2, t=102.0)]
        merged = MergedSource(NmeaFileSource(str(path)), IterableSource(feed))
        got = list(merged)
        assert len(got) == 3
        stats = merged.stats()
        assert stats.n_lines == 4  # 3 file lines + 1 iterable item
        assert stats.n_observations == 3
        assert stats.n_rejected == 1
        assert stats.errors.get("not_a_sentence") == 1
        assert stats.n_dropped == 0
        per_feed = merged.stats_by_source()
        assert len(per_feed) == 2
        assert per_feed[0].n_rejected == 1

    def test_queue_depths_expose_per_feed_entries(self):
        observations, feeds = self.make_feeds(n=9)
        merged = MergedSource(*feeds)
        depths = merged.queue_depths()
        assert set(depths) == {
            "source",
            "source:iterable[0]", "source:iterable[1]", "source:iterable[2]",
        }
        list(merged)  # drain
        assert merged.queue_depths()["source"] == 0

    def test_overflow_drops_oldest_staged(self):
        """One feed far ahead of a holdback-blocked merge loses its
        oldest staged entries once the shared buffer fills."""
        ahead = [make_observation(i, t=100.0 + i) for i in range(50)]
        gate = threading.Event()

        def gated():
            gate.wait(timeout=5.0)
            yield make_observation(0, t=99.0)

        merged = MergedSource(
            IterableSource(ahead), gated(), holdback_s=0.0, max_buffer=10
        )
        iterator = iter(merged)
        deadline = time.time() + 5.0
        while merged.stats().n_dropped < 40 and time.time() < deadline:
            time.sleep(0.01)
        assert merged.stats().n_dropped == 40
        gate.set()
        got = list(iterator)
        stats = merged.stats()
        # The late gated observation is the oldest staged on arrival, so
        # drop-oldest discards it too: 40 ahead-feed victims plus one.
        assert stats.n_dropped == 41
        assert stats.errors.get("merge_overflow") == 41
        # The staging peak is recorded as it happens, not at stats time
        # (the heap momentarily holds max_buffer + 1 before the drop).
        assert stats.queue_high_water >= 10
        # Drop-oldest: the tail of the ahead feed survives verbatim.
        assert [o.t_received for o in got] == [
            o.t_received for o in ahead[-10:]
        ]

    def test_close_ends_iteration(self):
        def endless():
            i = 0
            while True:
                yield make_observation(i, t=100.0 + i)
                i += 1

        merged = MergedSource(endless(), holdback_s=0.0)
        got = []
        for obs in merged:
            got.append(obs)
            if len(got) == 5:
                merged.close()
        assert len(got) >= 5

    def test_rejects_empty_and_bad_arguments(self):
        with pytest.raises(ValueError):
            MergedSource()
        with pytest.raises(ValueError):
            MergedSource([], holdback_s=-1.0)
        with pytest.raises(ValueError):
            MergedSource([], max_buffer=0)

    def test_child_feed_dying_is_surfaced_not_silent(self):
        """A child raising mid-iteration must not masquerade as clean
        EOF: the merge survives on the other feeds and the death is
        visible in the aggregated error counters."""
        healthy = [make_observation(i, t=100.0 + i) for i in range(6)]

        def dying():
            yield make_observation(0, t=100.5)
            raise OSError("transport fell over")

        merged = MergedSource(IterableSource(healthy), dying(),
                              holdback_s=0.0)
        got = list(merged)
        assert len(got) == 7  # everything staged before the death
        errors = merged.stats().errors
        assert any(k.startswith("feed_died:") for k in errors), errors


class TestAdaptiveHoldback:
    """holdback_s="auto": per-feed holdback tracks observed skew."""

    def test_auto_merge_is_complete_and_ordered_for_synced_feeds(self):
        """Feeds with no skew still merge losslessly under auto mode —
        and, since their EWMA stays near zero, near-strictly."""
        observations = [
            make_observation(i, t=100.0 + i) for i in range(30)
        ]
        feeds = [observations[i::3] for i in range(3)]
        merged = MergedSource(*feeds, holdback_s="auto")
        got = list(merged)
        assert sorted(o.t_received for o in got) == [
            o.t_received for o in observations
        ]
        assert merged.stats().n_observations == 30

    def test_effective_holdback_stays_within_floor_and_cap(self):
        fast = [make_observation(i, t=100.0 + i) for i in range(100)]

        def slow():
            for i in range(0, 100, 25):
                time.sleep(0.02)
                yield make_observation(i, t=100.5 + i)

        merged = MergedSource(
            fast, slow(), holdback_s="auto",
            holdback_cap_s=60.0, holdback_floor_s=2.0,
        )
        list(merged)
        for feed in merged.liveness():
            assert 2.0 <= feed.holdback_s <= 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MergedSource([], holdback_s="bogus")
        with pytest.raises(ValueError):
            MergedSource([], holdback_s="auto", skew_ewma_alpha=0.0)
        # Floor above cap clamps rather than inverting the bounds.
        merged = MergedSource(
            [], holdback_s="auto", holdback_cap_s=10.0, holdback_floor_s=50.0
        )
        assert merged.holdback_floor_s == 10.0

    def test_explicit_float_stays_static(self):
        merged = MergedSource([], [], holdback_s=42.0)
        assert merged.holdback_s == 42.0
        for feed in merged.liveness():
            assert feed.holdback_s == 42.0


class TestFeedLiveness:
    def test_liveness_reports_health_per_feed(self):
        observations = [make_observation(i, t=100.0 + i) for i in range(8)]
        feeds = [observations[0::2], observations[1::2]]
        merged = MergedSource(*feeds)
        before = merged.liveness()
        assert len(before) == 2
        assert all(f.alive and not f.finished for f in before)
        assert all(f.last_record_age_s is None for f in before)
        list(merged)
        after = merged.liveness()
        assert all(f.finished and not f.alive for f in after)
        assert all(f.error is None for f in after)
        assert all(f.last_record_age_s is not None for f in after)
        assert {f.name for f in after} == {"iterable[0]", "iterable[1]"}

    def test_liveness_tracks_frontier_lag(self):
        ahead = [make_observation(i, t=100.0 + i) for i in range(5)]
        behind = [make_observation(i, t=50.0 + i) for i in range(5)]
        merged = MergedSource(ahead, behind, holdback_s=500.0)
        list(merged)
        lag = {f.name: f.last_record_age_s for f in merged.liveness()}
        assert lag["iterable[0]"] == 0.0       # the lead feed
        assert lag["iterable[1]"] == 50.0      # trails by 50 s

    def test_dead_feed_is_flagged_with_its_error(self):
        healthy = [make_observation(i, t=100.0 + i) for i in range(4)]

        def dying():
            yield make_observation(0, t=100.5)
            raise OSError("transport fell over")

        merged = MergedSource(IterableSource(healthy), dying(),
                              holdback_s=0.0)
        list(merged)
        by_name = {f.name: f for f in merged.liveness()}
        dead = by_name["iterable[1]"]
        assert not dead.alive and dead.finished
        assert isinstance(dead.error, OSError)
        assert by_name["iterable"].error is None
