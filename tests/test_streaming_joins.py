"""Tests for interval joins and stream-static enrichment."""

import pytest

from repro.streaming import Record, Stream, enrich, interval_join


def keyed(times, key="k", tag=""):
    return Stream(Record(float(t), key, f"{tag}{t}") for t in times)


class TestIntervalJoin:
    def test_pairs_within_band(self):
        out = interval_join(
            keyed([0, 10, 20], tag="L"),
            keyed([1, 11, 25], tag="R"),
            max_dt_s=2.0,
            join_fn=lambda a, b: (a.value, b.value),
        ).collect()
        assert [(r.value) for r in out] == [("L0", "R1"), ("L10", "R11")]

    def test_key_matching(self):
        left = Stream([Record(0.0, "a", "La"), Record(0.0, "b", "Lb")])
        right = Stream([Record(1.0, "a", "Ra")])
        out = interval_join(
            left, right, 5.0, lambda a, b: (a.value, b.value)
        ).collect()
        assert [r.value for r in out] == [("La", "Ra")]

    def test_cross_keys_when_disabled(self):
        left = Stream([Record(0.0, "a", "La")])
        right = Stream([Record(1.0, "b", "Rb")])
        out = interval_join(
            left, right, 5.0, lambda a, b: (a.value, b.value),
            match_keys=False,
        ).collect()
        assert len(out) == 1

    def test_output_timestamp_is_later(self):
        out = interval_join(
            keyed([0]), keyed([3]), 5.0, lambda a, b: None
        ).collect()
        assert out[0].t == 3.0

    def test_no_matches(self):
        out = interval_join(
            keyed([0]), keyed([100]), 5.0, lambda a, b: None
        ).collect()
        assert out == []

    def test_multiple_matches_per_record(self):
        out = interval_join(
            keyed([10]), keyed([8, 9, 11, 12]), 2.0, lambda a, b: b.value
        ).collect()
        assert len(out) == 4

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            interval_join(keyed([0]), keyed([1]), -1.0, lambda a, b: None)


class TestEnrich:
    def test_context_combined(self):
        stream = keyed([0, 1], tag="v")
        out = enrich(
            stream,
            lookup=lambda r: {"zone": "A"},
            combine=lambda value, ctx: (value, ctx["zone"]),
        ).collect()
        assert [r.value for r in out] == [("v0", "A"), ("v1", "A")]

    def test_missing_context_passthrough(self):
        stream = keyed([0, 1], tag="v")
        out = enrich(stream, lookup=lambda r: None).collect()
        assert [r.value for r in out] == ["v0", "v1"]

    def test_lookup_sees_time_and_key(self):
        seen = []
        stream = keyed([5], key="vessel9")
        enrich(stream, lookup=lambda r: seen.append((r.t, r.key))).drain()
        assert seen == [(5.0, "vessel9")]

    def test_weather_enrichment_integration(self):
        """Enriching a position stream with the gridded weather provider."""
        from repro.simulation.weather import WeatherProvider

        provider = WeatherProvider(seed=3)
        stream = Stream(
            Record(float(t), "v", (48.0 + t * 0.01, -5.0)) for t in range(10)
        )
        out = enrich(
            stream,
            lookup=lambda r: provider.sample_gridded(
                r.value[0], r.value[1], r.t
            ),
            combine=lambda value, wx: {"pos": value, "wind": wx.wind_speed_mps},
        ).collect()
        assert all("wind" in r.value for r in out)
