"""Tests for interval joins, spatial joins and stream-static enrichment."""

import pytest

from repro.streaming import Record, Stream, enrich, interval_join, spatial_join


def keyed(times, key="k", tag=""):
    return Stream(Record(float(t), key, f"{tag}{t}") for t in times)


class TestIntervalJoin:
    def test_pairs_within_band(self):
        out = interval_join(
            keyed([0, 10, 20], tag="L"),
            keyed([1, 11, 25], tag="R"),
            max_dt_s=2.0,
            join_fn=lambda a, b: (a.value, b.value),
        ).collect()
        assert [(r.value) for r in out] == [("L0", "R1"), ("L10", "R11")]

    def test_key_matching(self):
        left = Stream([Record(0.0, "a", "La"), Record(0.0, "b", "Lb")])
        right = Stream([Record(1.0, "a", "Ra")])
        out = interval_join(
            left, right, 5.0, lambda a, b: (a.value, b.value)
        ).collect()
        assert [r.value for r in out] == [("La", "Ra")]

    def test_cross_keys_when_disabled(self):
        left = Stream([Record(0.0, "a", "La")])
        right = Stream([Record(1.0, "b", "Rb")])
        out = interval_join(
            left, right, 5.0, lambda a, b: (a.value, b.value),
            match_keys=False,
        ).collect()
        assert len(out) == 1

    def test_output_timestamp_is_later(self):
        out = interval_join(
            keyed([0]), keyed([3]), 5.0, lambda a, b: None
        ).collect()
        assert out[0].t == 3.0

    def test_no_matches(self):
        out = interval_join(
            keyed([0]), keyed([100]), 5.0, lambda a, b: None
        ).collect()
        assert out == []

    def test_multiple_matches_per_record(self):
        out = interval_join(
            keyed([10]), keyed([8, 9, 11, 12]), 2.0, lambda a, b: b.value
        ).collect()
        assert len(out) == 4

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            interval_join(keyed([0]), keyed([1]), -1.0, lambda a, b: None)


def positioned(entries, key="k"):
    """Build a stream of records whose values are (lat, lon) tuples."""
    return Stream(Record(float(t), key, (lat, lon)) for t, lat, lon in entries)


def _pos(record):
    return record.value


class TestSpatialJoin:
    def test_near_pairs_joined(self):
        out = spatial_join(
            positioned([(0, 48.0, -5.0), (10, 20.0, 30.0)], key="L"),
            positioned([(1, 48.001, -5.0), (11, 48.0, -5.0)], key="R"),
            max_dt_s=5.0,
            max_distance_m=500.0,
            position=_pos,
            join_fn=lambda a, b: (a.t, b.t),
        ).collect()
        # Only the t=0/t=1 pair is close in both time and space.
        assert [r.value for r in out] == [(0.0, 1.0)]

    def test_far_pairs_screened_out(self):
        out = spatial_join(
            positioned([(0, 48.0, -5.0)]),
            positioned([(1, 49.0, -5.0)]),  # ~111 km away
            max_dt_s=5.0,
            max_distance_m=1000.0,
            position=_pos,
            join_fn=lambda a, b: None,
        ).collect()
        assert out == []

    def test_time_band_still_applies(self):
        out = spatial_join(
            positioned([(0, 48.0, -5.0)]),
            positioned([(100, 48.0, -5.0)]),
            max_dt_s=5.0,
            max_distance_m=1000.0,
            position=_pos,
            join_fn=lambda a, b: None,
        ).collect()
        assert out == []

    def test_antimeridian_pair_joined(self):
        out = spatial_join(
            positioned([(0, 0.0, 179.999)], key="L"),
            positioned([(1, 0.0, -179.999)], key="R"),
            max_dt_s=5.0,
            max_distance_m=500.0,
            position=_pos,
            join_fn=lambda a, b: (a.key, b.key),
        ).collect()
        assert [r.value for r in out] == [("L", "R")]
        assert out[0].key == "L"  # output keyed by the left record

    def test_output_timestamp_is_later(self):
        out = spatial_join(
            positioned([(0, 48.0, -5.0)]),
            positioned([(3, 48.0, -5.0)]),
            5.0, 100.0, _pos, lambda a, b: None,
        ).collect()
        assert out[0].t == 3.0

    def test_matches_interval_join_when_all_near(self):
        """With everything co-located, spatial_join degrades to the pure
        interval join (cross-key)."""
        left = [(0, 48.0, -5.0), (10, 48.0, -5.0), (20, 48.0, -5.0)]
        right = [(1, 48.0, -5.0), (11, 48.0, -5.0), (25, 48.0, -5.0)]
        spatial = spatial_join(
            positioned(left), positioned(right),
            2.0, 1000.0, _pos, lambda a, b: (a.t, b.t),
        ).collect()
        interval = interval_join(
            positioned(left), positioned(right),
            2.0, lambda a, b: (a.t, b.t), match_keys=False,
        ).collect()
        assert [r.value for r in spatial] == [r.value for r in interval]

    def test_buffers_pruned(self):
        """Old records leave the spatial buffer with the time band."""
        n = 50
        left = [(t, 48.0, -5.0) for t in range(n)]
        right = [(t + 0.5, 48.0, -5.0) for t in range(n)]
        out = spatial_join(
            positioned(left), positioned(right),
            1.0, 1000.0, _pos, lambda a, b: (a.t, b.t),
        ).collect()
        # Each left t matches right t-0.5 and t+0.5 (except the first).
        assert len(out) == 2 * n - 1

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            spatial_join(
                positioned([]), positioned([]), -1.0, 10.0, _pos,
                lambda a, b: None,
            )
        with pytest.raises(ValueError):
            spatial_join(
                positioned([]), positioned([]), 1.0, -10.0, _pos,
                lambda a, b: None,
            )


class TestEnrich:
    def test_context_combined(self):
        stream = keyed([0, 1], tag="v")
        out = enrich(
            stream,
            lookup=lambda r: {"zone": "A"},
            combine=lambda value, ctx: (value, ctx["zone"]),
        ).collect()
        assert [r.value for r in out] == [("v0", "A"), ("v1", "A")]

    def test_missing_context_passthrough(self):
        stream = keyed([0, 1], tag="v")
        out = enrich(stream, lookup=lambda r: None).collect()
        assert [r.value for r in out] == ["v0", "v1"]

    def test_lookup_sees_time_and_key(self):
        seen = []
        stream = keyed([5], key="vessel9")
        enrich(stream, lookup=lambda r: seen.append((r.t, r.key))).drain()
        assert seen == [(5.0, "vessel9")]

    def test_weather_enrichment_integration(self):
        """Enriching a position stream with the gridded weather provider."""
        from repro.simulation.weather import WeatherProvider

        provider = WeatherProvider(seed=3)
        stream = Stream(
            Record(float(t), "v", (48.0 + t * 0.01, -5.0)) for t in range(10)
        )
        out = enrich(
            stream,
            lookup=lambda r: provider.sample_gridded(
                r.value[0], r.value[1], r.t
            ),
            combine=lambda value, wx: {"pos": value, "wind": wx.wind_speed_mps},
        ).collect()
        assert all("wind" in r.value for r in out)
