"""Batch-vs-scalar parity for the vectorised AIS decoder.

The contract under test (see :mod:`repro.ais.batch`): whatever mix of
clean, corrupt, truncated or exotic payloads a micro-batch carries, the
vectorised decoder must produce the *same* ``(t, message)`` sequence and
the *same* stats counter — key for key, count for count — as the scalar
loop, because every row it cannot prove clean is routed through the
scalar ``finish_payload`` unchanged.
"""

import math
import struct
from collections import Counter
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.ais import (
    AisDecoder,
    ClassBPositionReport,
    NavigationStatus,
    PositionReport,
    StaticDataReport,
    StaticVoyageData,
    encode_sentences,
)
from repro.ais import batch
from repro.ais.batch import FixBatch, decode_staged
from repro.ais.sixbit import SIXBIT_ALPHABET
from repro.core.config import ConfigError, PipelineConfig
from repro.trajectory.points import TrackPoint

numpy_missing = not batch.available()

mmsi_strategy = st.integers(min_value=200_000_000, max_value=775_999_999)
lat_strategy = st.floats(min_value=-89.99, max_value=89.99)
lon_strategy = st.floats(min_value=-179.99, max_value=179.99)
sixbit_text = st.text(
    alphabet=sorted(set(SIXBIT_ALPHABET) - {"@"}), min_size=0, max_size=24
).map(lambda s: s.strip())


@st.composite
def position_report(draw):
    return PositionReport(
        mmsi=draw(mmsi_strategy),
        lat=draw(lat_strategy),
        lon=draw(lon_strategy),
        sog_knots=draw(st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=102.0)
        )),
        cog_deg=draw(st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=359.9)
        )),
        heading_deg=draw(st.one_of(
            st.none(),
            st.integers(min_value=0, max_value=359).map(float),
        )),
        nav_status=draw(st.sampled_from(list(NavigationStatus))),
        rot_deg_per_min=draw(st.one_of(
            st.none(), st.floats(min_value=-120.0, max_value=120.0)
        )),
        timestamp_s=draw(st.one_of(
            st.none(), st.integers(min_value=0, max_value=59)
        )),
        position_accuracy=draw(st.booleans()),
        raim=draw(st.booleans()),
        msg_type=draw(st.sampled_from([1, 2, 3])),
    )


@st.composite
def class_b_report(draw):
    return ClassBPositionReport(
        mmsi=draw(mmsi_strategy),
        lat=draw(lat_strategy),
        lon=draw(lon_strategy),
        sog_knots=draw(st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=102.0)
        )),
        cog_deg=draw(st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=359.9)
        )),
        heading_deg=draw(st.one_of(
            st.none(),
            st.integers(min_value=0, max_value=359).map(float),
        )),
        timestamp_s=draw(st.one_of(
            st.none(), st.integers(min_value=0, max_value=59)
        )),
    )


@st.composite
def static_voyage(draw):
    # Type 5 payloads always fragment (71 chars > MAX_PAYLOAD_CHARS), so
    # every one exercises multipart reassembly ahead of the batch path.
    return StaticVoyageData(
        mmsi=draw(mmsi_strategy),
        imo=draw(st.integers(min_value=0, max_value=2**30 - 1)),
        callsign=draw(st.text(
            alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", max_size=7
        )),
        shipname=draw(sixbit_text),
        ship_type_code=draw(st.integers(min_value=0, max_value=255)),
        draught_m=draw(st.floats(min_value=0.0, max_value=25.5)),
        destination=draw(sixbit_text),
    )


@st.composite
def static_data(draw):
    if draw(st.booleans()):
        return StaticDataReport(
            mmsi=draw(mmsi_strategy), part=0, shipname=draw(sixbit_text)
        )
    return StaticDataReport(
        mmsi=draw(mmsi_strategy),
        part=1,
        ship_type_code=draw(st.integers(min_value=0, max_value=255)),
        vendor_id=draw(st.text(
            alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", max_size=7
        )),
        callsign=draw(st.text(
            alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", max_size=7
        )),
        to_bow_m=draw(st.integers(min_value=0, max_value=511)),
        to_stern_m=draw(st.integers(min_value=0, max_value=511)),
    )


any_message = st.one_of(
    position_report(), class_b_report(), static_voyage(), static_data()
)


@contextmanager
def min_batch(n):
    """Temporarily lower the vector-path threshold so hypothesis-sized
    batches exercise it (monkeypatch resets per test, not per example)."""
    old = batch.MIN_BATCH
    batch.MIN_BATCH = n
    try:
        yield
    finally:
        batch.MIN_BATCH = old


def stage_fleet(messages):
    """Encode messages and run them through real sentence assembly,
    producing the ``(t, payload, fill, received_at)`` rows DecodeStage
    hands to :func:`decode_staged`."""
    decoder = AisDecoder()
    staged = []
    for k, msg in enumerate(messages):
        t = 1000.0 + 10.0 * k
        for sentence in encode_sentences(msg, sequence_id=k):
            ready = decoder.assemble(sentence)
            if ready is not None:
                staged.append((t, ready[0], ready[1], t + 0.5))
    return staged


def assert_parity(staged):
    """Batch output == scalar output, messages field-for-field and stats
    counter key-for-key."""
    batch_stats: Counter = Counter()
    scalar_stats: Counter = Counter()
    got = decode_staged(staged, batch_stats)
    want = decode_staged(staged, scalar_stats, force_scalar=True)
    assert batch_stats == scalar_stats
    assert len(got) == len(want)
    for (t_got, msg_got), (t_want, msg_want) in zip(got, want):
        assert t_got == t_want
        assert type(msg_got) is type(msg_want)
        assert msg_got == msg_want
        # Dataclass equality admits 0.0 == -0.0; the products must be
        # *bit*-identical, so compare the float planes at the byte level.
        for name in ("lat", "lon", "sog_knots", "cog_deg"):
            a = getattr(msg_got, name, None)
            b = getattr(msg_want, name, None)
            if isinstance(a, float) or isinstance(b, float):
                assert struct.pack("<d", a) == struct.pack("<d", b)
    return got


@pytest.mark.skipif(numpy_missing, reason="vector path needs numpy")
class TestBatchScalarParity:
    @given(st.lists(any_message, min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_random_fleets(self, messages):
        # Force the vector path even for tiny hypothesis batches.
        with min_batch(1):
            staged = stage_fleet(messages)
            got = assert_parity(staged)
        assert len(got) == len(messages)

    @given(st.lists(static_voyage(), min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_multipart_type5(self, messages):
        with min_batch(1):
            staged = stage_fleet(messages)
            # Each type 5 spans two fragments; assembly must yield one
            # staged payload per message with non-zero fill bits.
            assert len(staged) == len(messages)
            assert all(fill > 0 for _, __, fill, ___ in staged)
            got = assert_parity(staged)
        for (_, decoded), original in zip(got, messages):
            assert decoded.shipname == original.shipname[:20].rstrip()
            assert decoded.destination == original.destination[:20].rstrip()
            assert math.isclose(
                decoded.draught_m, original.draught_m, abs_tol=0.051
            )

    def test_small_batches_take_the_scalar_loop(self):
        staged = stage_fleet(
            [PositionReport(mmsi=211000001, lat=10.0, lon=20.0)]
        )
        assert len(staged) < batch.MIN_BATCH
        assert_parity(staged)


def _valid_staged(n=30):
    return stage_fleet([
        PositionReport(
            mmsi=200_000_000 + k, lat=-60.0 + 4.0 * k, lon=12.5 * k - 170.0,
            sog_knots=float(k % 40), cog_deg=9.0 * k,
            msg_type=1 + k % 3,
        )
        for k in range(n)
    ])


def corruptions(staged):
    """Every way a staged row can fail decode, applied to real payloads.

    Each yielded row is rejected by the scalar decoder; the batch path
    must reject all of them too, for the same reasons.
    """
    t, payload, fill, received = staged[0]
    yield (t, "", 0, received)                      # empty payload
    yield (t, payload, 6, received)                 # fill out of range
    yield (t, payload, -1, received)                # negative fill
    yield (t, payload[:4], 0, received)             # below common header
    yield (t, payload[:20], 0, received)            # type 1 truncated
    yield (t, payload[:1] + "[" + payload[2:], 0, received)   # bad armour
    yield (t, payload[:1] + "ÿ" + payload[2:], 0, received)
    yield (t, payload[:1] + "☃" + payload[2:], 0, received)  # > latin-1
    yield (t, "6" + payload[1:], 0, received)       # unsupported type 6


class TestCorruptAndTruncatedParity:
    """Batch must reject exactly what scalar rejects — same dropped rows,
    same ``decode_error:*`` counter keys, same survivors."""

    @pytest.mark.skipif(numpy_missing, reason="vector path needs numpy")
    def test_interleaved_corruption(self, monkeypatch):
        monkeypatch.setattr(batch, "MIN_BATCH", 1)
        staged = _valid_staged()
        mixed = []
        bad = list(corruptions(staged))
        for k, row in enumerate(staged):
            mixed.append(row)
            if k < len(bad):
                mixed.append(bad[k])
        got = assert_parity(mixed)
        # The corrupt rows must actually have been dropped (none decode).
        assert len(got) == len(staged)

    @pytest.mark.skipif(numpy_missing, reason="vector path needs numpy")
    def test_error_counters_match_scalar_keys(self, monkeypatch):
        monkeypatch.setattr(batch, "MIN_BATCH", 1)
        valid = _valid_staged(6)
        bad = list(corruptions(valid))
        stats: Counter = Counter()
        decode_staged(valid + bad, stats)
        assert stats["decoded"] == len(valid)
        assert stats["decode_error"] == len(bad)
        # Reasons survive verbatim from the scalar decoder.
        reasons = {
            key for key in stats if key.startswith("decode_error:")
        }
        assert any("too short" in key for key in reasons)
        assert any("truncated" in key for key in reasons)
        assert any("unsupported" in key for key in reasons)
        assert any("invalid" in key for key in reasons)

    @pytest.mark.skipif(numpy_missing, reason="vector path needs numpy")
    @given(
        data=st.data(),
        n_corrupt=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_byte_corruption(self, data, n_corrupt):
        """Arbitrary single-character stomps anywhere in the payload."""
        staged = _valid_staged(12)
        for _ in range(n_corrupt):
            row = data.draw(st.integers(0, len(staged) - 1))
            t, payload, fill, received = staged[row]
            pos = data.draw(st.integers(0, len(payload) - 1))
            char = data.draw(st.characters(min_codepoint=1,
                                           max_codepoint=0x2FF))
            staged[row] = (
                t, payload[:pos] + char + payload[pos + 1:], fill, received
            )
        with min_batch(1):
            assert_parity(staged)


class TestScalarFallback:
    def test_force_scalar_flag(self):
        staged = _valid_staged()
        stats: Counter = Counter()
        decoded = decode_staged(staged, stats, force_scalar=True)
        assert len(decoded) == len(staged)
        assert stats["decoded"] == len(staged)

    def test_numpy_less_module_degrades_to_scalar(self, monkeypatch):
        monkeypatch.setattr(batch, "np", None)
        staged = _valid_staged()
        stats: Counter = Counter()
        decoded = decode_staged(staged, stats)
        assert len(decoded) == len(staged)
        assert stats["decoded"] == len(staged)

    def test_env_guard_blocks_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert batch._load_numpy() is None

    def test_available_reports_module_state(self):
        assert batch.available() == (batch.np is not None)


class TestFixBatch:
    def run_with_fixes(self, staged, **kwargs):
        fixes = FixBatch()
        stats: Counter = Counter()
        decoded = decode_staged(staged, stats, fixes=fixes, **kwargs)
        return decoded, fixes

    def fixes_as_set(self, fixes):
        return set(zip(fixes.t, fixes.mmsi, fixes.lat, fixes.lon,
                       fixes.sog, fixes.cog))

    @pytest.mark.skipif(numpy_missing, reason="vector path needs numpy")
    def test_columns_match_scalar_fixes(self, monkeypatch):
        monkeypatch.setattr(batch, "MIN_BATCH", 1)
        messages = [
            PositionReport(mmsi=200_000_000 + k, lat=1.0 * k, lon=2.0 * k,
                           sog_knots=float(k), cog_deg=3.0 * k)
            for k in range(10)
        ] + [
            ClassBPositionReport(mmsi=300_000_000 + k, lat=-k / 2.0,
                                 lon=k / 3.0, sog_knots=8.0, cog_deg=90.0)
            for k in range(10)
        ] + [
            StaticVoyageData(mmsi=400_000_000, shipname="NONPOSITIONAL"),
        ]
        staged = stage_fleet(messages)
        decoded, vector_fixes = self.run_with_fixes(staged)
        _, scalar_fixes = self.run_with_fixes(staged, force_scalar=True)
        # Static rows contribute no fix; position rows all do.
        assert len(vector_fixes) == len(scalar_fixes) == 20
        # Vector fills columns grouped by message type; content is the
        # same set, and within each type release order is preserved.
        assert self.fixes_as_set(vector_fixes) == \
            self.fixes_as_set(scalar_fixes)

    def test_trackpoints_materialise_columns(self):
        fixes = FixBatch()
        fixes.append(10.0, 211000001, 54.1, 7.9, 12.5, 270.0)
        fixes.append(11.0, 211000002, 54.2, 8.0, None, None)
        assert len(fixes) == 2
        points = fixes.trackpoints()
        assert points == [
            TrackPoint(10.0, 54.1, 7.9, 12.5, 270.0),
            TrackPoint(11.0, 54.2, 8.0, None, None),
        ]


class TestPipelineLevelParity:
    """`batch_decode` flips execution strategy only — every product of a
    full pipeline run must be identical either way."""

    def test_products_identical(self):
        from repro.core.pipeline import MaritimePipeline
        from repro.simulation import regional_scenario

        run = regional_scenario(
            n_vessels=6, duration_s=1800.0, seed=7
        ).run()
        vector = MaritimePipeline(
            PipelineConfig(batch_decode=True)
        ).process(run)
        scalar = MaritimePipeline(
            PipelineConfig(batch_decode=False)
        ).process(run)
        assert vector.events == scalar.events
        assert vector.complex_events == scalar.complex_events
        assert vector.forecasts == scalar.forecasts
        assert vector.cube.total == scalar.cube.total
        assert vector.cube.cell_counts() == scalar.cube.cell_counts()
        assert len(vector.store) == len(scalar.store)

    def test_batch_decode_must_be_bool(self):
        with pytest.raises(ConfigError, match="batch_decode"):
            PipelineConfig(batch_decode=1).validate()
