"""Tests for CPA/TCPA, projection and derived kinematics."""

import pytest

from repro.geo import (
    LocalTangentPlane,
    cpa_tcpa,
    haversine_m,
    project_position,
    speed_course_between,
    turn_rate_deg_per_min,
)


class TestProjectPosition:
    def test_distance(self):
        lat2, lon2 = project_position(48.0, -5.0, 10.0, 90.0, 3600.0)
        # 10 knots for 1 hour = 10 nm.
        assert haversine_m(48.0, -5.0, lat2, lon2) == pytest.approx(
            18_520.0, rel=1e-6
        )

    def test_zero_speed(self):
        assert project_position(48.0, -5.0, 0.0, 90.0, 3600.0) == pytest.approx(
            (48.0, -5.0)
        )


class TestSpeedCourse:
    def test_known_speed(self):
        # 1 nm north in 6 minutes = 10 knots.
        speed, course = speed_course_between(
            0.0, 48.0, -5.0, 360.0, 48.0 + 1.0 / 60.0, -5.0
        )
        assert speed == pytest.approx(10.0, rel=5e-3)
        assert course == pytest.approx(0.0, abs=0.1)

    def test_non_increasing_time_raises(self):
        with pytest.raises(ValueError):
            speed_course_between(10.0, 0.0, 0.0, 10.0, 1.0, 1.0)


class TestTurnRate:
    def test_right_turn_positive(self):
        assert turn_rate_deg_per_min(0.0, 30.0, 60.0) == pytest.approx(30.0)

    def test_left_turn_negative(self):
        assert turn_rate_deg_per_min(30.0, 0.0, 60.0) == pytest.approx(-30.0)

    def test_wraps_through_north(self):
        assert turn_rate_deg_per_min(350.0, 10.0, 60.0) == pytest.approx(20.0)

    def test_bad_dt(self):
        with pytest.raises(ValueError):
            turn_rate_deg_per_min(0.0, 10.0, 0.0)


class TestCpaTcpa:
    def test_head_on(self):
        # Two vessels on the equator closing head-on at 10 kn each,
        # 0.1° (~11.1 km) apart: closing speed ~10.29 m/s.
        result = cpa_tcpa(0.0, 0.0, 10.0, 90.0, 0.0, 0.1, 10.0, 270.0)
        assert result.dcpa_m == pytest.approx(0.0, abs=1.0)
        closing_mps = 2 * 10.0 * 1852.0 / 3600.0
        assert result.tcpa_s == pytest.approx(
            result.range_m / closing_mps, rel=1e-3
        )

    def test_parallel_same_speed(self):
        result = cpa_tcpa(0.0, 0.0, 10.0, 0.0, 0.0, 0.1, 10.0, 0.0)
        assert result.dcpa_m == pytest.approx(result.range_m, rel=1e-6)
        assert result.tcpa_s == 0.0

    def test_diverging_tcpa_negative(self):
        result = cpa_tcpa(0.0, 0.0, 10.0, 270.0, 0.0, 0.1, 10.0, 90.0)
        assert result.tcpa_s < 0.0

    def test_crossing_miss_distance(self):
        # Perpendicular crossing with an offset: DCPA < current range.
        result = cpa_tcpa(0.0, 0.0, 10.0, 0.0, 0.05, 0.1, 10.0, 270.0)
        assert 0.0 < result.dcpa_m < result.range_m

    def test_antimeridian_head_on(self):
        """Regression: the tangent plane used to be centred on the naive
        lon average (~0° for this pair), reporting half-circumference
        ranges for a 2.2 km head-on encounter across lon ±180°."""
        result = cpa_tcpa(0.0, 179.99, 10.0, 90.0, 0.0, -179.99, 10.0, 270.0)
        seam_shifted = cpa_tcpa(0.0, -0.01, 10.0, 90.0, 0.0, 0.01, 10.0, 270.0)
        assert result.range_m == pytest.approx(seam_shifted.range_m, rel=1e-6)
        assert result.tcpa_s == pytest.approx(seam_shifted.tcpa_s, rel=1e-6)
        assert result.dcpa_m == pytest.approx(0.0, abs=1.0)


class TestLocalTangentPlane:
    def test_roundtrip(self):
        plane = LocalTangentPlane(48.0, -5.0)
        x, y = plane.to_xy(48.1, -4.9)
        lat, lon = plane.to_latlon(x, y)
        assert lat == pytest.approx(48.1, abs=1e-9)
        assert lon == pytest.approx(-4.9, abs=1e-9)

    def test_distance_preserved_locally(self):
        plane = LocalTangentPlane(48.0, -5.0)
        x, y = plane.to_xy(48.05, -4.95)
        import math

        plane_dist = math.hypot(x, y)
        true_dist = haversine_m(48.0, -5.0, 48.05, -4.95)
        assert plane_dist == pytest.approx(true_dist, rel=2e-3)

    def test_poles_rejected(self):
        with pytest.raises(ValueError):
            LocalTangentPlane(90.0, 0.0)

    def test_origin_maps_to_zero(self):
        plane = LocalTangentPlane(48.0, -5.0)
        assert plane.to_xy(48.0, -5.0) == pytest.approx((0.0, 0.0))
