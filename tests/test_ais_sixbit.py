"""Tests for AIS bit-buffer plumbing and 6-bit text."""

import pytest

from repro.ais.sixbit import (
    BitBuffer,
    armor_to_char,
    ascii_to_sixbit,
    char_to_armor,
    sixbit_to_ascii,
)


class TestArmor:
    def test_roundtrip_all_values(self):
        for value in range(64):
            assert armor_to_char(char_to_armor(value)) == value

    def test_known_chars(self):
        assert char_to_armor(0) == "0"
        assert char_to_armor(39) == "W"
        assert char_to_armor(40) == "`"
        assert char_to_armor(63) == "w"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            char_to_armor(64)
        with pytest.raises(ValueError):
            char_to_armor(-1)

    def test_invalid_char(self):
        with pytest.raises(ValueError):
            armor_to_char("~")


class TestText:
    def test_roundtrip(self):
        codes = ascii_to_sixbit("HELLO WORLD", 16)
        assert sixbit_to_ascii(codes) == "HELLO WORLD"

    def test_padding_trimmed(self):
        codes = ascii_to_sixbit("ABC", 10)
        assert len(codes) == 10
        assert sixbit_to_ascii(codes) == "ABC"

    def test_lowercase_upcased(self):
        codes = ascii_to_sixbit("pont aven", 10)
        assert sixbit_to_ascii(codes) == "PONT AVEN"

    def test_truncation(self):
        codes = ascii_to_sixbit("VERY LONG SHIP NAME INDEED", 5)
        assert sixbit_to_ascii(codes) == "VERY "[:5].rstrip() or True
        assert len(codes) == 5

    def test_unrepresentable_becomes_question(self):
        codes = ascii_to_sixbit("A~B", 3)
        assert sixbit_to_ascii(codes) == "A?B"

    def test_digits_and_punctuation(self):
        codes = ascii_to_sixbit("M/V 9", 5)
        assert sixbit_to_ascii(codes) == "M/V 9"


class TestBitBuffer:
    def test_uint_roundtrip(self):
        buf = BitBuffer()
        buf.write_uint(1234567, 30)
        buf.write_uint(5, 3)
        assert buf.read_uint(30) == 1234567
        assert buf.read_uint(3) == 5

    def test_int_roundtrip_negative(self):
        buf = BitBuffer()
        buf.write_int(-12345, 28)
        assert buf.read_int(28) == -12345

    def test_int_roundtrip_boundaries(self):
        buf = BitBuffer()
        buf.write_int(-128, 8)
        buf.write_int(127, 8)
        assert buf.read_int(8) == -128
        assert buf.read_int(8) == 127

    def test_uint_overflow(self):
        with pytest.raises(ValueError):
            BitBuffer().write_uint(8, 3)

    def test_int_overflow(self):
        with pytest.raises(ValueError):
            BitBuffer().write_int(128, 8)

    def test_text_field(self):
        buf = BitBuffer()
        buf.write_text("SS NOMAD", 10)
        assert buf.read_text(10) == "SS NOMAD"

    def test_payload_roundtrip(self):
        buf = BitBuffer()
        buf.write_uint(1, 6)
        buf.write_uint(227_000_000, 30)
        buf.write_int(-123456, 28)
        payload, fill = buf.to_payload()
        assert (len(buf) + fill) % 6 == 0
        restored = BitBuffer.from_payload(payload, fill)
        assert len(restored) == len(buf)
        assert restored.read_uint(6) == 1
        assert restored.read_uint(30) == 227_000_000
        assert restored.read_int(28) == -123456

    def test_fill_bits_validation(self):
        with pytest.raises(ValueError):
            BitBuffer.from_payload("00", 6)

    def test_truncated_read_pads_zero(self):
        buf = BitBuffer()
        buf.write_uint(3, 2)
        assert buf.read_uint(8) == 3 << 6  # missing bits read as 0

    def test_exact_multiple_of_six_no_fill(self):
        buf = BitBuffer()
        buf.write_uint(0, 12)
        __, fill = buf.to_payload()
        assert fill == 0
