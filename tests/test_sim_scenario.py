"""Integration tests for the scenario orchestrator."""

import pytest

from repro.simulation import global_scenario, regional_scenario


@pytest.fixture(scope="module")
def regional_run():
    return regional_scenario(n_vessels=20, duration_s=2 * 3600.0, seed=9).run()


class TestRegionalScenario:
    def test_fleet_size(self, regional_run):
        assert len(regional_run.specs) == 20
        assert len(regional_run.plans) == 20

    def test_observations_nonempty_and_ordered(self, regional_run):
        assert len(regional_run.observations) > 1000
        times = [o.t_received for o in regional_run.observations]
        assert times == sorted(times)

    def test_sentences_are_valid_nmea(self, regional_run):
        from repro.ais import verify_checksum

        for sentence in regional_run.sentences[:500]:
            assert sentence.startswith("!AIVDM")
            assert verify_checksum(sentence)

    def test_truth_events_present(self, regional_run):
        kinds = {e.kind for e in regional_run.truth_events}
        assert "rendezvous" in kinds
        assert "spoof" in kinds

    def test_rendezvous_truth_consistent_with_plans(self, regional_run):
        from repro.geo import haversine_m

        for event in regional_run.truth_events:
            if event.kind != "rendezvous":
                continue
            mid_t = (event.t_start + event.t_end) / 2.0
            for mmsi in event.mmsis:
                pos = regional_run.plans[mmsi].position_at(mid_t)
                assert haversine_m(*pos, event.lat, event.lon) < 2_000.0

    def test_dark_fraction_accounting(self, regional_run):
        dark_vessels = [
            m for m, s in regional_run.specs.items() if s.goes_dark
        ]
        for mmsi in dark_vessels:
            fraction = regional_run.dark_fraction(mmsi)
            assert 0.05 <= fraction <= 0.35

    def test_radar_and_lrit_present(self, regional_run):
        assert regional_run.radar_contacts
        assert regional_run.lrit_reports

    def test_reproducible(self):
        a = regional_scenario(n_vessels=8, duration_s=1800.0, seed=4).run()
        b = regional_scenario(n_vessels=8, duration_s=1800.0, seed=4).run()
        assert a.sentences == b.sentences

    def test_different_seeds_differ(self):
        a = regional_scenario(n_vessels=8, duration_s=1800.0, seed=4).run()
        b = regional_scenario(n_vessels=8, duration_s=1800.0, seed=5).run()
        assert a.sentences != b.sentences


class TestGlobalScenario:
    def test_satellite_only(self):
        run = global_scenario(n_vessels=30, duration_s=2 * 3600.0, seed=2).run()
        assert all(o.source == "satellite" for o in run.observations)

    def test_coverage_is_partial(self):
        scenario = global_scenario(n_vessels=30, duration_s=2 * 3600.0, seed=2)
        run = scenario.run()
        coverage = scenario.receivers.coverage_fraction(
            run.transmissions, run.observations
        )
        assert 0.01 < coverage < 0.7

    def test_positions_worldwide(self):
        run = global_scenario(n_vessels=60, duration_s=4 * 3600.0, seed=2).run()
        lats = [tx.lat for tx in run.transmissions]
        lons = [tx.lon for tx in run.transmissions]
        assert max(lats) - min(lats) > 40.0
        assert max(lons) - min(lons) > 120.0
