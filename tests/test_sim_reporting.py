"""Tests for the AIS transceiver model (cadence, deception injection)."""

import random

import pytest

from repro.ais.types import (
    ClassBPositionReport,
    PositionReport,
    ShipType,
    StaticVoyageData,
)
from repro.simulation.reporting import (
    AisTransceiver,
    reporting_interval_s,
    STATIC_PERIOD_S,
)
from repro.simulation import FleetBuilder, Behaviour, plan_transit
from repro.geo import haversine_m


class TestReportingInterval:
    def test_class_a_speed_bands(self):
        assert reporting_interval_s(5.0, True, False) == 10.0
        assert reporting_interval_s(18.0, True, False) == 6.0
        assert reporting_interval_s(25.0, True, False) == 2.0

    def test_class_a_anchored(self):
        assert reporting_interval_s(0.0, False, False) == 180.0

    def test_class_b(self):
        assert reporting_interval_s(6.0, True, True) == 30.0
        assert reporting_interval_s(1.0, False, True) == 180.0


@pytest.fixture
def cargo_transceiver():
    builder = FleetBuilder(1)
    spec = builder.build(ShipType.CARGO)
    rng = random.Random(1)
    plan = plan_transit(0.0, 4 * 3600.0, (48.38, -4.49), (49.65, -1.62), 12.0, rng)
    return spec, plan, AisTransceiver(spec, plan, random.Random(2))


class TestTransmissions:
    def test_cadence_roughly_ten_seconds(self, cargo_transceiver):
        __, __, transceiver = cargo_transceiver
        txs = [
            tx for tx in transceiver.transmissions()
            if isinstance(tx.message, PositionReport)
        ]
        gaps = [b.t - a.t for a, b in zip(txs, txs[1:])]
        typical = sorted(gaps)[len(gaps) // 2]
        assert typical == pytest.approx(10.0, abs=1.0)

    def test_static_every_six_minutes(self, cargo_transceiver):
        __, plan, transceiver = cargo_transceiver
        statics = [
            tx for tx in transceiver.transmissions()
            if isinstance(tx.message, StaticVoyageData)
        ]
        expected = plan.duration_s / STATIC_PERIOD_S if hasattr(plan, "duration_s") else None
        span = plan.t_end - plan.t_start
        assert len(statics) == pytest.approx(span / STATIC_PERIOD_S, abs=3)

    def test_gps_noise_bounded(self, cargo_transceiver):
        spec, plan, __ = cargo_transceiver
        transceiver = AisTransceiver(
            spec, plan, random.Random(3), gps_sigma_m=10.0
        )
        for tx in transceiver.transmissions()[:200]:
            if isinstance(tx.message, PositionReport):
                error = haversine_m(tx.lat, tx.lon, tx.message.lat, tx.message.lon)
                assert error < 60.0  # ~6 sigma

    def test_zero_noise_exact(self, cargo_transceiver):
        spec, plan, __ = cargo_transceiver
        transceiver = AisTransceiver(
            spec, plan, random.Random(3), gps_sigma_m=0.0,
            static_error_rate=0.0,
        )
        for tx in transceiver.transmissions()[:50]:
            if isinstance(tx.message, PositionReport):
                assert tx.message.lat == pytest.approx(tx.lat, abs=1e-9)


class TestDarkShips:
    def test_dark_windows_scheduled(self):
        builder = FleetBuilder(5)
        spec = builder.build(ShipType.CARGO, goes_dark=True)
        rng = random.Random(5)
        plan = plan_transit(0.0, 6 * 3600.0, (48.38, -4.49), (43.35, -3.03), 12.0, rng)
        transceiver = AisTransceiver(spec, plan, random.Random(6))
        assert transceiver.dark_windows
        total_dark = sum(w.t_end - w.t_start for w in transceiver.dark_windows)
        duration = plan.t_end - plan.t_start
        assert 0.08 * duration <= total_dark <= 0.32 * duration

    def test_no_transmission_during_dark(self):
        builder = FleetBuilder(5)
        spec = builder.build(ShipType.CARGO, goes_dark=True)
        rng = random.Random(5)
        plan = plan_transit(0.0, 6 * 3600.0, (48.38, -4.49), (43.35, -3.03), 12.0, rng)
        transceiver = AisTransceiver(spec, plan, random.Random(6))
        windows = transceiver.dark_windows
        for tx in transceiver.transmissions():
            for w in windows:
                assert not (w.t_start <= tx.t <= w.t_end)


class TestSpoofing:
    def test_offset_applied_during_episode(self):
        builder = FleetBuilder(9)
        spec = builder.build(ShipType.CARGO, Behaviour.SPOOFER)
        rng = random.Random(9)
        plan = plan_transit(0.0, 6 * 3600.0, (48.38, -4.49), (43.35, -3.03), 12.0, rng)
        transceiver = AisTransceiver(spec, plan, random.Random(10))
        assert transceiver.spoof_episodes
        episode = transceiver.spoof_episodes[0]
        spoofed, honest = [], []
        for tx in transceiver.transmissions():
            if not isinstance(tx.message, PositionReport):
                continue
            error = haversine_m(tx.lat, tx.lon, tx.message.lat, tx.message.lon)
            if episode.t_start <= tx.t <= episode.t_end:
                spoofed.append(error)
            else:
                honest.append(error)
        assert spoofed and honest
        assert min(spoofed) > 15_000.0  # offset is 20-60 km
        assert max(honest) < 100.0


class TestClassB:
    def test_class_b_message_types(self):
        builder = FleetBuilder(11)
        spec = builder.build(ShipType.FISHING)
        assert spec.class_b
        rng = random.Random(11)
        plan = plan_transit(0.0, 2 * 3600.0, (48.38, -4.49), (48.72, -3.97), 8.0, rng)
        transceiver = AisTransceiver(spec, plan, random.Random(12))
        messages = [tx.message for tx in transceiver.transmissions()]
        assert any(isinstance(m, ClassBPositionReport) for m in messages)
        assert not any(isinstance(m, PositionReport) for m in messages)
