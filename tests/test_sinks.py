"""Sinks and subscriptions: filtered dispatch from pipeline increments."""

import io
import json

import pytest

from repro.core.stages import BackpressureMetrics, PipelineIncrement
from repro.events.base import Event, EventKind
from repro.forecasting.kalmanpredict import PredictionWithUncertainty
from repro.geo import CircleRegion
from repro.sinks import (
    AlertLogSink,
    CallbackSink,
    JsonlSink,
    SubscriptionHub,
    event_to_dict,
    increment_to_dict,
)
from repro.visual.overview import MonitoringAlarm


def event(kind=EventKind.GAP, t=0.0, mmsis=(1,), lat=48.0, lon=-5.0):
    return Event(
        kind=kind, t_start=t, t_end=t + 60.0, mmsis=tuple(mmsis),
        lat=lat, lon=lon, confidence=0.9,
        details={"note": "test", "kinds": [EventKind.GAP]},
    )


def increment(events=(), complex_events=(), alarms=(), forecasts=None):
    return PipelineIncrement(
        t_watermark=1000.0,
        n_observations=10,
        n_records=8,
        new_events=list(events),
        new_complex_events=list(complex_events),
        new_alarms=list(alarms),
        updated_forecasts=dict(forecasts or {}),
        backpressure=BackpressureMetrics(
            feed_latency_s=0.01, records_deferred=3,
            queue_depths={"reorder": 3, "cep": 1},
        ),
    )


class TestSubscriptionDispatch:
    def test_kind_filter_spans_primitive_and_complex(self):
        hub = SubscriptionHub()
        got = []
        hub.subscribe(on_event=got.append, kinds=["gap", EventKind.COMPLEX])
        hub.dispatch(increment(
            events=[event(EventKind.GAP), event(EventKind.LOITERING)],
            complex_events=[event(EventKind.COMPLEX)],
        ))
        assert [e.kind for e in got] == [EventKind.GAP, EventKind.COMPLEX]

    def test_region_and_mmsi_filters(self):
        hub = SubscriptionHub()
        in_region, by_vessel = [], []
        hub.subscribe(
            on_event=in_region.append,
            region=CircleRegion(lat=48.0, lon=-5.0, radius_m=50_000.0),
        )
        hub.subscribe(on_event=by_vessel.append, mmsis=[2])
        hub.dispatch(increment(events=[
            event(mmsis=(1,), lat=48.1, lon=-5.1),
            event(mmsis=(2, 3), lat=20.0, lon=10.0),
        ]))
        assert len(in_region) == 1 and in_region[0].lat == 48.1
        assert len(by_vessel) == 1 and by_vessel[0].mmsis == (2, 3)

    def test_alarm_and_forecast_routing(self):
        hub = SubscriptionHub()
        alarms, forecasts = [], []
        hub.subscribe(on_alarm=alarms.append, mmsis=[7])
        hub.subscribe(on_forecast=lambda mmsi, p: forecasts.append(mmsi))
        hub.dispatch(increment(
            alarms=[
                MonitoringAlarm(t=1.0, mmsi=7, lat=0.0, lon=0.0,
                                score=5.0, explanation="x"),
                MonitoringAlarm(t=2.0, mmsi=8, lat=0.0, lon=0.0,
                                score=5.0, explanation="y"),
            ],
            forecasts={
                5: [PredictionWithUncertainty(48.0, -5.0, 100.0, 300.0)]
            },
        ))
        assert [a.mmsi for a in alarms] == [7]
        assert forecasts == [5]

    def test_close_stops_delivery_and_hub_forgets(self):
        hub = SubscriptionHub()
        got = []
        subscription = hub.subscribe(on_event=got.append)
        hub.dispatch(increment(events=[event()]))
        subscription.close()
        hub.dispatch(increment(events=[event(t=60.0)]))
        assert len(got) == 1
        assert len(hub) == 0

    def test_subscription_requires_a_callback(self):
        with pytest.raises(ValueError):
            SubscriptionHub().subscribe()

    def test_region_must_have_contains(self):
        with pytest.raises(TypeError):
            SubscriptionHub().subscribe(on_event=print, region=object())

    def test_delivery_accounting(self):
        hub = SubscriptionHub()
        subscription = hub.subscribe(
            on_increment=lambda inc: None, on_event=lambda e: None
        )
        hub.dispatch(increment(events=[event(), event(t=60.0)]))
        assert subscription.delivered == {"increments": 1, "events": 2}


class TestSerialisers:
    def test_event_dict_is_json_safe(self):
        payload = json.dumps(event_to_dict(event()))
        decoded = json.loads(payload)
        assert decoded["kind"] == "gap"
        assert decoded["details"]["kinds"] == ["EventKind.GAP"]

    def test_increment_dict_carries_backpressure(self):
        decoded = json.loads(json.dumps(increment_to_dict(
            increment(events=[event()])
        )))
        assert decoded["backpressure"]["records_deferred"] == 3
        assert decoded["backpressure"]["queue_depths"]["reorder"] == 3
        assert len(decoded["events"]) == 1


class TestJsonlSink:
    def test_increment_mode(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        hub = SubscriptionHub()
        sink.attach(hub)
        hub.dispatch(increment(events=[event()]))
        hub.dispatch(increment())
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2 and sink.n_lines == 2
        assert json.loads(lines[0])["n_records"] == 8

    def test_event_mode_applies_filters(self):
        buffer = io.StringIO()
        hub = SubscriptionHub()
        JsonlSink(buffer, mode="events").attach(hub, kinds=["gap"])
        hub.dispatch(increment(
            events=[event(EventKind.GAP), event(EventKind.LOITERING)]
        ))
        lines = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        assert [line["kind"] for line in lines] == ["gap"]

    def test_owns_path_targets(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = JsonlSink(str(path))
        sink.write_event(event())
        sink.close()
        assert json.loads(path.read_text())["kind"] == "gap"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            JsonlSink(io.StringIO(), mode="everything")

    def test_increment_mode_rejects_event_filters(self):
        """Filters only select events; silently archiving everything
        while the caller believes it filtered would be worse."""
        with pytest.raises(ValueError, match="mode='events'"):
            JsonlSink(io.StringIO()).attach(
                SubscriptionHub(), kinds=["rendezvous"]
            )


class TestCallbackSink:
    def test_attach_to_monitor_returns_closable_subscription(self):
        """Attaching to the façade subscribes on its hub, so the handle
        really is a Subscription (the monitor's own fluent subscribe
        returns the monitor)."""
        from repro.monitor import MaritimeMonitor

        monitor = MaritimeMonitor()
        subscription = CallbackSink(lambda e: None).attach(monitor)
        assert len(monitor.hub) == 1
        subscription.close()
        assert len(monitor.hub) == 0

    def test_filters_and_counts(self):
        got = []
        hub = SubscriptionHub()
        CallbackSink(got.append, kinds=[EventKind.RENDEZVOUS]).attach(hub)
        hub.dispatch(increment(events=[
            event(EventKind.RENDEZVOUS), event(EventKind.GAP),
        ]))
        assert [e.kind for e in got] == [EventKind.RENDEZVOUS]


class TestAlertLogSink:
    def test_triages_and_logs(self):
        log = io.StringIO()
        sink = AlertLogSink(target=log)
        hub = SubscriptionHub()
        sink.attach(hub)
        hub.dispatch(increment(events=[event(EventKind.RENDEZVOUS)]))
        assert len(sink.alerts) == 1
        assert "rendezvous" in log.getvalue()

    def test_max_alerts_bounds_retention(self):
        sink = AlertLogSink(max_alerts=2)
        hub = SubscriptionHub()
        sink.attach(hub)
        for i in range(5):
            # Distinct vessels defeat triage dedup, so each event alerts.
            hub.dispatch(increment(
                events=[event(EventKind.GAP, t=10_000.0 * i, mmsis=(i,))]
            ))
        assert len(sink.alerts) == 2


class TestDispatchSnapshot:
    def test_subscribe_from_callback_misses_inflight_increment(self):
        """A subscription created by a callback must not receive the
        increment being dispatched — only subsequent ones."""
        hub = SubscriptionHub()
        late = []

        def add_subscriber(inc):
            if not late_handles:
                late_handles.append(
                    hub.subscribe(on_increment=late.append)
                )

        late_handles = []
        hub.subscribe(on_increment=add_subscriber)
        hub.dispatch(increment(events=[event()]))
        assert late == []  # not the in-flight increment
        hub.dispatch(increment())
        assert len(late) == 1  # but every later one

    def test_close_other_from_callback_suppresses_delivery(self):
        """Closing a later subscription mid-dispatch stops its delivery
        of the in-flight increment (active is checked at dispatch)."""
        hub = SubscriptionHub()
        got = []
        victim = hub.subscribe(on_increment=got.append)

        def closer(inc):
            victim.close()

        hub.subscribe(on_increment=closer)
        hub._subscriptions.reverse()  # closer first, victim second
        hub.dispatch(increment())
        assert got == []
        assert len(hub) == 1  # victim pruned, closer remains

    def test_close_self_from_callback_keeps_others_running(self):
        hub = SubscriptionHub()
        got = []
        handle = []

        def close_self(inc):
            handle[0].close()

        handle.append(hub.subscribe(on_increment=close_self))
        hub.subscribe(on_increment=got.append)
        hub.dispatch(increment(events=[event()]))
        hub.dispatch(increment())
        assert len(got) == 2  # the other subscriber saw both
        assert len(hub) == 1


class TestAsyncDispatcher:
    def drain(self, hub):
        hub.close(drain=True)

    def test_delivery_happens_off_thread_and_counts_match(self):
        import threading

        hub = SubscriptionHub()
        threads = set()
        got = []

        def record(inc):
            threads.add(threading.current_thread().name)
            got.append(inc)

        subscription = hub.subscribe(on_increment=record, async_dispatch=True)
        for i in range(5):
            hub.dispatch(increment())
        self.drain(hub)
        assert len(got) == 5
        assert threads == {"sink-dispatch"}
        dispatcher = subscription.dispatcher
        assert dispatcher.n_submitted == 5
        assert dispatcher.n_delivered == 5
        assert dispatcher.n_dropped == 0
        assert subscription.delivered["increments"] == 5

    def test_drop_oldest_bounds_queue_and_accounts_exactly(self):
        import threading

        gate = threading.Event()
        got = []

        def slow(inc):
            gate.wait(timeout=5.0)
            got.append(inc)

        hub = SubscriptionHub()
        subscription = hub.subscribe(
            on_increment=slow, async_dispatch=True, max_queue=3
        )
        for i in range(10):
            hub.dispatch(increment())
        gate.set()
        self.drain(hub)
        dispatcher = subscription.dispatcher
        assert dispatcher.n_submitted == 10
        assert dispatcher.n_submitted == (
            dispatcher.n_delivered + dispatcher.n_dropped
        )
        assert dispatcher.n_dropped >= 10 - 3 - 1  # at most queue + in-flight survive
        assert subscription.delivered.get("dropped_increments") == (
            dispatcher.n_dropped
        )
        assert len(got) == dispatcher.n_delivered
        assert dispatcher.queue_high_water <= 3

    def test_block_policy_never_drops(self):
        import time as _time

        hub = SubscriptionHub()
        got = []
        subscription = hub.subscribe(
            on_increment=lambda inc: (_time.sleep(0.005), got.append(inc)),
            async_dispatch=True, max_queue=2, overflow="block",
        )
        for i in range(12):
            hub.dispatch(increment())
        self.drain(hub)
        dispatcher = subscription.dispatcher
        assert dispatcher.n_dropped == 0
        assert dispatcher.n_delivered == 12
        assert len(got) == 12

    def test_callback_error_deactivates_without_killing_pipeline(self):
        hub = SubscriptionHub()
        boom = RuntimeError("sink broke")

        def bad(inc):
            raise boom

        subscription = hub.subscribe(on_increment=bad, async_dispatch=True)
        hub.dispatch(increment())  # must not raise on the caller
        self.drain(hub)
        dispatcher = subscription.dispatcher
        assert dispatcher.error is boom
        assert not subscription.active
        # The increment that blew up counts as dropped: reconciliation
        # holds even through the failure path.
        assert dispatcher.n_submitted == 1
        assert dispatcher.n_delivered == 0
        assert dispatcher.n_dropped == 1
        assert subscription.delivered.get("dropped_increments", 0) == 1
        # Later dispatches are no-ops, not crashes.
        hub.dispatch(increment())

    def test_sync_path_unaffected_and_interleaves(self):
        hub = SubscriptionHub()
        sync_got, async_got = [], []
        hub.subscribe(on_increment=sync_got.append)
        hub.subscribe(on_increment=async_got.append, async_dispatch=True)
        for i in range(4):
            hub.dispatch(increment())
        self.drain(hub)
        assert len(sync_got) == 4
        assert len(async_got) == 4

    def test_subscription_close_discards_backlog_as_dropped(self):
        import threading

        gate = threading.Event()
        hub = SubscriptionHub()
        subscription = hub.subscribe(
            on_increment=lambda inc: gate.wait(timeout=5.0),
            async_dispatch=True, max_queue=10,
        )
        for i in range(6):
            hub.dispatch(increment())
        subscription.close()  # close means stop, not finish up
        gate.set()
        dispatcher = subscription.dispatcher
        dispatcher.close(drain=True)
        assert dispatcher.n_submitted == (
            dispatcher.n_delivered + dispatcher.n_dropped
        )
        assert dispatcher.n_dropped > 0
        # Both sides of the handoff agree on the losses.
        assert subscription.delivered.get("dropped_increments", 0) == (
            dispatcher.n_dropped
        )

    def test_rejects_bad_parameters(self):
        hub = SubscriptionHub()
        with pytest.raises(ValueError):
            hub.subscribe(on_event=print, async_dispatch=True, max_queue=0)
        with pytest.raises(ValueError):
            hub.subscribe(
                on_event=print, async_dispatch=True, overflow="teleport"
            )

    def test_event_filters_apply_on_worker(self):
        hub = SubscriptionHub()
        got = []
        hub.subscribe(on_event=got.append, kinds=["gap"], async_dispatch=True)
        hub.dispatch(increment(
            events=[event(EventKind.GAP), event(EventKind.LOITERING)]
        ))
        self.drain(hub)
        assert [e.kind for e in got] == [EventKind.GAP]

    def test_session_flush_drains_async_dispatchers(self):
        """Direct session users get final books too: flush() closes the
        hub's dispatchers, so nothing is stranded in a worker queue."""
        from repro.core import MaritimePipeline

        session = MaritimePipeline().new_session()
        got = []
        subscription = session.subscribe(
            on_increment=got.append, async_dispatch=True
        )
        session.feed(())
        session.flush()
        dispatcher = subscription.dispatcher
        # Both increments (feed + flush) delivered, worker shut down.
        assert dispatcher.n_submitted == 2
        assert dispatcher.n_delivered == 2
        assert dispatcher.n_dropped == 0
        assert len(got) == 2
        assert not dispatcher._worker.is_alive()
