"""Tests for great-circle interpolation."""

import pytest

from repro.geo import (
    haversine_m,
    interpolate_fraction,
    interpolate_great_circle,
    interpolate_track_at_time,
)


class TestInterpolateFraction:
    def test_endpoints(self):
        assert interpolate_fraction(10.0, 20.0, 30.0, 40.0, 0.0) == (10.0, 20.0)
        assert interpolate_fraction(10.0, 20.0, 30.0, 40.0, 1.0) == (30.0, 40.0)

    def test_midpoint_equidistant(self):
        mid = interpolate_fraction(48.0, -5.0, 50.0, 1.0, 0.5)
        d1 = haversine_m(48.0, -5.0, *mid)
        d2 = haversine_m(50.0, 1.0, *mid)
        assert d1 == pytest.approx(d2, rel=1e-9)

    def test_on_great_circle(self):
        # Quarter point + three-quarter point: distances proportional.
        total = haversine_m(10.0, 10.0, 20.0, 30.0)
        quarter = interpolate_fraction(10.0, 10.0, 20.0, 30.0, 0.25)
        assert haversine_m(10.0, 10.0, *quarter) == pytest.approx(
            total / 4.0, rel=1e-9
        )

    def test_identical_points(self):
        assert interpolate_fraction(5.0, 5.0, 5.0, 5.0, 0.5) == (5.0, 5.0)

    def test_extrapolation(self):
        beyond = interpolate_fraction(0.0, 0.0, 0.0, 1.0, 2.0)
        assert beyond[1] == pytest.approx(2.0, rel=1e-6)

    def test_antimeridian_path(self):
        mid = interpolate_fraction(0.0, 179.0, 0.0, -179.0, 0.5)
        assert abs(mid[1]) == pytest.approx(180.0, abs=1e-6)


class TestInterpolateGreatCircle:
    def test_count_and_endpoints(self):
        points = interpolate_great_circle(48.0, -5.0, 49.0, -4.0, 5)
        assert len(points) == 5
        assert points[0] == (48.0, -5.0)
        assert points[-1] == (49.0, -4.0)

    def test_even_spacing(self):
        points = interpolate_great_circle(0.0, 0.0, 0.0, 10.0, 11)
        gaps = [
            haversine_m(*a, *b) for a, b in zip(points, points[1:])
        ]
        assert max(gaps) == pytest.approx(min(gaps), rel=1e-6)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            interpolate_great_circle(0.0, 0.0, 1.0, 1.0, 1)


class TestInterpolateTrackAtTime:
    def test_midtime(self):
        lat, lon = interpolate_track_at_time(
            0.0, 0.0, 0.0, 100.0, 0.0, 1.0, 50.0
        )
        assert lon == pytest.approx(0.5, rel=1e-6)

    def test_at_fix_times(self):
        assert interpolate_track_at_time(
            0.0, 10.0, 20.0, 100.0, 11.0, 21.0, 0.0
        ) == (10.0, 20.0)
        assert interpolate_track_at_time(
            0.0, 10.0, 20.0, 100.0, 11.0, 21.0, 100.0
        ) == (11.0, 21.0)

    def test_simultaneous_fixes_raise(self):
        with pytest.raises(ValueError):
            interpolate_track_at_time(5.0, 0.0, 0.0, 5.0, 1.0, 1.0, 5.0)
