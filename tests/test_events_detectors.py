"""Tests for single-track event detectors."""

import pytest

from repro.ais.types import ShipType
from repro.events import (
    EventKind,
    ZoneWatch,
    detect_gaps,
    detect_loitering,
    detect_speed_anomalies,
    detect_zone_events,
)
from repro.geo import CircleRegion
from repro.simulation.world import Port
from repro.trajectory.points import TrackPoint, Trajectory

PORTS = [Port("BREST", 48.38, -4.49)]


def northbound(n=60, dt=60.0, lat0=47.0, sog=8.0):
    return Trajectory(
        9,
        [
            TrackPoint(i * dt, lat0 + i * 0.002, -5.0, sog, 0.0)
            for i in range(n)
        ],
    )


class TestZoneEvents:
    ZONE = ZoneWatch("TEST", CircleRegion(47.06, -5.0, 3_000.0))

    def test_entry_and_exit(self):
        events = detect_zone_events(northbound(), [self.ZONE])
        kinds = [e.kind for e in events]
        assert kinds == [EventKind.ZONE_ENTRY, EventKind.ZONE_EXIT]
        entry, exit_ = events
        assert entry.t_start < exit_.t_start
        assert exit_.details["dwell_s"] > 0

    def test_never_entering(self):
        zone = ZoneWatch("FAR", CircleRegion(60.0, 10.0, 1_000.0))
        assert detect_zone_events(northbound(), [zone]) == []

    def test_starting_inside(self):
        zone = ZoneWatch("HOME", CircleRegion(47.0, -5.0, 5_000.0))
        events = detect_zone_events(northbound(), [zone])
        assert events[0].kind is EventKind.ZONE_ENTRY
        assert events[0].t_start == 0.0

    def test_multiple_zones(self):
        zones = [
            ZoneWatch("A", CircleRegion(47.02, -5.0, 1_000.0)),
            ZoneWatch("B", CircleRegion(47.08, -5.0, 1_000.0)),
        ]
        events = detect_zone_events(northbound(), zones)
        names = {e.details["zone"] for e in events}
        assert names == {"A", "B"}


class TestGaps:
    def test_detects_silence(self):
        points = [
            TrackPoint(float(i * 60), 47.0 + i * 0.002, -5.0, 8.0, 0.0)
            for i in range(10)
        ]
        points += [
            TrackPoint(4_000.0 + i * 60, 47.1 + i * 0.002, -5.0, 8.0, 0.0)
            for i in range(10)
        ]
        events = detect_gaps(Trajectory(9, points), min_gap_s=1800.0)
        assert len(events) == 1
        gap = events[0]
        assert gap.details["gap_s"] == pytest.approx(4_000.0 - 540.0)
        assert gap.confidence > 0.5

    def test_normal_cadence_silent(self):
        assert detect_gaps(northbound(), min_gap_s=1800.0) == []

    def test_confidence_grows_with_gap(self):
        def with_gap(gap_s):
            points = [TrackPoint(0.0, 47.0, -5.0, 8.0, 0.0),
                      TrackPoint(gap_s, 47.05, -5.0, 8.0, 0.0)]
            return detect_gaps(
                Trajectory(9, points), min_gap_s=1800.0,
                expected_interval_s=600.0,
            )[0].confidence

        assert with_gap(6_000.0) > with_gap(2_000.0)


class TestLoitering:
    def loitering_track(self, lat=47.5, lon=-5.8):
        """40 min pinned at one spot at 0.5 kn."""
        points = [
            TrackPoint(i * 60.0, lat, lon, 0.5, 0.0) for i in range(40)
        ]
        return Trajectory(9, points)

    def test_open_sea_loiter_detected(self):
        events = detect_loitering(self.loitering_track(), PORTS)
        assert len(events) == 1
        assert events[0].kind is EventKind.LOITERING

    def test_port_stop_not_loitering(self):
        events = detect_loitering(
            self.loitering_track(lat=48.39, lon=-4.50), PORTS
        )
        assert events == []

    def test_transiting_not_loitering(self):
        assert detect_loitering(northbound(), PORTS) == []


class TestSpeedAnomalies:
    def test_overspeed_run_detected(self):
        points = [
            TrackPoint(i * 60.0, 47.0 + i * 0.01, -5.0,
                       30.0 if 10 <= i < 16 else 10.0, 0.0)
            for i in range(30)
        ]
        events = detect_speed_anomalies(
            Trajectory(9, points), ShipType.TANKER
        )
        assert len(events) == 1
        assert events[0].details["peak_sog_knots"] == 30.0

    def test_single_glitch_ignored(self):
        points = [
            TrackPoint(i * 60.0, 47.0 + i * 0.01, -5.0,
                       50.0 if i == 10 else 10.0, 0.0)
            for i in range(30)
        ]
        assert detect_speed_anomalies(Trajectory(9, points), ShipType.TANKER) == []

    def test_fast_type_tolerates_speed(self):
        points = [
            TrackPoint(i * 60.0, 47.0 + i * 0.01, -5.0, 38.0, 0.0)
            for i in range(10)
        ]
        fast = detect_speed_anomalies(
            Trajectory(9, points), ShipType.HIGH_SPEED_CRAFT
        )
        slow = detect_speed_anomalies(Trajectory(9, points), ShipType.TANKER)
        assert fast == [] and len(slow) == 1
