"""The incremental stage runtime: batch/live equivalence, bounded memory.

The headline property of the runtime: for any simulated scenario,
replaying its feed through ``run_live`` — at any ``tick_s`` — yields the
same event set, the same forecasts, and the same cube totals as the
one-shot ``process(run)``.  The same property extends across *sources*:
the identical feed delivered in-process, through an NMEA file round
trip, or over a TCP loopback produces the identical products.  Plus: a
long-running live session over a repeating feed keeps every tracked
per-vessel structure at a stable size (entries evicted by age).
"""

import random
import socket
import threading
import time

import pytest

from repro.ais.types import ShipType
from repro.core import MaritimePipeline, PipelineConfig
from repro.events.cep import event_key
from repro.monitor import MaritimeMonitor
from repro.simulation import global_scenario, regional_scenario
from repro.sources import (
    IterableSource,
    MergedSource,
    NmeaFileSource,
    NmeaTcpSource,
    format_tagged_sentence,
    write_nmea_file,
)
from repro.simulation.behaviours import plan_rendezvous_pair, plan_transit
from repro.simulation.receivers import (
    Observation,
    ReceiverNetwork,
    SatelliteConstellation,
    TerrestrialStation,
)
from repro.simulation.scenario import Scenario
from repro.simulation.vessel import Behaviour, FleetBuilder
from repro.simulation.world import Port


def seam_scenario(n_vessels: int = 8, duration_s: float = 5400.0, seed: int = 5):
    """Traffic straddling the antimeridian (Chukchi/Bering theatre)."""
    rng = random.Random(seed)
    builder = FleetBuilder(seed)
    ports = [
        Port("WEST-OF-SEAM", 52.0, 178.6),
        Port("EAST-OF-SEAM", 52.6, -178.8),
    ]
    fleet = []
    for i in range(n_vessels - 2):
        a, b = (ports[0], ports[1]) if i % 2 == 0 else (ports[1], ports[0])
        spec = builder.build(
            ShipType.CARGO, Behaviour.TRANSIT,
            goes_dark=(i % 3 == 0), destination=b.name,
        )
        fleet.append(
            (spec, plan_transit(
                0.0, duration_s, a.position, b.position,
                rng.uniform(10.0, 16.0), rng,
            ))
        )
    # A rendezvous pair meeting on the seam itself.
    meet = (52.3, 179.97)
    plan1, plan2, __ = plan_rendezvous_pair(
        0.0, duration_s,
        (52.36, 179.80), (52.24, -179.86), meet,
        meeting_time=duration_s * 0.5,
        meeting_duration_s=1500.0, rng=rng,
    )
    fleet.append(
        (builder.build(ShipType.CARGO, Behaviour.RENDEZVOUS), plan1)
    )
    fleet.append(
        (builder.build(ShipType.FISHING, Behaviour.RENDEZVOUS), plan2)
    )
    stations = [
        TerrestrialStation(f"STA-{p.name}", p.lat, p.lon) for p in ports
    ]
    # A buoy-mounted receiver on the seam so the rendezvous is observed.
    stations.append(TerrestrialStation("STA-SEAM", 52.35, -179.95))
    receivers = ReceiverNetwork(
        stations, SatelliteConstellation(), seed=seed + 1
    )
    return Scenario(
        name="seam", duration_s=duration_s, fleet=fleet,
        receivers=receivers, seed=seed,
    )


def event_keys(events):
    return {event_key(e) for e in events}


SCENARIOS = {
    "regional": lambda: regional_scenario(
        n_vessels=12, duration_s=1.5 * 3600.0, seed=9
    ),
    "global": lambda: global_scenario(
        n_vessels=25, duration_s=2 * 3600.0, seed=13
    ),
    "seam": seam_scenario,
}


class TestBatchLiveEquivalence:
    @pytest.mark.parametrize("name", ["regional", "global", "seam"])
    @pytest.mark.parametrize("tick_s", [240.0, 1500.0])
    def test_same_events_forecasts_and_cube(self, name, tick_s):
        run = SCENARIOS[name]().run()
        batch = MaritimePipeline().process(run)

        live = MaritimePipeline()
        session = live.new_session(
            specs=run.specs,
            weather=run.weather,
            pol_split_t=live._pol_split(run),
            keep_products=False,
        )
        events, complex_events, forecasts = [], [], {}
        for increment in live.run_live(
            run.observations,
            tick_s=tick_s,
            radar_contacts=run.radar_contacts,
            lrit_reports=run.lrit_reports,
            session=session,
        ):
            events.extend(increment.new_events)
            complex_events.extend(increment.new_complex_events)
            forecasts.update(increment.updated_forecasts)

        assert event_keys(events) == event_keys(batch.events)
        assert event_keys(complex_events) == event_keys(batch.complex_events)
        assert forecasts == batch.forecasts
        assert session.state.cube.total == batch.cube.total
        # Not just totals: the full spatial distribution agrees.
        assert session.state.cube.cell_counts() == batch.cube.cell_counts()

    def test_tick_size_does_not_matter(self):
        """Two very different ticks produce identical increments' union."""
        run = SCENARIOS["regional"]().run()
        outputs = []
        for tick_s in (120.0, 2700.0):
            pipeline = MaritimePipeline()
            events = []
            for increment in pipeline.replay_live(run, tick_s=tick_s):
                events.extend(increment.new_events)
            outputs.append(event_keys(events))
        assert outputs[0] == outputs[1]

    def test_replay_live_matches_process(self):
        """The convenience wrapper carries sensors and the PoL split."""
        run = SCENARIOS["regional"]().run()
        batch = MaritimePipeline().process(run)
        events = []
        for increment in MaritimePipeline().replay_live(run, tick_s=600.0):
            events.extend(increment.new_events)
        assert event_keys(events) == event_keys(batch.events)


def monitor_products(run, *sources, tick_s: float = 240.0,
                     holdback_s: float | None = None):
    """Drive source(s) through the façade; returns comparable products."""
    pipeline = MaritimePipeline()
    monitor = MaritimeMonitor(specs=run.specs, weather=run.weather)
    events, complex_events, forecasts = [], [], {}
    monitor.subscribe(
        on_event=lambda e: (
            complex_events.append(e)
            if e.kind.value == "complex" else events.append(e)
        ),
        on_forecast=lambda mmsi, p: forecasts.__setitem__(mmsi, p),
    )
    monitor.attach(*sources, holdback_s=holdback_s)
    report = monitor.run(
        tick_s=tick_s,
        pol_split_t=pipeline._pol_split(run),
        radar_contacts=run.radar_contacts,
        lrit_reports=run.lrit_reports,
    )
    return {
        "events": event_keys(events),
        "complex": event_keys(complex_events),
        "forecasts": forecasts,
        "cube_total": monitor.session.state.cube.total,
        "cube_cells": monitor.session.state.cube.cell_counts(),
        "report": report,
    }


def serve_lines(lines):
    """Loopback NMEA server replaying the feed once; returns the port."""
    server = socket.socket()
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    port = server.getsockname()[1]

    def run():
        conn, __ = server.accept()
        conn.sendall(("\n".join(lines) + "\n").encode())
        conn.close()
        server.close()

    threading.Thread(target=run, daemon=True).start()
    return port


class TestSourceEquivalence:
    """The acceptance property of the source layer: in-process iterable,
    NMEA-file round trip and TCP loopback deliver the *same* feed, so
    every product — events, forecasts, cube — matches ``process()``."""

    def test_iterable_file_and_tcp_match_process(self, tmp_path):
        run = SCENARIOS["regional"]().run()
        batch = MaritimePipeline().process(run)

        path = tmp_path / "feed.nmea"
        write_nmea_file(run.observations, str(path))
        port = serve_lines(
            [format_tagged_sentence(o) for o in run.observations]
        )
        products = {
            "iterable": monitor_products(
                run, IterableSource(run.observations)
            ),
            "nmea_file": monitor_products(run, NmeaFileSource(str(path))),
            "nmea_tcp": monitor_products(
                run, NmeaTcpSource("127.0.0.1", port, reconnect=False)
            ),
        }
        for name, got in products.items():
            assert got["events"] == event_keys(batch.events), name
            assert got["complex"] == event_keys(batch.complex_events), name
            assert got["forecasts"] == batch.forecasts, name
            assert got["cube_total"] == batch.cube.total, name
            assert got["cube_cells"] == batch.cube.cell_counts(), name
            assert got["report"].n_records > 0, name

    def test_tick_size_invariance_through_file_source(self, tmp_path):
        """The file transport composes with the tick-slicing property."""
        run = SCENARIOS["regional"]().run()
        path = tmp_path / "feed.nmea"
        write_nmea_file(run.observations, str(path))
        small = monitor_products(run, NmeaFileSource(str(path)), tick_s=120.0)
        large = monitor_products(run, NmeaFileSource(str(path)), tick_s=2700.0)
        assert small["events"] == large["events"]
        assert small["cube_cells"] == large["cube_cells"]


class TestBackpressureMetrics:
    def test_every_increment_carries_metrics(self):
        run = SCENARIOS["regional"]().run()
        increments = list(MaritimePipeline().replay_live(run, tick_s=240.0))
        assert increments
        for increment in increments:
            metrics = increment.backpressure
            assert metrics.feed_latency_s == increment.seconds
            assert set(metrics.queue_depths) >= {
                "reorder", "radar", "lrit", "cep",
            }
            assert metrics.records_deferred == metrics.queue_depths["reorder"]
        # The reorder buffer really holds records back mid-stream (the
        # satellite lateness bound), and the flush drains everything.
        assert any(
            inc.backpressure.records_deferred > 0 for inc in increments
        )
        assert increments[-1].backpressure.records_deferred == 0

    def test_stage_stats_track_pending_high_water(self):
        run = SCENARIOS["regional"]().run()
        pipeline = MaritimePipeline()
        session = pipeline.new_session(
            specs=run.specs, weather=run.weather, pol_split_t=900.0
        )
        for increment in pipeline.run_live(
            run.observations, tick_s=240.0, session=session
        ):
            pass
        reorder = session.stages[1]
        assert reorder.name == "reorder"
        assert reorder.max_pending > 0
        assert reorder.pending == 0  # flushed

    def test_failing_subscriber_still_closes_source(self):
        """Subscriptions are fail-fast, but the monitor must not leak a
        live source (a TCP reader would reconnect forever); the partial
        accounting stays reachable via monitor.report."""
        run = regional_scenario(n_vessels=5, duration_s=1200.0, seed=4).run()
        source = IterableSource(run.observations)
        monitor = MaritimeMonitor(specs=run.specs, weather=run.weather)
        monitor.attach(source).subscribe(
            on_increment=lambda inc: (_ for _ in ()).throw(
                RuntimeError("consumer broke")
            )
        )
        with pytest.raises(RuntimeError, match="consumer broke"):
            monitor.run(tick_s=300.0)
        assert list(source) == []  # close() stopped the feed
        assert monitor.report is not None
        assert monitor.report.source is source.stats()

    def test_monitor_probes_source_queue(self):
        run = SCENARIOS["regional"]().run()
        port = serve_lines(
            [format_tagged_sentence(o) for o in run.observations]
        )
        depths = []
        monitor = MaritimeMonitor(specs=run.specs, weather=run.weather)
        monitor.subscribe(
            on_increment=lambda inc: depths.append(
                inc.backpressure.queue_depths["source"]
            )
        )
        monitor.attach(NmeaTcpSource("127.0.0.1", port, reconnect=False))
        monitor.run(tick_s=600.0)
        assert depths  # every increment exposed the source queue depth


class TestSessionBasics:
    def test_stage_names_cumulative(self):
        run = regional_scenario(n_vessels=6, duration_s=1800.0, seed=3).run()
        pipeline = MaritimePipeline()
        session = pipeline.new_session(specs=run.specs, weather=run.weather,
                                       pol_split_t=900.0)
        session.feed(run.observations[: len(run.observations) // 2])
        session.feed(run.observations[len(run.observations) // 2:])
        session.flush()
        assert [s.name for s in session.stages] == [
            "decode", "reorder", "reconstruct", "synopses",
            "integrate", "fuse", "detect", "forecast", "overview",
        ]
        assert session.stages[0].n_in == len(run.observations)

    def test_feed_after_flush_rejected(self):
        session = MaritimePipeline().new_session()
        session.flush()
        with pytest.raises(RuntimeError):
            session.feed([])
        with pytest.raises(RuntimeError):
            session.flush()

    def test_increment_describe(self):
        run = regional_scenario(n_vessels=5, duration_s=1200.0, seed=4).run()
        increments = list(
            MaritimePipeline().replay_live(run, tick_s=600.0)
        )
        assert increments
        assert "records" in increments[0].describe()
        # The flush increment closes the remaining segments.
        assert any(increment.new_segments for increment in increments)

    def test_run_live_rejects_bad_tick(self):
        with pytest.raises(ValueError):
            list(MaritimePipeline().run_live([], tick_s=0.0))


class TestBoundedMemory:
    def test_repeating_feed_state_stays_flat(self):
        """A live session fed the same half-hour of traffic over and over
        must not grow: per-vessel entries are evicted by age."""
        base = regional_scenario(
            n_vessels=10, duration_s=1800.0, seed=21
        ).run()
        config = PipelineConfig(
            vessel_ttl_s=3600.0,
            gap_head_ttl_s=3600.0,
            cep_event_lateness_s=3600.0,
            monitor_max_alarms=200,
        )
        pipeline = MaritimePipeline(config)
        session = pipeline.new_session(
            specs=base.specs, weather=base.weather,
            pol_split_t=900.0, keep_products=False,
        )
        epoch_s = 1800.0
        sizes = []
        for epoch in range(8):
            shift = epoch * epoch_s
            observations = [
                Observation(
                    t_received=obs.t_received + shift,
                    sentence=obs.sentence,
                    source=obs.source,
                    mmsi=obs.mmsi,
                    t_transmitted=obs.t_transmitted + shift,
                )
                for obs in base.observations
            ]
            session.feed(observations, build_overview=False)
            sizes.append(session.state.size_report())
        # After warmup, no tracked structure keeps growing epoch over
        # epoch: the last lap's sizes match the third lap's within 2x.
        reference, final = sizes[2], sizes[-1]
        for key, end_size in final.items():
            if key == "monitor_alarms":
                continue  # capped by config, asserted below
            assert end_size <= max(2 * reference[key], 64), (
                key, reference[key], end_size, sizes
            )
        assert final["monitor_alarms"] <= 200  # the configured cap
        # And the per-vessel tables really track the fleet, not history.
        assert final["current_states"] <= len(base.specs)
        assert final["gap_heads"] <= len(base.specs)

    def test_products_not_accumulated_in_live_mode(self):
        run = regional_scenario(n_vessels=6, duration_s=1800.0, seed=7).run()
        pipeline = MaritimePipeline()
        session = pipeline.new_session(
            specs=run.specs, weather=run.weather,
            pol_split_t=900.0, keep_products=False,
        )
        for increment in pipeline.run_live(
            run.observations, tick_s=300.0, session=session
        ):
            pass
        state = session.state
        assert state.trajectories == []
        assert state.events == []
        assert len(state.store) == 0
        assert len(state.triples) == 0
        assert state.cube.total > 0  # the aggregate always accumulates


class TestMergedSourceEquivalence:
    """The multi-feed acceptance property: N split feeds — file,
    in-process iterable, TCP loopback — merged on reception time
    produce exactly the products of ``process()`` over the sorted
    union, at any tick size, including across the antimeridian seam.

    The merge holdback used here (300 s) plus these scenarios'
    intrinsic reception latency (~1 s) sits strictly inside the reorder
    stage's lateness budget (max_lateness_s = 400 s) — the two compose
    additively against that budget — so every record the merge delays
    is still repaired by the reorder stage and parity is deterministic
    rather than race-dependent.
    """

    @staticmethod
    def split_feeds(observations, n_feeds: int = 3):
        """Round-robin split: each sub-feed stays reception-ordered."""
        return [observations[i::n_feeds] for i in range(n_feeds)]

    @pytest.mark.parametrize("name", ["regional", "seam"])
    @pytest.mark.parametrize("tick_s", [240.0, 1500.0])
    def test_split_feeds_match_process(self, name, tick_s, tmp_path):
        run = SCENARIOS[name]().run()
        batch = MaritimePipeline().process(run)
        feeds = self.split_feeds(run.observations)

        path = tmp_path / "feed0.nmea"
        write_nmea_file(feeds[0], str(path))
        port = serve_lines([format_tagged_sentence(o) for o in feeds[1]])
        got = monitor_products(
            run,
            NmeaFileSource(str(path)),
            NmeaTcpSource("127.0.0.1", port, reconnect=False),
            IterableSource(feeds[2]),
            tick_s=tick_s,
            holdback_s=300.0,
        )
        assert got["events"] == event_keys(batch.events)
        assert got["complex"] == event_keys(batch.complex_events)
        assert got["forecasts"] == batch.forecasts
        assert got["cube_total"] == batch.cube.total
        assert got["cube_cells"] == batch.cube.cell_counts()
        assert got["report"].n_records > 0
        # Aggregated stats cover the whole union; per-feed views remain.
        source_stats = got["report"].source
        assert source_stats.n_observations == len(run.observations)
        assert len(got["report"].sources) == 3

    def test_strict_merge_matches_process_too(self, tmp_path):
        """holdback_s=0 (the exact k-way merge) is the strongest mode:
        byte-for-byte reception order of the sorted union."""
        run = SCENARIOS["regional"]().run()
        batch = MaritimePipeline().process(run)
        feeds = self.split_feeds(run.observations)
        got = monitor_products(run, *feeds, tick_s=600.0, holdback_s=0.0)
        assert got["events"] == event_keys(batch.events)
        assert got["cube_cells"] == batch.cube.cell_counts()

    def test_default_holdback_is_adaptive_capped_at_half_the_budget(self):
        """Merge disorder and intrinsic feed lateness share the reorder
        budget additively, so the default adapts to observed skew but
        never admits more than half the budget as disorder."""
        monitor = MaritimeMonitor()
        monitor.attach([], [])
        assert isinstance(monitor._source, MergedSource)
        assert monitor._source.holdback_s == "auto"
        assert (
            monitor._source.holdback_cap_s
            == monitor.config.max_lateness_s / 2.0
        )

    def test_explicit_holdback_overrides_adaptive_default(self):
        monitor = MaritimeMonitor()
        monitor.attach([], [], holdback_s=123.0)
        assert monitor._source.holdback_s == 123.0

    def test_increments_carry_per_feed_queue_depths(self):
        run = regional_scenario(n_vessels=6, duration_s=1800.0, seed=3).run()
        feeds = self.split_feeds(run.observations, n_feeds=2)
        monitor = MaritimeMonitor(specs=run.specs, weather=run.weather)
        depth_keys = set()
        monitor.subscribe(
            on_increment=lambda inc: depth_keys.update(
                inc.backpressure.queue_depths
            )
        )
        monitor.attach(IterableSource(feeds[0], name="terrestrial"),
                       IterableSource(feeds[1], name="satellite"))
        monitor.run(tick_s=600.0)
        assert {"source", "source:terrestrial", "source:satellite"} <= depth_keys

    def test_report_carries_per_feed_liveness(self):
        run = regional_scenario(n_vessels=6, duration_s=1800.0, seed=3).run()
        feeds = self.split_feeds(run.observations, n_feeds=2)
        monitor = MaritimeMonitor(specs=run.specs, weather=run.weather)
        monitor.attach(IterableSource(feeds[0], name="terrestrial"),
                       IterableSource(feeds[1], name="satellite"))
        report = monitor.run(tick_s=600.0)
        assert {f.name for f in report.feeds} == {"terrestrial", "satellite"}
        assert all(f.finished and f.error is None for f in report.feeds)

    def test_dead_feed_raises_an_alarm_to_subscribers(self):
        """A child feed dying mid-run is an operational alarm, not just
        a stats entry: subscribers get it through the ordinary alarm
        path, exactly once, and the report's liveness names the error."""
        run = regional_scenario(n_vessels=6, duration_s=1800.0, seed=3).run()
        feeds = self.split_feeds(run.observations, n_feeds=2)

        def dying():
            yield from feeds[1][:3]
            raise OSError("receiver fell over")

        alarms = []
        monitor = MaritimeMonitor(specs=run.specs, weather=run.weather)
        monitor.subscribe(on_alarm=alarms.append)
        monitor.attach(
            IterableSource(feeds[0], name="terrestrial"), dying(),
            holdback_s=0.0,
        )
        report = monitor.run(tick_s=600.0)
        feed_alarms = [
            a for a in alarms if a.explanation.startswith("feed '")
        ]
        assert len(feed_alarms) == 1
        assert "died" in feed_alarms[0].explanation
        assert "receiver fell over" in feed_alarms[0].explanation
        dead = [f for f in report.feeds if f.error is not None]
        assert len(dead) == 1 and not dead[0].alive


class TestAsyncDispatchBackpressure:
    """The consumer-side acceptance property: a subscriber sleeping far
    longer than the tick budget must not stall ingestion when it opts
    into async dispatch, while the sync path demonstrably degrades —
    and the delivered/dropped accounting reconciles exactly."""

    SLEEP_S = 0.04  # ~100x a typical tick's feed latency here

    @staticmethod
    def run_monitor(run, subscribe=None):
        monitor = MaritimeMonitor(specs=run.specs, weather=run.weather)
        if subscribe is not None:
            subscribe(monitor)
        monitor.attach(IterableSource(run.observations))
        t0 = time.perf_counter()
        report = monitor.run(tick_s=120.0)
        return report, time.perf_counter() - t0

    def test_async_dispatch_shields_ingestion_from_slow_sink(self):
        run = regional_scenario(n_vessels=10, duration_s=3600.0, seed=21).run()

        def sleeper(inc):
            time.sleep(self.SLEEP_S)

        baseline_report, baseline_s = self.run_monitor(run)
        sync_report, sync_s = self.run_monitor(
            run, lambda m: m.subscribe(on_increment=sleeper)
        )
        async_report, async_s = self.run_monitor(
            run,
            lambda m: m.subscribe(
                on_increment=sleeper, async_dispatch=True, max_queue=2
            ),
        )
        n = baseline_report.n_increments
        assert n >= 20
        # Compare per-increment overhead over the baseline, so machine
        # noise is divided by n instead of compounding wall ratios.
        sync_overhead = (sync_s - baseline_s) / n
        async_overhead = (async_s - baseline_s) / n
        # The sync path pays the sleep on every tick, serially.
        assert sync_overhead >= 0.8 * self.SLEEP_S
        # The async path pays a small fraction of it (the 10%-of-
        # baseline acceptance target on quiet hardware; a 25%-of-sleep
        # per-tick bound plus a drain allowance keeps CI noise out).
        assert async_overhead <= 0.25 * self.SLEEP_S + (
            4 * self.SLEEP_S / n  # end-of-run queue drain
        )
        assert async_s < 0.6 * sync_s  # the degradation gap itself

        # Accounting reconciles exactly: every increment submitted was
        # either delivered or counted dropped, nothing vanished.
        (sub,) = async_report.subscriptions
        assert sub.async_dispatch
        assert sub.n_submitted == async_report.n_increments
        assert sub.n_submitted == sub.n_delivered + sub.n_dropped
        assert sub.delivered.get("increments", 0) == sub.n_delivered
        assert sub.delivered.get("dropped_increments", 0) == sub.n_dropped
        assert sub.n_dropped > 0  # the slow sink really was overrun
        assert sub.error is None
        # The sync subscriber, by contrast, received every increment.
        (sync_sub,) = sync_report.subscriptions
        assert not sync_sub.async_dispatch
        assert sync_sub.delivered["increments"] == sync_report.n_increments

    def test_block_policy_delivers_everything(self):
        run = regional_scenario(n_vessels=5, duration_s=1200.0, seed=6).run()
        got = []
        report, __ = self.run_monitor(
            run,
            lambda m: m.subscribe(
                on_increment=got.append, async_dispatch=True,
                max_queue=2, overflow="block",
            ),
        )
        (sub,) = report.subscriptions
        assert sub.n_dropped == 0
        assert sub.n_delivered == report.n_increments == len(got)

    def test_async_worker_error_recorded_not_raised(self):
        run = regional_scenario(n_vessels=5, duration_s=1200.0, seed=6).run()

        def bad(inc):
            raise RuntimeError("slow sink finally broke")

        report, __ = self.run_monitor(
            run, lambda m: m.subscribe(on_increment=bad, async_dispatch=True)
        )
        (sub,) = report.subscriptions
        assert isinstance(sub.error, RuntimeError)
        assert report.n_increments > 0  # the run itself completed
        # Reconciliation survives the failure: the increment that blew
        # up (and any backlog) counts as dropped, nothing vanishes.
        assert sub.n_submitted == sub.n_delivered + sub.n_dropped
        assert sub.n_dropped >= 1
        assert sub.delivered.get("dropped_increments", 0) == sub.n_dropped
