"""Tests for AIS semantic validation ([44]'s error-audit rules)."""

from repro.ais import (
    IssueSeverity,
    PositionReport,
    StaticVoyageData,
    validate_message,
)
from repro.ais.validation import error_rate


def clean_static() -> StaticVoyageData:
    return StaticVoyageData(
        mmsi=227123456,
        imo=9074729,  # valid check digit
        callsign="FQAB",
        shipname="PONT AVEN",
        ship_type_code=70,
        to_bow_m=100,
        to_stern_m=84,
        to_port_m=12,
        to_starboard_m=13,
        eta_month=6,
        eta_day=12,
        eta_hour=10,
        eta_minute=30,
        draught_m=6.5,
        destination="ROSCOFF",
    )


class TestMmsi:
    def test_valid(self):
        assert not validate_message(
            PositionReport(mmsi=227123456, lat=48.0, lon=-5.0,
                           sog_knots=10.0, cog_deg=0.0)
        )

    def test_too_short(self):
        issues = validate_message(
            PositionReport(mmsi=1234, lat=48.0, lon=-5.0,
                           sog_knots=1.0, cog_deg=0.0)
        )
        assert any(
            i.field_name == "mmsi" and i.severity is IssueSeverity.ERROR
            for i in issues
        )

    def test_bad_mid(self):
        issues = validate_message(
            PositionReport(mmsi=999999999, lat=48.0, lon=-5.0,
                           sog_knots=1.0, cog_deg=0.0)
        )
        assert any(i.field_name == "mmsi" for i in issues)


class TestPositionChecks:
    def test_unavailable_position(self):
        issues = validate_message(
            PositionReport(mmsi=227123456, lat=91.0, lon=181.0,
                           sog_knots=1.0, cog_deg=0.0)
        )
        assert any(i.field_name == "position" for i in issues)

    def test_implausible_speed(self):
        issues = validate_message(
            PositionReport(mmsi=227123456, lat=48.0, lon=-5.0,
                           sog_knots=80.0, cog_deg=0.0)
        )
        assert any(i.field_name == "sog" for i in issues)

    def test_missing_cog_warns(self):
        issues = validate_message(
            PositionReport(mmsi=227123456, lat=48.0, lon=-5.0,
                           sog_knots=10.0, cog_deg=None)
        )
        assert any(i.field_name == "cog" for i in issues)


class TestStaticChecks:
    def test_clean_record_passes(self):
        assert validate_message(clean_static()) == []

    def test_bad_imo_check_digit(self):
        from dataclasses import replace

        bad = replace(clean_static(), imo=9074720)
        issues = validate_message(bad)
        assert any(
            i.field_name == "imo" and i.severity is IssueSeverity.ERROR
            for i in issues
        )

    def test_missing_imo_warns(self):
        from dataclasses import replace

        issues = validate_message(replace(clean_static(), imo=0))
        assert any(
            i.field_name == "imo" and i.severity is IssueSeverity.WARNING
            for i in issues
        )

    def test_blank_name(self):
        from dataclasses import replace

        issues = validate_message(replace(clean_static(), shipname=""))
        assert any(i.field_name == "shipname" for i in issues)

    def test_monster_length(self):
        from dataclasses import replace

        issues = validate_message(
            replace(clean_static(), to_bow_m=300, to_stern_m=300)
        )
        assert any(
            i.field_name == "dimensions" and i.severity is IssueSeverity.ERROR
            for i in issues
        )

    def test_zero_length_warns(self):
        from dataclasses import replace

        issues = validate_message(
            replace(clean_static(), to_bow_m=0, to_stern_m=0)
        )
        assert any(
            i.field_name == "dimensions"
            and i.severity is IssueSeverity.WARNING
            for i in issues
        )

    def test_implausible_draught(self):
        from dataclasses import replace

        issues = validate_message(replace(clean_static(), draught_m=25.5))
        assert any(i.field_name == "draught" for i in issues)

    def test_str_rendering(self):
        from dataclasses import replace

        issue = validate_message(replace(clean_static(), shipname=""))[0]
        assert "shipname" in str(issue)


class TestErrorRate:
    def test_empty(self):
        assert error_rate([]) == 0.0

    def test_simulator_static_error_rate_near_five_percent(self):
        """The transceiver injects ~5% static errors ([44]); the validator
        must measure a rate in that neighbourhood on simulator output."""
        import random

        from repro.simulation import FleetBuilder, plan_transit
        from repro.simulation.reporting import AisTransceiver
        from repro.ais.types import ShipType, StaticVoyageData as SVD

        rng = random.Random(0)
        builder = FleetBuilder(0)
        statics = []
        for i in range(40):
            spec = builder.build(ShipType.CARGO)
            plan = plan_transit(
                0.0, 6 * 3600.0, (48.0, -5.0), (50.0, 0.0), 12.0, rng
            )
            transceiver = AisTransceiver(
                spec, plan, random.Random(i), static_error_rate=0.05
            )
            statics.extend(
                tx.message for tx in transceiver.transmissions()
                if isinstance(tx.message, SVD)
            )
        assert len(statics) > 500
        rate = error_rate(statics)
        assert 0.01 <= rate <= 0.12
