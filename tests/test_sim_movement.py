"""Tests for waypoint plans and analytic movement."""

import pytest

from repro.geo import haversine_m
from repro.simulation.movement import Leg, WaypointPlan


class TestLeg:
    def test_positive_duration_required(self):
        with pytest.raises(ValueError):
            Leg(10.0, 10.0, 0.0, 0.0, 1.0, 1.0)

    def test_speed(self):
        # ~111 km in 1 hour ≈ 60 knots.
        leg = Leg(0.0, 3600.0, 0.0, 0.0, 1.0, 0.0)
        assert leg.speed_knots == pytest.approx(60.0, rel=1e-2)

    def test_dwell_speed_zero(self):
        leg = Leg(0.0, 100.0, 5.0, 5.0, 5.0, 5.0)
        assert leg.speed_knots == 0.0
        assert leg.course_deg == 0.0

    def test_position_clamped(self):
        leg = Leg(0.0, 100.0, 0.0, 0.0, 1.0, 0.0)
        assert leg.position_at(-50.0) == (0.0, 0.0)
        assert leg.position_at(150.0) == pytest.approx((1.0, 0.0))

    def test_position_midway(self):
        leg = Leg(0.0, 100.0, 0.0, 0.0, 1.0, 0.0)
        lat, lon = leg.position_at(50.0)
        assert lat == pytest.approx(0.5, rel=1e-6)


class TestWaypointPlan:
    def test_from_waypoints_duration_matches_speed(self):
        plan = WaypointPlan.from_waypoints(
            0.0, [(0.0, 0.0), (1.0, 0.0)], speed_knots=60.0
        )
        # 60 nm at 60 kn takes ~1 h.
        assert plan.t_end == pytest.approx(3600.0, rel=1e-2)

    def test_contiguity_enforced_in_time(self):
        legs = [
            Leg(0.0, 10.0, 0.0, 0.0, 0.1, 0.0),
            Leg(20.0, 30.0, 0.1, 0.0, 0.2, 0.0),  # 10 s hole
        ]
        with pytest.raises(ValueError):
            WaypointPlan(legs)

    def test_contiguity_enforced_in_space(self):
        legs = [
            Leg(0.0, 10.0, 0.0, 0.0, 0.1, 0.0),
            Leg(10.0, 20.0, 0.5, 0.0, 0.6, 0.0),  # ~44 km jump
        ]
        with pytest.raises(ValueError):
            WaypointPlan(legs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WaypointPlan([])

    def test_position_before_start_clamps(self):
        plan = WaypointPlan.from_waypoints(
            100.0, [(0.0, 0.0), (1.0, 0.0)], 10.0
        )
        assert plan.position_at(0.0) == (0.0, 0.0)

    def test_long_crossing_subdivided(self):
        plan = WaypointPlan.from_waypoints(
            0.0, [(0.0, 0.0), (0.0, 60.0)], 15.0, max_leg_length_m=500_000.0
        )
        assert len(plan.legs) >= 13  # ~6700 km / 500 km

    def test_great_circle_not_rhumb(self):
        # A long east-west crossing at 50°N must arc poleward of 50°N.
        plan = WaypointPlan.from_waypoints(
            0.0, [(50.0, -40.0), (50.0, 0.0)], 15.0
        )
        mid = plan.position_at((plan.t_start + plan.t_end) / 2.0)
        assert mid[0] > 50.5

    def test_sample_covers_span(self):
        plan = WaypointPlan.from_waypoints(
            0.0, [(0.0, 0.0), (0.5, 0.0)], 10.0
        )
        samples = plan.sample(60.0)
        assert samples[0].t == plan.t_start
        assert samples[-1].t == plan.t_end
        assert all(b.t > a.t for a, b in zip(samples, samples[1:]))

    def test_kinematics_underway_flag(self):
        plan = WaypointPlan.from_waypoints(
            0.0, [(0.0, 0.0), (0.5, 0.0)], 10.0
        ).append_dwell(600.0)
        moving = plan.kinematics_at(plan.t_start + 10.0)
        parked = plan.kinematics_at(plan.t_end - 1.0)
        assert moving.underway and moving.sog_knots == pytest.approx(10.0, rel=0.05)
        assert not parked.underway and parked.sog_knots == 0.0

    def test_append_dwell_position(self):
        plan = WaypointPlan.from_waypoints(
            0.0, [(0.0, 0.0), (0.5, 0.0)], 10.0
        )
        extended = plan.append_dwell(1000.0)
        end_lat, end_lon = extended.position_at(extended.t_end)
        assert (end_lat, end_lon) == pytest.approx(
            plan.position_at(plan.t_end)
        )

    def test_interpolation_continuity(self):
        """Positions sampled densely must never jump (>2x speed)."""
        plan = WaypointPlan.from_waypoints(
            0.0, [(48.0, -5.0), (48.5, -4.0), (49.0, -4.5)], 12.0
        )
        prev = None
        step = 30.0
        max_step_m = 12.0 * 1852.0 / 3600.0 * step * 2.0
        t = plan.t_start
        while t <= plan.t_end:
            pos = plan.position_at(t)
            if prev is not None:
                assert haversine_m(*prev, *pos) <= max_step_m
            prev = pos
            t += step
