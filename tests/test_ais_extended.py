"""Tests for extended AIS message types (9, 21, 27)."""

import pytest

from repro.ais import (
    AidToNavigationReport,
    LongRangeReport,
    NavigationStatus,
    SarAircraftReport,
    decode_sentences,
    encode_message,
    encode_sentences,
)


def roundtrip(msg):
    decoded = decode_sentences(encode_sentences(msg))
    assert len(decoded) == 1
    return decoded[0]


class TestSarAircraft:
    def test_roundtrip(self):
        msg = SarAircraftReport(
            mmsi=111227001, lat=48.7, lon=-5.3, altitude_m=450,
            sog_knots=120.0, cog_deg=235.0, timestamp_s=17,
        )
        out = roundtrip(msg)
        assert out.mmsi == 111227001
        assert out.lat == pytest.approx(48.7, abs=1e-4)
        assert out.altitude_m == 450
        assert out.sog_knots == pytest.approx(120.0)
        assert out.cog_deg == pytest.approx(235.0, abs=0.1)
        assert out.timestamp_s == 17

    def test_sentinels(self):
        msg = SarAircraftReport(
            mmsi=111227001, lat=48.7, lon=-5.3,
            altitude_m=None, sog_knots=None, cog_deg=None, timestamp_s=None,
        )
        out = roundtrip(msg)
        assert out.altitude_m is None
        assert out.sog_knots is None
        assert out.cog_deg is None
        assert out.timestamp_s is None

    def test_bit_length(self):
        msg = SarAircraftReport(mmsi=111227001, lat=0.0, lon=0.0)
        assert len(encode_message(msg)) == 168


class TestAidToNavigation:
    def test_roundtrip(self):
        msg = AidToNavigationReport(
            mmsi=992271001, aton_type=14, name="BASSE VIEILLE",
            lat=48.29, lon=-4.78, off_position=True, virtual=False,
        )
        out = roundtrip(msg)
        assert out.mmsi == 992271001
        assert out.aton_type == 14
        assert out.name == "BASSE VIEILLE"
        assert out.off_position is True
        assert out.virtual is False
        assert out.lat == pytest.approx(48.29, abs=1e-4)

    def test_virtual_aton(self):
        msg = AidToNavigationReport(
            mmsi=992271002, aton_type=1, name="V-AIS WRECK",
            lat=48.0, lon=-5.0, virtual=True,
        )
        assert roundtrip(msg).virtual is True


class TestLongRange:
    def test_roundtrip(self):
        msg = LongRangeReport(
            mmsi=227123456, lat=-33.91, lon=151.2, sog_knots=14.0,
            cog_deg=87.0, nav_status=NavigationStatus.UNDER_WAY_ENGINE,
        )
        out = roundtrip(msg)
        assert out.mmsi == 227123456
        # Type 27 position resolution is 1/10 arc-minute ≈ 0.00167°.
        assert out.lat == pytest.approx(-33.91, abs=0.002)
        assert out.lon == pytest.approx(151.2, abs=0.002)
        assert out.sog_knots == 14.0
        assert out.cog_deg == 87.0
        assert out.nav_status is NavigationStatus.UNDER_WAY_ENGINE

    def test_96_bits(self):
        msg = LongRangeReport(mmsi=227123456, lat=0.0, lon=0.0)
        assert len(encode_message(msg)) == 96
        # One short sentence: the whole point of type 27.
        assert len(encode_sentences(msg)) == 1

    def test_sentinels(self):
        out = roundtrip(
            LongRangeReport(mmsi=227123456, lat=10.0, lon=20.0,
                            sog_knots=None, cog_deg=None)
        )
        assert out.sog_knots is None
        assert out.cog_deg is None

    def test_coarser_than_type_1(self):
        """Type 27's quantisation error is visibly larger than type 1's."""
        from repro.ais import PositionReport

        lat, lon = 48.123456, -4.987654
        fine = roundtrip(PositionReport(mmsi=227000001, lat=lat, lon=lon))
        coarse = roundtrip(LongRangeReport(mmsi=227000001, lat=lat, lon=lon))
        fine_error = abs(fine.lat - lat) + abs(fine.lon - lon)
        coarse_error = abs(coarse.lat - lat) + abs(coarse.lon - lon)
        assert coarse_error > 10 * fine_error
