"""Tests for decision support: triage, verbal uncertainty, explanations."""

import pytest

from repro.core import (
    AlertLevel,
    DecisionSupport,
    OperatorProfile,
    verbal_probability,
)
from repro.events import Event, EventKind


def event(kind=EventKind.RENDEZVOUS, t=1000.0, mmsis=(1, 2),
          confidence=0.9, **details):
    return Event(
        kind=kind, t_start=t, t_end=t + 600.0, mmsis=mmsis,
        lat=48.0, lon=-5.0, confidence=confidence,
        details=details,
    )


class TestVerbalProbability:
    def test_ladder(self):
        assert verbal_probability(0.01) == "remote"
        assert verbal_probability(0.30) == "unlikely"
        assert verbal_probability(0.50) == "about even"
        assert verbal_probability(0.70) == "likely"
        assert verbal_probability(0.99) == "almost certain"

    def test_bounds(self):
        assert verbal_probability(0.0) == "remote"
        assert verbal_probability(1.0) == "almost certain"
        with pytest.raises(ValueError):
            verbal_probability(1.1)


class TestTriage:
    def test_levels_by_confidence(self):
        ds = DecisionSupport(OperatorProfile(name="op"))
        alerts = ds.triage(
            [
                event(confidence=0.95, mmsis=(1,)),
                event(confidence=0.6, mmsis=(2,)),
                event(confidence=0.3, mmsis=(3,)),
            ]
        )
        levels = {a.event.mmsis[0]: a.level for a in alerts}
        assert levels[1] is AlertLevel.CRITICAL
        assert levels[2] is AlertLevel.WARNING
        assert levels[3] is AlertLevel.ADVISORY

    def test_below_min_confidence_dropped(self):
        ds = DecisionSupport(OperatorProfile(name="op", min_confidence=0.5))
        assert ds.triage([event(confidence=0.3)]) == []

    def test_kind_filter(self):
        profile = OperatorProfile(
            name="op", kinds=frozenset({EventKind.RENDEZVOUS})
        )
        ds = DecisionSupport(profile)
        alerts = ds.triage(
            [event(EventKind.RENDEZVOUS), event(EventKind.GAP, mmsis=(5,))]
        )
        assert len(alerts) == 1
        assert alerts[0].event.kind is EventKind.RENDEZVOUS

    def test_dedup_window(self):
        ds = DecisionSupport(OperatorProfile(name="op", dedup_window_s=1800.0))
        alerts = ds.triage(
            [event(t=0.0), event(t=600.0), event(t=3600.0)]
        )
        assert len(alerts) == 2  # the 600 s repeat is suppressed

    def test_source_quality_discounting(self):
        ds = DecisionSupport(
            OperatorProfile(name="op"),
            source_quality={"rumour": 0.2},
        )
        trusted = ds.triage([event(confidence=0.9, mmsis=(1,))])[0]
        doubtful_events = [event(confidence=0.9, mmsis=(2,), source="rumour")]
        doubtful = ds.triage(doubtful_events)
        assert trusted.level is AlertLevel.CRITICAL
        assert not doubtful or doubtful[0].level < AlertLevel.WARNING

    def test_sorted_most_severe_first(self):
        ds = DecisionSupport(OperatorProfile(name="op"))
        alerts = ds.triage(
            [
                event(confidence=0.3, mmsis=(1,), t=0.0),
                event(confidence=0.95, mmsis=(2,), t=100.0),
            ]
        )
        assert alerts[0].level is AlertLevel.CRITICAL

    def test_explanations_are_specific(self):
        ds = DecisionSupport(OperatorProfile(name="op"))
        gap_alert = ds.triage(
            [event(EventKind.GAP, mmsis=(7,), gap_s=3600.0)]
        )[0]
        assert "60 min" in gap_alert.explanation
        assert "7" in gap_alert.explanation
        rdv_alert = ds.triage(
            [event(EventKind.RENDEZVOUS, mmsis=(8, 9), duration_s=1200.0)]
        )[0]
        assert "held station" in rdv_alert.explanation

    def test_render_contains_level_and_phrase(self):
        ds = DecisionSupport(OperatorProfile(name="op"))
        alert = ds.triage([event(confidence=0.9)])[0]
        text = alert.render()
        assert "[CRITICAL]" in text
        assert "rendezvous" in text

    def test_second_order_statement_with_counts(self):
        ds = DecisionSupport(OperatorProfile(name="op"))
        alert = ds.triage(
            [event(EventKind.POL_ANOMALY, confidence=0.9, n_points=40)]
        )[0]
        assert "credible" in alert.confidence_statement
