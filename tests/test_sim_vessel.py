"""Tests for fleet identity generation."""

import random

from repro.ais.types import ShipType
from repro.ais.validation import _imo_check_digit_ok
from repro.simulation import Behaviour, FleetBuilder
from repro.simulation.vessel import make_callsign, make_imo_number


class TestFleetBuilder:
    def test_unique_mmsis(self):
        builder = FleetBuilder(0)
        specs = [builder.build(ShipType.CARGO) for _ in range(200)]
        assert len({s.mmsi for s in specs}) == 200

    def test_unique_names(self):
        builder = FleetBuilder(0)
        specs = [builder.build(ShipType.CARGO) for _ in range(200)]
        assert len({s.name for s in specs}) == 200

    def test_mmsi_has_valid_mid(self):
        builder = FleetBuilder(1)
        for _ in range(50):
            spec = builder.build(ShipType.TANKER)
            mid = spec.mmsi // 1_000_000
            assert 201 <= mid <= 775

    def test_flag_consistent_with_mid(self):
        builder = FleetBuilder(2)
        spec = builder.build(ShipType.CARGO, flag="FR")
        assert spec.mmsi // 1_000_000 == 227
        assert spec.flag == "FR"

    def test_imo_check_digit_valid(self):
        builder = FleetBuilder(3)
        for _ in range(50):
            spec = builder.build(ShipType.CARGO)
            assert _imo_check_digit_ok(spec.imo)

    def test_class_b_defaults(self):
        builder = FleetBuilder(4)
        fishing = builder.build(ShipType.FISHING)
        cargo = builder.build(ShipType.CARGO)
        assert fishing.class_b and not cargo.class_b
        assert fishing.imo == 0  # small craft carry no IMO number

    def test_dimensions_by_type(self):
        builder = FleetBuilder(5)
        fishing = builder.build(ShipType.FISHING)
        tanker = builder.build(ShipType.TANKER)
        assert fishing.length_m < 50 < tanker.length_m

    def test_behaviour_and_darkness(self):
        builder = FleetBuilder(6)
        spec = builder.build(
            ShipType.CARGO, Behaviour.RENDEZVOUS, goes_dark=True
        )
        assert spec.behaviour is Behaviour.RENDEZVOUS
        assert spec.goes_dark

    def test_deterministic(self):
        a = FleetBuilder(7).build(ShipType.CARGO)
        b = FleetBuilder(7).build(ShipType.CARGO)
        assert a == b


class TestIdentityHelpers:
    def test_imo_numbers_valid(self):
        rng = random.Random(0)
        for _ in range(100):
            assert _imo_check_digit_ok(make_imo_number(rng))

    def test_callsign_shape(self):
        rng = random.Random(0)
        callsign = make_callsign("FR", rng)
        assert len(callsign) == 5
        assert callsign[0] == "F"
