"""Tests for the trajectory store."""

import pytest

from repro.geo import BoundingBox
from repro.storage import RangeQuery, TrajectoryStore
from repro.trajectory.points import TrackPoint, Trajectory


def make_trajectory(mmsi, lat0, n=50, dt=60.0):
    return Trajectory(
        mmsi,
        [
            TrackPoint(i * dt, lat0 + i * 0.001, -5.0, 10.0, 0.0)
            for i in range(n)
        ],
    )


@pytest.fixture
def store():
    s = TrajectoryStore(cell_deg=0.1, time_bucket_s=600.0)
    s.add(make_trajectory(1, 48.0))
    s.add(make_trajectory(2, 49.0))
    s.add(make_trajectory(3, 55.0))
    return s


class TestBasics:
    def test_counts(self, store):
        assert len(store) == 150
        assert store.n_vessels == 3

    def test_segments_by_mmsi(self, store):
        assert len(store.segments(1)) == 1
        assert store.segments(99) == []

    def test_multiple_segments_per_vessel(self, store):
        extra = make_trajectory(1, 48.5)
        store.add(extra)
        assert len(store.segments(1)) == 2
        assert len(store.all_segments()) == 4


class TestQueries:
    def test_index_equals_scan(self, store):
        query = RangeQuery(BoundingBox(47.9, 48.6, -5.5, -4.5), 0.0, 1800.0)
        via_index = {(p.mmsi, p.t) for p in store.range_points(query)}
        via_scan = {(p.mmsi, p.t) for p in store.range_points_scan(query)}
        assert via_index == via_scan
        assert via_index  # non-trivial

    def test_vessels_in(self, store):
        query = RangeQuery(BoundingBox(47.9, 48.2, -5.5, -4.5), 0.0, 3600.0)
        assert store.vessels_in(query) == {1}

    def test_knn(self, store):
        got = store.knn(48.0, -5.0, 0.0, 4000.0, 3)
        assert len(got) == 3
        assert got[0][1].mmsi == 1

    def test_window_trajectories_clipped(self, store):
        query = RangeQuery(BoundingBox(47.0, 50.0, -6.0, -4.0), 600.0, 1200.0)
        clipped = store.window_trajectories(query)
        for trajectory in clipped:
            assert trajectory.t_start >= 600.0
            assert trajectory.t_end <= 1200.0
        assert {tr.mmsi for tr in clipped} == {1, 2}

    def test_density_histogram_total(self, store):
        histogram = store.density_histogram()
        assert sum(histogram.values()) == 150
