"""Tests for DTW, Fréchet and Hausdorff distances."""

import pytest

from repro.trajectory import (
    Trajectory,
    dtw_distance_m,
    frechet_distance_m,
    hausdorff_distance_m,
)
from repro.trajectory.points import TrackPoint


def line(lat0, lon0, n=10, dlat=0.01, dlon=0.0, mmsi=1):
    return Trajectory(
        mmsi,
        [
            TrackPoint(i * 60.0, lat0 + i * dlat, lon0 + i * dlon)
            for i in range(n)
        ],
    )


MEASURES = [dtw_distance_m, frechet_distance_m, hausdorff_distance_m]


@pytest.mark.parametrize("measure", MEASURES)
class TestMetricProperties:
    def test_self_distance_zero(self, measure):
        track = line(48.0, -5.0)
        assert measure(track, track) == 0.0

    def test_symmetry(self, measure):
        a = line(48.0, -5.0)
        b = line(48.1, -5.05, dlat=0.012)
        assert measure(a, b) == pytest.approx(measure(b, a), rel=1e-9)

    def test_non_negative(self, measure):
        a = line(48.0, -5.0)
        b = line(50.0, -3.0)
        assert measure(a, b) >= 0.0

    def test_monotone_in_offset(self, measure):
        base = line(48.0, -5.0)
        near = line(48.001, -5.0)
        far = line(48.5, -5.0)
        assert measure(base, near) < measure(base, far)


class TestParallelLines:
    def test_frechet_equals_offset(self):
        a = line(48.0, -5.0)
        b = line(48.1, -5.0)  # parallel, 0.1° north ≈ 11.1 km
        assert frechet_distance_m(a, b) == pytest.approx(11_119.5, rel=1e-3)

    def test_hausdorff_equals_offset(self):
        a = line(48.0, -5.0)
        b = line(48.1, -5.0)
        assert hausdorff_distance_m(a, b) == pytest.approx(11_119.5, rel=1e-3)

    def test_dtw_sums_offsets(self):
        a = line(48.0, -5.0, n=10)
        b = line(48.1, -5.0, n=10)
        # Diagonal alignment: 10 pairs at ~11.1 km.
        assert dtw_distance_m(a, b) == pytest.approx(111_195.0, rel=1e-2)


class TestWarpingBehaviour:
    def test_dtw_tolerates_different_sampling(self):
        """The same path at different rates: DTW stays small, while a
        naive lockstep sum would not."""
        coarse = line(48.0, -5.0, n=5, dlat=0.02)
        fine = line(48.0, -5.0, n=9, dlat=0.01)
        assert dtw_distance_m(coarse, fine) < 5_000.0

    def test_frechet_tolerates_different_sampling(self):
        coarse = line(48.0, -5.0, n=5, dlat=0.02)
        fine = line(48.0, -5.0, n=9, dlat=0.01)
        assert frechet_distance_m(coarse, fine) < 2_000.0

    def test_dtw_band_widens_for_unequal_lengths(self):
        a = line(48.0, -5.0, n=30)
        b = line(48.0, -5.0, n=5, dlat=0.06)
        # Must not be infinite even with a tiny window.
        assert dtw_distance_m(a, b, window=1) < float("inf")

    def test_hausdorff_ignores_order(self):
        forward = line(48.0, -5.0)
        backward = Trajectory(
            2,
            [
                TrackPoint(i * 60.0, p.lat, p.lon)
                for i, p in enumerate(reversed(forward.points))
            ],
        )
        assert hausdorff_distance_m(forward, backward) == pytest.approx(0.0, abs=1.0)
