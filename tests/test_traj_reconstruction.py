"""Tests for online trajectory reconstruction and cleaning."""

from repro.ais.types import PositionReport
from repro.trajectory import ReconstructionConfig, TrackReconstructor


def report(mmsi=227000001, lat=48.0, lon=-5.0, sog=10.0, cog=0.0):
    return PositionReport(
        mmsi=mmsi, lat=lat, lon=lon, sog_knots=sog, cog_deg=cog
    )


class TestBasicFlow:
    def test_clean_sequence_accepted(self):
        rec = TrackReconstructor()
        for i in range(10):
            out = rec.add(report(lat=48.0 + i * 0.001), t=float(i * 10))
            assert out is not None
        tracks = rec.finish()
        assert len(tracks) == 1
        assert len(tracks[0]) == 10

    def test_multiple_vessels_separate_tracks(self):
        rec = TrackReconstructor()
        for i in range(10):
            rec.add(report(mmsi=1, lat=48.0 + i * 0.001), t=float(i * 10))
            rec.add(report(mmsi=2, lat=50.0 + i * 0.001), t=float(i * 10))
        tracks = rec.finish()
        assert {tr.mmsi for tr in tracks} == {1, 2}

    def test_position_unavailable_skipped(self):
        rec = TrackReconstructor()
        assert rec.add(report(lat=91.0, lon=181.0), t=0.0) is None

    def test_finish_resets(self):
        rec = TrackReconstructor()
        for i in range(5):
            rec.add(report(lat=48.0 + i * 0.001), t=float(i * 10))
        assert len(rec.finish()) == 1
        assert rec.finish() == []


class TestCleaningRules:
    def test_duplicates_dropped(self):
        rec = TrackReconstructor(ReconstructionConfig(min_dt_s=5.0))
        rec.add(report(), t=0.0)
        assert rec.add(report(), t=1.0) is None
        assert rec.stats.duplicates == 1

    def test_out_of_order_dropped(self):
        rec = TrackReconstructor()
        rec.add(report(), t=100.0)
        assert rec.add(report(lat=48.001), t=50.0) is None
        assert rec.stats.out_of_order == 1

    def test_speed_gate_rejects_single_glitch(self):
        rec = TrackReconstructor()
        rec.add(report(lat=48.0), t=0.0)
        # 1 degree (~111 km) in 10 s → thousands of knots.
        assert rec.add(report(lat=49.0), t=10.0) is None
        assert rec.stats.speed_rejected == 1
        # Vessel continues normally: next plausible fix accepted.
        assert rec.add(report(lat=48.0005), t=20.0) is not None

    def test_persistent_jump_splits_segment(self):
        config = ReconstructionConfig(max_consecutive_rejects=3)
        rec = TrackReconstructor(config)
        for i in range(5):
            rec.add(report(lat=48.0 + i * 0.0005), t=float(i * 10))
        # Vessel "teleports" (spoof) and keeps reporting there.
        for i in range(5):
            rec.add(report(lat=49.5 + i * 0.0005), t=float(50 + i * 10))
        tracks = rec.finish()
        assert len(tracks) == 2
        assert rec.stats.segments_closed >= 1

    def test_gap_splits_segment(self):
        config = ReconstructionConfig(gap_timeout_s=600.0)
        rec = TrackReconstructor(config)
        for i in range(5):
            rec.add(report(lat=48.0 + i * 0.0005), t=float(i * 10))
        rec.add(report(lat=48.01), t=5_000.0)  # long silence
        for i in range(4):
            rec.add(report(lat=48.01 + i * 0.0005), t=5_010.0 + i * 10)
        tracks = rec.finish()
        assert len(tracks) == 2

    def test_active_track_inspection(self):
        rec = TrackReconstructor()
        rec.add(report(), t=0.0)
        rec.add(report(lat=48.0005), t=10.0)
        assert len(rec.active_track(227000001)) == 2
        assert rec.last_point(227000001).t == 10.0
        assert rec.last_point(999) is None


class TestEndToEnd:
    def test_reconstruction_tracks_truth(self):
        """Feeding simulator output must recover the true path within GPS
        noise + receiver loss."""
        import random

        from repro.geo import haversine_m
        from repro.simulation import FleetBuilder, plan_transit
        from repro.simulation.reporting import AisTransceiver
        from repro.ais.types import ShipType

        rng = random.Random(1)
        builder = FleetBuilder(1)
        spec = builder.build(ShipType.CARGO)
        plan = plan_transit(
            0.0, 2 * 3600.0, (48.38, -4.49), (49.65, -1.62), 14.0, rng
        )
        transceiver = AisTransceiver(spec, plan, random.Random(2))
        rec = TrackReconstructor()
        for tx in transceiver.transmissions():
            if isinstance(tx.message, PositionReport):
                rec.add(tx.message, tx.t)
        tracks = rec.finish()
        assert len(tracks) == 1
        track = tracks[0]
        for t in range(0, 7200, 600):
            true_pos = plan.position_at(float(t))
            rec_pos = track.position_at(float(t))
            assert haversine_m(*true_pos, *rec_pos) < 100.0
