"""Tests for the shared geo-grid spatial index."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import haversine_m, normalize_lon
from repro.spatial import GridIndex


def brute_pairs(points, distance_m):
    """Reference O(n²) haversine pair enumeration (insertion order)."""
    found = set()
    for i in range(len(points)):
        pid, lat, lon = points[i]
        for qid, qlat, qlon in points[i + 1 :]:
            if haversine_m(lat, lon, qlat, qlon) <= distance_m:
                found.add((pid, qid))
    return found


def scatter(rng, n, lat_c, lon_c, spread_deg):
    """Random points around a centre, spread widened for lon convergence."""
    lon_spread = spread_deg / max(0.05, math.cos(math.radians(lat_c)))
    return [
        (
            i,
            min(90.0, max(-90.0, lat_c + rng.uniform(-spread_deg, spread_deg))),
            normalize_lon(lon_c + rng.uniform(-lon_spread, lon_spread)),
        )
        for i in range(n)
    ]


class TestBasics:
    def test_invalid_cell_size_rejected(self):
        with pytest.raises(ValueError):
            GridIndex(0.0)

    def test_insert_contains_position(self):
        index = GridIndex(1000.0)
        index.insert("a", 48.0, -5.0)
        assert "a" in index
        assert len(index) == 1
        assert index.position("a") == (48.0, -5.0)

    def test_insert_is_upsert(self):
        index = GridIndex(1000.0)
        index.insert("a", 48.0, -5.0)
        index.insert("a", 10.0, 120.0)
        assert len(index) == 1
        assert index.position("a") == (10.0, 120.0)
        assert {i for i, __ in index.radius_query(10.0, 120.0, 1.0)} == {"a"}

    def test_remove(self):
        index = GridIndex(1000.0)
        index.insert("a", 48.0, -5.0)
        index.remove("a")
        assert len(index) == 0
        with pytest.raises(KeyError):
            index.remove("a")

    def test_radius_query_inclusive_and_exact(self):
        index = GridIndex(500.0)
        index.insert(1, 0.0, 0.0)
        index.insert(2, 0.0, 0.01)  # ~1113 m east
        hits = dict(index.radius_query(0.0, 0.0, 1500.0))
        assert set(hits) == {1, 2}
        assert hits[1] == 0.0
        assert hits[2] == pytest.approx(
            haversine_m(0.0, 0.0, 0.0, 0.01), abs=1e-9
        )

    def test_knn_orders_by_distance(self):
        index = GridIndex(1000.0)
        for i in range(10):
            index.insert(i, 0.0, 0.001 * i)
        assert [i for i, __ in index.knn(0.0, 0.0, 3)] == [0, 1, 2]
        # k larger than the population returns everything.
        assert len(index.knn(0.0, 0.0, 50)) == 10
        assert index.knn(0.0, 0.0, 0) == []

    def test_knn_reaches_far_items(self):
        """Expansion must find neighbours many cells away."""
        index = GridIndex(100.0)
        index.insert("far", 1.0, 1.0)
        index.insert("farther", -2.0, 3.0)
        assert [i for i, __ in index.knn(0.0, 0.0, 2)] == ["far", "farther"]


class TestAntimeridian:
    def test_pair_across_seam_found(self):
        index = GridIndex(500.0)
        index.insert(1, 10.0, 179.999)
        index.insert(2, 10.0, -179.999)
        pairs = list(index.all_pairs_within(500.0))
        assert [(a, b) for a, b, __ in pairs] == [(1, 2)]
        assert pairs[0][2] == pytest.approx(
            haversine_m(10.0, 179.999, 10.0, -179.999), abs=1e-9
        )

    def test_radius_query_across_seam(self):
        index = GridIndex(1000.0)
        index.insert("west", 0.0, -179.995)
        index.insert("east", 0.0, 179.995)
        assert {i for i, __ in index.radius_query(0.0, 180.0, 2000.0)} == {
            "west",
            "east",
        }


class TestHighLatitude:
    def test_metric_radius_holds_at_78_north(self):
        """~480 m of longitude at 78°N is >2 naive 0.01° cells apart."""
        index = GridIndex(500.0)
        lon_offset = 480.0 / (111_194.9 * math.cos(math.radians(78.0)))
        index.insert(1, 78.0, 0.0)
        index.insert(2, 78.0, lon_offset)
        assert [(a, b) for a, b, __ in index.all_pairs_within(500.0)] == [(1, 2)]

    def test_pole_cap_single_cell(self):
        index = GridIndex(500.0)
        index.insert(1, 89.999, 0.0)
        index.insert(2, 89.999, 180.0)  # ~250 m across the pole cap
        dist = haversine_m(89.999, 0.0, 89.999, 180.0)
        assert [p[:2] for p in index.all_pairs_within(dist + 1.0)] == [(1, 2)]

    def test_poles_accepted(self):
        index = GridIndex(500.0)
        index.insert("n", 90.0, 0.0)
        index.insert("s", -90.0, 123.0)
        assert len(index) == 2
        assert [i for i, __ in index.knn(89.9999, 50.0, 1)] == ["n"]


class TestAllPairsMatchesBruteForce:
    @pytest.mark.parametrize(
        "seed,lat_c,lon_c,spread_deg,distance_m",
        [
            (0, 48.0, -5.0, 0.5, 2_000.0),
            (1, 0.0, 0.0, 2.0, 20_000.0),
            (2, 78.0, 179.9, 1.0, 500.0),
            (3, -62.0, -179.95, 0.8, 5_000.0),
            (4, 85.0, 10.0, 3.0, 10_000.0),
            (5, 45.0, 180.0, 0.1, 700.0),
        ],
    )
    def test_matches_brute_force(self, seed, lat_c, lon_c, spread_deg, distance_m):
        rng = random.Random(seed)
        points = scatter(rng, 250, lat_c, lon_c, spread_deg)
        index = GridIndex.from_points(points, cell_size_m=distance_m)
        got = {(a, b) for a, b, __ in index.all_pairs_within(distance_m)}
        assert got == brute_pairs(points, distance_m)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        lat_c=st.floats(min_value=-89.0, max_value=89.0),
        lon_c=st.floats(min_value=-180.0, max_value=180.0),
        distance_m=st.floats(min_value=50.0, max_value=50_000.0),
    )
    def test_property_random_clusters(self, seed, lat_c, lon_c, distance_m):
        """Index pair enumeration == brute force for arbitrary clusters."""
        rng = random.Random(seed)
        spread_deg = distance_m / 111_194.9 * rng.uniform(0.5, 4.0)
        points = scatter(rng, 60, lat_c, lon_c, spread_deg)
        index = GridIndex.from_points(points, cell_size_m=distance_m)
        got = {(a, b) for a, b, __ in index.all_pairs_within(distance_m)}
        assert got == brute_pairs(points, distance_m)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        lat_c=st.floats(min_value=-89.0, max_value=89.0),
        radius_m=st.floats(min_value=10.0, max_value=100_000.0),
    )
    def test_property_radius_query(self, seed, lat_c, radius_m):
        rng = random.Random(seed)
        points = scatter(rng, 80, lat_c, 179.9, radius_m / 111_194.9 * 2.0)
        index = GridIndex.from_points(points, cell_size_m=max(radius_m / 3, 1.0))
        q_lat, q_lon = points[0][1], points[0][2]
        got = {i for i, __ in index.radius_query(q_lat, q_lon, radius_m)}
        want = {
            i
            for i, lat, lon in points
            if haversine_m(q_lat, q_lon, lat, lon) <= radius_m
        }
        assert got == want
