"""Tests for the synthetic weather provider (multi-resolution semantics)."""

import pytest

from repro.simulation.weather import WeatherProvider


class TestDeterminism:
    def test_same_seed_same_field(self):
        a = WeatherProvider(seed=7).sample_exact(48.0, -5.0, 3600.0)
        b = WeatherProvider(seed=7).sample_exact(48.0, -5.0, 3600.0)
        assert a == b

    def test_different_seed_differs(self):
        a = WeatherProvider(seed=7).sample_exact(48.0, -5.0, 3600.0)
        b = WeatherProvider(seed=8).sample_exact(48.0, -5.0, 3600.0)
        assert a != b


class TestPhysicalBounds:
    def test_non_negative_quantities(self):
        provider = WeatherProvider(seed=1)
        for lat, lon, t in [
            (0.0, 0.0, 0.0), (48.0, -5.0, 7200.0), (-40.0, 170.0, 86400.0),
        ]:
            sample = provider.sample_exact(lat, lon, t)
            assert sample.wind_speed_mps >= 0.0
            assert sample.wave_height_m >= 0.0
            assert 0.0 <= sample.wind_dir_deg < 360.0

    def test_fields_vary_in_space(self):
        provider = WeatherProvider(seed=1)
        values = {
            round(provider.sample_exact(lat, 0.0, 0.0).wind_speed_mps, 3)
            for lat in range(-60, 61, 10)
        }
        assert len(values) > 5

    def test_fields_vary_in_time(self):
        provider = WeatherProvider(seed=1)
        values = {
            round(provider.sample_exact(48.0, -5.0, t * 3600.0).wind_speed_mps, 3)
            for t in range(24)
        }
        assert len(values) > 5


class TestGridding:
    def test_snap_is_idempotent(self):
        provider = WeatherProvider(seed=1, grid_resolution_deg=0.25,
                                   time_step_s=3600.0)
        lat_c, lon_c, t_c = provider.snap(48.13, -4.97, 5000.0)
        assert provider.snap(lat_c, lon_c, t_c)[0] == pytest.approx(lat_c)

    def test_gridded_constant_within_cell(self):
        provider = WeatherProvider(seed=1, grid_resolution_deg=0.5)
        a = provider.sample_gridded(48.01, -5.01, 100.0)
        b = provider.sample_gridded(48.24, -5.24, 100.0)
        assert a == b  # same 0.5° cell, same time step

    def test_gridded_changes_across_cells(self):
        provider = WeatherProvider(seed=1, grid_resolution_deg=0.5)
        a = provider.sample_gridded(48.01, -5.01, 100.0)
        b = provider.sample_gridded(48.76, -5.01, 100.0)
        assert a != b

    def test_quantisation_error_grows_with_resolution(self):
        """§2.5: coarser products introduce larger alignment error."""
        fine = WeatherProvider(seed=1, grid_resolution_deg=0.05)
        coarse = WeatherProvider(seed=1, grid_resolution_deg=2.0)
        points = [
            (48.13 + i * 0.37, -5.0 + i * 0.73, i * 1800.0) for i in range(40)
        ]
        fine_err = sum(fine.quantisation_error(*p) for p in points)
        coarse_err = sum(coarse.quantisation_error(*p) for p in points)
        assert coarse_err > fine_err

    def test_time_quantisation(self):
        provider = WeatherProvider(seed=1, time_step_s=3600.0)
        a = provider.sample_gridded(48.0, -5.0, 0.0)
        b = provider.sample_gridded(48.0, -5.0, 3599.0)
        c = provider.sample_gridded(48.0, -5.0, 3601.0)
        assert a == b
        assert a != c
