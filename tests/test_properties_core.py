"""Property-based tests: compression bounds, windows, uncertainty algebra,
index/scan equivalence."""

import math

from hypothesis import given, settings, strategies as st

from repro.geo import BoundingBox
from repro.storage import GridIndex, IndexedPoint
from repro.streaming import Record, Stream, tumbling_windows
from repro.trajectory import (
    Trajectory,
    compression_ratio,
    douglas_peucker,
    max_sed_error_m,
    squish_e,
)
from repro.trajectory.points import TrackPoint
from repro.uncertainty import (
    MassFunction,
    PossibilityDistribution,
    ProbabilisticRelation,
    combine_dempster,
    combine_yager,
    discount,
)


# -- trajectory strategies ----------------------------------------------------

@st.composite
def trajectories(draw, min_points=3, max_points=60):
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    lat0 = draw(st.floats(min_value=-60.0, max_value=60.0))
    lon0 = draw(st.floats(min_value=-170.0, max_value=170.0))
    points = []
    t = 0.0
    lat, lon = lat0, lon0
    for __ in range(n):
        points.append(TrackPoint(t, lat, lon, 10.0, 0.0))
        t += draw(st.floats(min_value=1.0, max_value=600.0))
        lat = min(85.0, max(-85.0, lat + draw(
            st.floats(min_value=-0.02, max_value=0.02)
        )))
        lon = min(179.0, max(-179.0, lon + draw(
            st.floats(min_value=-0.02, max_value=0.02)
        )))
    return Trajectory(1, points)


class TestCompressionProperties:
    @given(trajectories(), st.floats(min_value=10.0, max_value=5000.0))
    @settings(max_examples=60, deadline=None)
    def test_squish_error_bound_holds(self, trajectory, bound):
        synopsis = squish_e(trajectory, bound)
        assert max_sed_error_m(trajectory, synopsis) <= bound * 1.02

    @given(trajectories(), st.floats(min_value=10.0, max_value=5000.0))
    @settings(max_examples=60, deadline=None)
    def test_synopsis_never_longer(self, trajectory, tolerance):
        for algo in (douglas_peucker, squish_e):
            synopsis = algo(trajectory, tolerance)
            assert len(synopsis) <= len(trajectory)
            assert 0.0 <= compression_ratio(trajectory, synopsis) < 1.0

    @given(trajectories())
    @settings(max_examples=40, deadline=None)
    def test_monotone_tolerance(self, trajectory):
        tight = squish_e(trajectory, 50.0)
        loose = squish_e(trajectory, 500.0)
        assert len(loose) <= len(tight)


class TestWindowProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10_000.0),
            min_size=1, max_size=200,
        ),
        st.floats(min_value=1.0, max_value=1000.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_tumbling_partition(self, times, size):
        """Tumbling windows partition the input: every record lands in
        exactly one window, and windows do not overlap."""
        times = sorted(times)
        stream = Stream(Record(t, "k", i) for i, t in enumerate(times))
        windows = [r.value for r in tumbling_windows(stream, size)]
        seen = [rec.value for w in windows for rec in w.records]
        assert sorted(seen) == list(range(len(times)))
        for w in windows:
            for rec in w.records:
                assert w.t_start <= rec.t < w.t_end
        spans = [(w.t_start, w.t_end) for w in windows]
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2


masses_strategy = st.lists(
    st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=4
)


@st.composite
def mass_functions(draw):
    frame = frozenset({"a", "b", "c"})
    subsets = [
        frozenset({"a"}), frozenset({"b"}), frozenset({"c"}),
        frozenset({"a", "b"}), frozenset({"b", "c"}), frame,
    ]
    chosen = draw(
        st.lists(st.sampled_from(subsets), min_size=1, max_size=4, unique=True)
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=len(chosen), max_size=len(chosen),
        )
    )
    total = sum(weights)
    return MassFunction(
        {s: w / total for s, w in zip(chosen, weights)}, frame
    )


class TestEvidenceProperties:
    @given(mass_functions())
    @settings(max_examples=100)
    def test_belief_below_plausibility(self, m):
        for subset in [{"a"}, {"b"}, {"a", "c"}, {"a", "b", "c"}]:
            assert m.belief(subset) <= m.plausibility(subset) + 1e-9

    @given(mass_functions())
    @settings(max_examples=100)
    def test_pignistic_is_distribution(self, m):
        bet = m.pignistic()
        assert math.isclose(sum(bet.values()), 1.0, abs_tol=1e-9)
        assert all(v >= 0 for v in bet.values())

    @given(mass_functions(), mass_functions())
    @settings(max_examples=100)
    def test_combinations_normalised(self, a, b):
        if a.conflict_with(b) < 0.999:
            d = combine_dempster(a, b)
            assert math.isclose(sum(d.masses.values()), 1.0, abs_tol=1e-9)
        y = combine_yager(a, b)
        assert math.isclose(sum(y.masses.values()), 1.0, abs_tol=1e-9)

    @given(mass_functions(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_discount_normalised_and_weakening(self, m, reliability):
        d = discount(m, reliability)
        assert math.isclose(sum(d.masses.values()), 1.0, abs_tol=1e-9)
        for subset in [{"a"}, {"b"}, {"c"}]:
            assert d.belief(subset) <= m.belief(subset) + 1e-9


class TestProbabilisticProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=20)
    )
    @settings(max_examples=100)
    def test_noisy_or_bounds(self, probabilities):
        r = ProbabilisticRelation()
        for i, p in enumerate(probabilities):
            r.add(i, p)
        p_any = r.probability_exists(lambda v: True)
        assert 0.0 <= p_any <= 1.0
        if probabilities:
            assert p_any >= max(probabilities) - 1e-9
        assert r.expected_count() >= p_any - 1e-9  # E[N] >= P(N >= 1)


class TestIndexScanEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-60.0, max_value=60.0),
                st.floats(min_value=-170.0, max_value=170.0),
                st.floats(min_value=0.0, max_value=86_400.0),
            ),
            max_size=200,
        ),
        st.floats(min_value=-60.0, max_value=50.0),
        st.floats(min_value=-170.0, max_value=160.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_range_query_equals_filter(self, points, lat_lo, lon_lo):
        index = GridIndex(cell_deg=1.0, time_bucket_s=3600.0)
        indexed = [
            IndexedPoint(i, t, lat, lon)
            for i, (lat, lon, t) in enumerate(points)
        ]
        index.insert_many(indexed)
        box = BoundingBox(lat_lo, lat_lo + 10.0, lon_lo, lon_lo + 10.0)
        t0, t1 = 10_000.0, 60_000.0
        expected = {
            p.mmsi for p in indexed
            if box.contains(p.lat, p.lon) and t0 <= p.t <= t1
        }
        got = {p.mmsi for p in index.range_query(box, t0, t1)}
        assert got == expected


class TestPossibilityProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=0.05, max_value=1.0),
            min_size=1, max_size=4,
        )
    )
    @settings(max_examples=100)
    def test_necessity_below_possibility(self, degrees):
        pd = PossibilityDistribution(degrees)
        for subset in [{"a"}, {"b", "c"}, set(degrees)]:
            assert pd.necessity(subset) <= pd.possibility(subset) + 1e-9

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.floats(min_value=0.05, max_value=1.0),
            min_size=1, max_size=3,
        )
    )
    @settings(max_examples=100)
    def test_normalised(self, degrees):
        pd = PossibilityDistribution(degrees)
        assert math.isclose(max(pd.degrees.values()), 1.0, abs_tol=1e-12)
