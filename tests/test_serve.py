"""The serve gateway: WS framing, state folding, HTTP/WS end to end."""

import json
import socket
import struct
import threading
import urllib.request

import pytest

from repro.core.stages import BackpressureMetrics, PipelineIncrement
from repro.events.base import Event, EventKind
from repro.serve import GatewayState, MonitorGateway
from repro.serve import ws as wsproto
from repro.sinks import SubscriptionHub
from repro.trajectory.points import TrackPoint
from repro.visual.overview import MonitoringAlarm

WAIT = 5.0


def increment(tag=0, positions=None, events=(), alarms=()):
    return PipelineIncrement(
        t_watermark=1000.0 + tag,
        n_observations=1,
        n_records=1,
        new_events=list(events),
        new_complex_events=[],
        new_alarms=list(alarms),
        updated_forecasts={},
        backpressure=BackpressureMetrics(
            feed_latency_s=0.0, records_deferred=0, queue_depths={},
        ),
        updated_positions=dict(positions or {}),
    )


def fix(t=1000.0, lat=48.0, lon=-5.0, sog=10.0):
    return TrackPoint(t=t, lat=lat, lon=lon, sog_knots=sog, cog_deg=90.0)


def event(kind=EventKind.GAP, mmsis=(7,), lat=48.0, lon=-5.0):
    return Event(
        kind=kind, t_start=1000.0, t_end=1060.0, mmsis=tuple(mmsis),
        lat=lat, lon=lon, confidence=0.9, details={},
    )


class TestWsFraming:
    def test_accept_key_rfc6455_vector(self):
        # The worked example from RFC 6455 §1.3.
        assert wsproto.accept_key("dGhlIHNhbXBsZSBub25jZQ==") == (
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    @pytest.mark.parametrize("size", [0, 5, 125, 126, 65535, 65536])
    def test_server_frame_lengths(self, size):
        frame = wsproto.encode_frame(b"x" * size, wsproto.OP_BINARY)
        assert frame[0] == 0x80 | wsproto.OP_BINARY  # FIN + opcode
        assert frame.endswith(b"x" * size)
        declared = frame[1] & 0x7F
        if size < 126:
            assert declared == size
        elif size < (1 << 16):
            assert declared == 126
            assert struct.unpack(">H", frame[2:4]) == (size,)
        else:
            assert declared == 127
            assert struct.unpack(">Q", frame[2:10]) == (size,)

    @staticmethod
    def _masked(payload: bytes, opcode=wsproto.OP_TEXT) -> bytes:
        """A client-side frame (clients must mask; RFC 6455 §5.1)."""
        mask = b"\x12\x34\x56\x78"
        head = bytes([0x80 | opcode, 0x80 | len(payload)])
        body = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        return head + mask + body

    def test_read_frame_unmasks_client_payload(self):
        import io

        opcode, payload = wsproto.read_frame(
            io.BytesIO(self._masked(b"hello stream"))
        )
        assert opcode == wsproto.OP_TEXT
        assert payload == b"hello stream"

    def test_read_frame_rejects_unmasked(self):
        import io

        with pytest.raises(wsproto.WebSocketError):
            wsproto.read_frame(io.BytesIO(wsproto.encode_frame("nope")))

    def test_close_frame_carries_code(self):
        frame = wsproto.close_frame(1001, "bye")
        assert frame[0] == 0x80 | wsproto.OP_CLOSE
        assert struct.unpack(">H", frame[2:4]) == (1001,)
        assert frame.endswith(b"bye")


class TestGatewayState:
    def test_update_folds_positions_tracks_heat(self):
        state = GatewayState(track_points=4)
        for tick in range(6):
            state.update(increment(
                tag=tick,
                positions={7: fix(t=1000.0 + tick, lat=48.0 + 0.001 * tick)},
            ))
        health = state.health()
        assert health["n_increments"] == 6
        assert health["watermark"] == 1005.0
        assert health["n_vessels"] == 1
        (row,) = state.positions()
        assert row["mmsi"] == 7 and row["t"] == 1005.0
        track = state.track(7)
        assert len(track) == 4  # bounded history
        assert track[-1]["t"] == 1005.0
        heat = state.heatmap()
        assert sum(heat["cells"].values()) == 6
        assert all(isinstance(k, str) for k in heat["cells"])

    def test_bbox_filter_and_events_alerts(self):
        state = GatewayState()
        state.update(increment(
            positions={1: fix(lat=48.0, lon=-5.0),
                       2: fix(lat=30.0, lon=10.0)},
            events=[event(), event(kind=EventKind.LOITERING)],
            alarms=[MonitoringAlarm(t=1000.0, mmsi=1, lat=48.0, lon=-5.0,
                                    score=0.9, explanation="test")],
        ))
        from repro.geo.region import BoundingBox

        rows = state.positions(bbox=BoundingBox(45.0, 50.0, -10.0, 0.0))
        assert [r["mmsi"] for r in rows] == [1]
        assert len(state.events()) == 2
        assert [e["kind"] for e in state.events(kind="gap")] == ["gap"]
        assert len(state.alerts()) == 1

    def test_ws_client_queue_drops_oldest(self):
        state = GatewayState(ws_queue=2)
        client = state.register_client()
        for tick in range(5):
            state.update(increment(tag=tick))
        assert client.n_dropped == 3
        first = json.loads(state.next_frame(client, timeout_s=0.1))
        assert first["t_watermark"] == 1003.0  # freshest picture wins
        state.close()
        assert not state.is_open(client)
        assert state.next_frame(client, timeout_s=0.1) is not None  # drains
        assert state.next_frame(client, timeout_s=0.1) is None


class TestGatewayHttp:
    @pytest.fixture()
    def served(self):
        hub = SubscriptionHub()
        gateway = MonitorGateway(port=0, allow_shutdown=True)
        gateway.attach(hub)
        gateway.start()
        yield hub, gateway
        gateway.close()
        hub.close()

    def _get(self, gateway, path):
        with urllib.request.urlopen(gateway.url + path, timeout=WAIT) as r:
            return r.status, json.loads(r.read())

    def _feed(self, hub, gateway, n=3):
        for tick in range(n):
            hub.dispatch(increment(
                tag=tick,
                positions={7: fix(t=1000.0 + tick)},
                events=[event()] if tick == 0 else (),
            ))
        deadline = threading.Event()
        for __ in range(100):
            if gateway.state.health()["n_increments"] >= n:
                return
            deadline.wait(0.05)
        raise AssertionError("gateway never saw the increments")

    def test_endpoints_end_to_end(self, served):
        hub, gateway = served
        self._feed(hub, gateway)
        status, health = self._get(gateway, "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["n_increments"] == 3
        __, positions = self._get(gateway, "/positions?limit=10")
        assert [r["mmsi"] for r in positions["positions"]] == [7]
        __, track = self._get(gateway, "/tracks/7")
        assert len(track["points"]) == 3
        __, events = self._get(gateway, "/events?kind=gap")
        assert len(events["events"]) == 1
        __, heat = self._get(gateway, "/heatmap")
        assert sum(heat["cells"].values()) == 3
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(gateway, "/nonsense")
        assert err.value.code == 404

    def test_shutdown_endpoint(self, served):
        __, gateway = served
        req = urllib.request.Request(
            gateway.url + "/shutdown", data=b"", method="POST"
        )
        with urllib.request.urlopen(req, timeout=WAIT) as r:
            assert r.status == 200
        assert gateway.shutdown_requested.wait(WAIT)

    def test_shutdown_forbidden_unless_enabled(self):
        gateway = MonitorGateway(port=0)  # allow_shutdown defaults off
        gateway.start()
        try:
            req = urllib.request.Request(
                gateway.url + "/shutdown", data=b"", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=WAIT)
            assert err.value.code == 403
            assert not gateway.shutdown_requested.is_set()
        finally:
            gateway.close()

    def test_websocket_stream_delivers_increments(self, served):
        hub, gateway = served
        sock = socket.create_connection(
            ("127.0.0.1", gateway.port), timeout=WAIT
        )
        try:
            key = "dGhlIHNhbXBsZSBub25jZQ=="
            sock.sendall(
                f"GET /stream HTTP/1.1\r\n"
                f"Host: 127.0.0.1:{gateway.port}\r\n"
                f"Upgrade: websocket\r\nConnection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                f"Sec-WebSocket-Version: 13\r\n\r\n".encode("ascii")
            )
            rfile = sock.makefile("rb")
            status_line = rfile.readline()
            assert b"101" in status_line
            headers = {}
            while True:
                line = rfile.readline().strip()
                if not line:
                    break
                name, __, value = line.decode().partition(":")
                headers[name.lower()] = value.strip()
            assert headers["sec-websocket-accept"] == wsproto.accept_key(key)

            # The handler registers the client after the 101; don't
            # broadcast until it is listed or the frame races past it.
            gate = threading.Event()
            for __ in range(100):
                if gateway.state.health()["ws_clients"] >= 1:
                    break
                gate.wait(0.05)
            assert gateway.state.health()["ws_clients"] == 1

            self._feed(hub, gateway, n=1)
            b0 = rfile.read(1)[0]
            assert b0 == 0x80 | wsproto.OP_TEXT
            length = rfile.read(1)[0] & 0x7F
            if length == 126:
                (length,) = struct.unpack(">H", rfile.read(2))
            payload = rfile.read(length)
            frame = json.loads(payload)
            assert frame["t_watermark"] == 1000.0
            assert frame["positions"][0]["mmsi"] == 7
        finally:
            sock.close()
