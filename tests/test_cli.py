"""Tests for the command-line interface."""

import io
import sys

import pytest

from repro.cli import main


def run_cli(argv, stdin_text=None, capsys=None):
    if stdin_text is not None:
        old_stdin = sys.stdin
        sys.stdin = io.StringIO(stdin_text)
        try:
            code = main(argv)
        finally:
            sys.stdin = old_stdin
    else:
        code = main(argv)
    out, err = capsys.readouterr()
    return code, out, err


class TestSimulate:
    def test_stdout_sentences(self, capsys):
        code, out, err = run_cli(
            ["simulate", "--vessels", "3", "--hours", "0.3", "--seed", "2"],
            capsys=capsys,
        )
        assert code == 0
        lines = [l for l in out.splitlines() if l]
        assert lines
        assert all(line.startswith("!AIVDM") for line in lines)
        assert "sentences" in err

    def test_to_file(self, tmp_path, capsys):
        target = tmp_path / "feed.nmea"
        code, __, __ = run_cli(
            ["simulate", "--vessels", "2", "--hours", "0.2",
             "--output", str(target)],
            capsys=capsys,
        )
        assert code == 0
        assert target.read_text().startswith("!AIVDM")


class TestPipeline:
    def test_runs_and_reports(self, capsys):
        code, out, __ = run_cli(
            ["pipeline", "--vessels", "8", "--hours", "0.5", "--seed", "3"],
            capsys=capsys,
        )
        assert code == 0
        assert "decode" in out
        assert "synopsis compression" in out
        assert "alerts" in out


class TestPipelineSources:
    def tagged_feed(self, tmp_path, capsys) -> str:
        target = tmp_path / "feed.nmea"
        code, __, err = run_cli(
            ["simulate", "--vessels", "6", "--hours", "0.5", "--seed", "9",
             "--tagged", "--output", str(target)],
            capsys=capsys,
        )
        assert code == 0
        assert "sentences" in err
        return str(target)

    def test_simulate_tagged_writes_tag_blocks(self, tmp_path, capsys):
        path = self.tagged_feed(tmp_path, capsys)
        first = open(path).readline()
        assert first.startswith("\\c:")
        assert "\\!AIVDM" in first

    def test_nmea_file_end_to_end(self, tmp_path, capsys):
        """simulate --tagged → pipeline --live --nmea-file: the full
        file path from receiver log to tick report."""
        path = self.tagged_feed(tmp_path, capsys)
        code, out, err = run_cli(
            ["pipeline", "--live", "--nmea-file", path, "--tick", "300"],
            capsys=capsys,
        )
        assert code == 0
        assert "watermark=" in out      # per-tick lines
        assert "records from file:" in err  # monitor report on stderr

    def test_nmea_file_json_stream(self, tmp_path, capsys):
        import json

        path = self.tagged_feed(tmp_path, capsys)
        code, out, err = run_cli(
            ["pipeline", "--live", "--nmea-file", path, "--json"],
            capsys=capsys,
        )
        assert code == 0
        lines = [json.loads(line) for line in out.splitlines() if line]
        assert lines
        assert all("backpressure" in line for line in lines)
        assert sum(line["n_records"] for line in lines) > 0

    def test_replay_json_stream(self, capsys):
        import json

        code, out, __ = run_cli(
            ["pipeline", "--live", "--json", "--vessels", "5",
             "--hours", "0.4", "--seed", "3"],
            capsys=capsys,
        )
        assert code == 0
        assert all(json.loads(line) for line in out.splitlines() if line)

    def test_source_requires_live(self, tmp_path, capsys):
        code, __, err = run_cli(
            ["pipeline", "--nmea-file", str(tmp_path / "x.nmea")],
            capsys=capsys,
        )
        assert code == 2
        assert "--live" in err

    def test_bad_tcp_endpoint_rejected(self, capsys):
        code, __, err = run_cli(
            ["pipeline", "--live", "--nmea-tcp", "nonsense"],
            capsys=capsys,
        )
        assert code == 2
        assert "HOST:PORT" in err


class TestDecode:
    def test_roundtrip_via_stdin(self, capsys):
        from repro.ais import PositionReport, encode_sentences

        sentences = "\n".join(
            encode_sentences(
                PositionReport(mmsi=227000001, lat=48.0, lon=-5.0,
                               sog_knots=9.0, cog_deg=45.0)
            )
        )
        code, out, err = run_cli(
            ["decode", "-"], stdin_text=sentences + "\n", capsys=capsys
        )
        assert code == 0
        assert "PositionReport" in out
        assert "stats" in err

    def test_decode_file(self, tmp_path, capsys):
        from repro.ais import PositionReport, encode_sentences

        feed = tmp_path / "in.nmea"
        feed.write_text(
            "\n".join(
                encode_sentences(
                    PositionReport(mmsi=227000002, lat=1.0, lon=2.0)
                )
            )
            + "\ngarbage\n"
        )
        code, out, __ = run_cli(["decode", str(feed)], capsys=capsys)
        assert code == 0
        assert "227000002" in out


class TestParser:
    def test_unknown_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main([])
