"""The pooled dispatch plane: hub re-entrancy, pooled-vs-dedicated
delivery-book parity, indexed-vs-scan equivalence, thread independence."""

import threading

import pytest

from repro.core.stages import BackpressureMetrics, PipelineIncrement
from repro.events.base import Event, EventKind
from repro.geo import CircleRegion
from repro.sinks import AsyncDispatcher, SubscriptionHub
from repro.sinks.dispatch import DispatchPool, default_pool_workers
from repro.sinks.subscription import Subscription

WAIT = 5.0


def event(kind=EventKind.GAP, t=0.0, mmsis=(1,), lat=48.0, lon=-5.0):
    return Event(
        kind=kind, t_start=t, t_end=t + 60.0, mmsis=tuple(mmsis),
        lat=lat, lon=lon, confidence=0.9, details={},
    )


def increment(events=(), tag=0):
    return PipelineIncrement(
        t_watermark=1000.0 + tag,
        n_observations=1,
        n_records=1,
        new_events=list(events),
        new_complex_events=[],
        new_alarms=[],
        updated_forecasts={},
        backpressure=BackpressureMetrics(
            feed_latency_s=0.0, records_deferred=0, queue_depths={},
        ),
    )


class _GatedSink:
    """A sink that parks its first delivery until released, so tests can
    fill queues deterministically while a worker is mid-callback."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.got = []
        self._first = True

    def __call__(self, inc):
        if self._first:
            self._first = False
            self.started.set()
            assert self.release.wait(WAIT)
        self.got.append(inc.t_watermark)


class TestPoolContract:
    def test_thread_count_independent_of_subscribers(self):
        before = threading.active_count()
        hub = SubscriptionHub()
        subs = [
            hub.subscribe(on_increment=lambda inc: None,
                          async_dispatch=True)
            for __ in range(500)
        ]
        added = threading.active_count() - before
        assert added <= default_pool_workers()
        # The PR 5 liveness surface still answers through the lane.
        assert all(s.dispatcher._worker.is_alive() for s in subs)
        hub.close()

    def test_books_exact_after_drain_many_lanes(self):
        hub = SubscriptionHub(dispatch_workers=2)
        got = {i: [] for i in range(20)}
        for i in range(20):
            hub.subscribe(on_increment=got[i].append, async_dispatch=True)
        for tick in range(10):
            hub.dispatch(increment(tag=tick))
        hub.close()
        for sub in hub.registry:
            lane = sub.dispatcher
            assert lane.n_submitted == 10
            assert lane.n_submitted == lane.n_delivered + lane.n_dropped
            assert not lane.drain_timed_out
        assert all(len(v) == 10 for v in got.values())

    def test_per_lane_fifo_under_shared_workers(self):
        hub = SubscriptionHub(dispatch_workers=4)
        got = []
        hub.subscribe(on_increment=got.append, async_dispatch=True)
        ticks = 200
        for tick in range(ticks):
            hub.dispatch(increment(tag=tick))
        hub.close()
        assert [inc.t_watermark for inc in got] == [
            1000.0 + tick for tick in range(ticks)
        ]

    def test_callback_error_kills_lane_not_pool(self):
        hub = SubscriptionHub(dispatch_workers=1)
        boom = hub.subscribe(
            on_increment=lambda inc: 1 / 0, async_dispatch=True
        )
        got = []
        ok = hub.subscribe(on_increment=got.append, async_dispatch=True)
        for tick in range(5):
            hub.dispatch(increment(tag=tick))
        hub.close()
        assert isinstance(boom.dispatcher.error, ZeroDivisionError)
        assert not boom.active
        assert boom.dispatcher.n_submitted == (
            boom.dispatcher.n_delivered + boom.dispatcher.n_dropped
        )
        # The healthy lane rode the same (sole) worker to completion.
        assert ok.dispatcher.n_delivered >= 1
        assert len(got) == ok.dispatcher.n_delivered

    def test_pool_refuses_lanes_after_shutdown(self):
        pool = DispatchPool(workers=1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.lane(Subscription(on_increment=lambda inc: None))


class TestHubReentrancy:
    def test_subscribe_from_pool_worker_callback(self):
        """A callback running on a pool worker subscribes mid-dispatch:
        no deadlock, and the newcomer misses the in-flight increment."""
        hub = SubscriptionHub(dispatch_workers=1)
        late = []
        done = threading.Event()

        def joiner(inc):
            if not late:
                hub.subscribe(on_increment=late.append)
            done.set()

        hub.subscribe(on_increment=joiner, async_dispatch=True)
        hub.dispatch(increment(tag=0))
        assert done.wait(WAIT)
        assert late == []  # missed the in-flight increment
        hub.dispatch(increment(tag=1))
        hub.close()
        assert [inc.t_watermark for inc in late] == [1001.0]

    def test_close_other_from_pool_worker_callback(self):
        """A pool-worker callback closing another async subscription
        must not deadlock (close is signal-only from a worker)."""
        hub = SubscriptionHub(dispatch_workers=2)
        victim_got = []
        victim = hub.subscribe(
            on_increment=victim_got.append, async_dispatch=True
        )
        done = threading.Event()

        def closer(inc):
            victim.close()
            done.set()

        hub.subscribe(on_increment=closer, async_dispatch=True)
        hub.dispatch(increment(tag=0))
        assert done.wait(WAIT)
        hub.dispatch(increment(tag=1))
        hub.close()
        assert not victim.active
        lane = victim.dispatcher
        assert lane.n_submitted == lane.n_delivered + lane.n_dropped

    def test_hub_close_from_pool_worker_callback(self):
        """A callback tearing the whole hub down from a worker returns
        without self-joining and the process stays live."""
        hub = SubscriptionHub(dispatch_workers=1)
        done = threading.Event()

        def teardown(inc):
            hub.close()
            done.set()

        hub.subscribe(on_increment=teardown, async_dispatch=True)
        hub.dispatch(increment(tag=0))
        assert done.wait(WAIT)
        hub.close()  # idempotent from the pipeline thread


class TestPooledVsDedicatedParity:
    """The pool must keep the PR 5 dedicated-thread books exactly."""

    def _drive(self, make_dispatcher, overflow):
        """Submit a deterministic overflow pattern through a dispatcher
        factory and return the final books."""
        sink = _GatedSink()
        subscription = Subscription(on_increment=sink)
        dispatcher = make_dispatcher(subscription)
        subscription.dispatcher = dispatcher

        subscription.deliver(increment(tag=0))
        assert sink.started.wait(WAIT)  # worker parked in the callback
        # Queue capacity is 2: tags 1..4 force two deterministic drops
        # under drop_oldest (1 and 2), or all deliver under block.
        extra = 4 if overflow == "drop_oldest" else 2
        for tag in range(1, 1 + extra):
            subscription.deliver(increment(tag=tag))
        sink.release.set()
        assert dispatcher.close(drain=True, timeout_s=WAIT)
        return {
            "n_submitted": dispatcher.n_submitted,
            "n_delivered": dispatcher.n_delivered,
            "n_dropped": dispatcher.n_dropped,
            "queue_high_water": dispatcher.queue_high_water,
            "delivered_tags": sink.got,
            "dropped_count": subscription.delivered.get(
                "dropped_increments", 0
            ),
            "drain_timed_out": dispatcher.drain_timed_out,
        }

    @pytest.mark.parametrize("overflow", ["drop_oldest", "block"])
    def test_books_match_dedicated_dispatcher(self, overflow):
        pools = []

        def pooled(subscription):
            pool = DispatchPool(workers=1)
            pools.append(pool)
            return pool.lane(subscription, max_queue=2, overflow=overflow)

        def dedicated(subscription):
            return AsyncDispatcher(
                subscription, max_queue=2, overflow=overflow
            )

        pooled_books = self._drive(pooled, overflow)
        dedicated_books = self._drive(dedicated, overflow)
        assert pooled_books == dedicated_books
        assert pooled_books["n_submitted"] == (
            pooled_books["n_delivered"] + pooled_books["n_dropped"]
        )
        if overflow == "drop_oldest":
            # Oldest queued (tags 1, 2) lost; in-flight 0 and fresh 3, 4
            # delivered in order.
            assert pooled_books["delivered_tags"] == [1000.0, 1003.0,
                                                      1004.0]
            assert pooled_books["n_dropped"] == 2
        else:
            assert pooled_books["delivered_tags"] == [1000.0, 1001.0,
                                                      1002.0]
            assert pooled_books["n_dropped"] == 0
        for pool in pools:
            pool.shutdown()

    def test_block_policy_stalls_submitter_until_space(self):
        sink = _GatedSink()
        subscription = Subscription(on_increment=sink)
        pool = DispatchPool(workers=1)
        lane = pool.lane(subscription, max_queue=1, overflow="block")
        subscription.dispatcher = lane

        subscription.deliver(increment(tag=0))
        assert sink.started.wait(WAIT)
        subscription.deliver(increment(tag=1))  # fills the queue

        blocked_done = threading.Event()
        submitter = threading.Thread(
            target=lambda: (subscription.deliver(increment(tag=2)),
                            blocked_done.set()),
            daemon=True,
        )
        submitter.start()
        assert not blocked_done.wait(0.2)  # genuinely backpressured
        sink.release.set()
        assert blocked_done.wait(WAIT)
        submitter.join(WAIT)
        assert pool.shutdown(timeout_s=WAIT)
        assert sink.got == [1000.0, 1001.0, 1002.0]
        assert lane.n_submitted == 3 == lane.n_delivered
        assert lane.n_dropped == 0


class TestIndexedEquivalence:
    def _increments(self):
        return [
            increment(events=[
                event(mmsis=(7,), lat=48.0, lon=-5.0),
                event(kind=EventKind.LOITERING, mmsis=(9,),
                      lat=51.0, lon=3.0),
            ], tag=0),
            increment(events=[
                event(kind=EventKind.SPEED_ANOMALY, mmsis=(11,),
                      lat=43.0, lon=6.0),
            ], tag=1),
            increment(tag=2),
        ]

    def _subscribe_mix(self, hub):
        sinks = {
            "mmsi": [], "region": [], "kind": [], "all": [], "inc": [],
        }
        hub.subscribe(on_event=sinks["mmsi"].append, mmsis=[7, 11])
        hub.subscribe(
            on_event=sinks["region"].append,
            region=CircleRegion(48.0, -5.0, 50_000.0),
        )
        hub.subscribe(on_event=sinks["kind"].append,
                      kinds=[EventKind.LOITERING])
        hub.subscribe(on_event=sinks["all"].append)
        hub.subscribe(on_increment=sinks["inc"].append)
        return sinks

    def test_indexed_hub_delivers_exactly_the_scan_set(self):
        scan_hub = SubscriptionHub(indexed=False)
        indexed_hub = SubscriptionHub(indexed=True)
        scan_sinks = self._subscribe_mix(scan_hub)
        indexed_sinks = self._subscribe_mix(indexed_hub)
        for inc in self._increments():
            scan_hub.dispatch(inc)
        for inc in self._increments():
            indexed_hub.dispatch(inc)
        for key in scan_sinks:
            assert len(indexed_sinks[key]) == len(scan_sinks[key]), key
        # Spot the actual routing: per-vessel watch saw both its ships.
        assert sorted(e.mmsis[0] for e in indexed_sinks["mmsi"]) == [7, 11]
        assert [e.mmsis[0] for e in indexed_sinks["region"]] == [7]
        assert [e.kind for e in indexed_sinks["kind"]] == [
            EventKind.LOITERING
        ]
        assert len(indexed_sinks["all"]) == 3
        assert len(indexed_sinks["inc"]) == 3

    def test_candidate_gating_keeps_async_books_reconciled(self):
        """A filtered async subscription's n_submitted counts candidate
        increments only — and still reconciles exactly after close."""
        hub = SubscriptionHub()
        got = []
        sub = hub.subscribe(
            on_event=got.append, mmsis=[7], async_dispatch=True
        )
        for inc in self._increments():
            hub.dispatch(inc)
        hub.close()
        lane = sub.dispatcher
        # Only the first increment carried mmsi 7: one candidate tick.
        assert lane.n_submitted == 1
        assert lane.n_submitted == lane.n_delivered + lane.n_dropped
        assert [e.mmsis[0] for e in got] == [7]
