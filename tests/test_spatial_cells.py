"""Tests for the shared cell geometry, geohash interop and the factory."""

import math
import random

import pytest

from repro.geo import haversine_m, normalize_lon
from repro.geo.geohash import geohash_decode
from repro.spatial import (
    CellGrid,
    GridIndex,
    STRTree,
    build_index,
    cell_occupancy_skew,
    cell_to_geohash,
    geohash_counts,
    geohash_precision_for,
    geohash_to_cell,
)


class TestCellGrid:
    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            CellGrid(0.0)

    def test_key_wraps_longitude_representations(self):
        grid = CellGrid(20_000.0)
        assert grid.key(10.0, 180.0) == grid.key(10.0, -180.0)
        assert grid.key(10.0, 190.0) == grid.key(10.0, -170.0)

    def test_cells_keep_metric_width_at_high_latitude(self):
        """At 75°N a fixed 0.2° cell is ~5.8 km wide; latitude-aware
        cells keep ~cell_size width, so nearby points stay together."""
        grid = CellGrid(0.2 * 111_194.9)  # ~22 km
        c_lat, c_lon = grid.center(grid.key(75.1, 0.0))
        half = 4_000.0 / (111_194.9 * math.cos(math.radians(c_lat)))
        # 8 km of longitude at 75°N spans more than 0.2°, so a fixed
        # 0.2° grid could never hold both points in one cell.
        assert 2 * half > 0.2
        assert grid.key(c_lat, c_lon - half) == grid.key(c_lat, c_lon + half)

    def test_pole_band_single_cell(self):
        grid = CellGrid(500.0)
        assert grid.key(89.9999, 0.0)[1] == grid.key(89.9999, 179.0)[1]

    def test_center_and_bounds_consistent(self):
        grid = CellGrid(50_000.0)
        for lat, lon in [(48.2, -5.3), (75.0, 179.99), (-62.0, -180.0), (0.0, 0.0)]:
            key = grid.key(lat, lon)
            c_lat, c_lon = grid.center(key)
            assert grid.key(c_lat, c_lon) == key
            lat0, lat1, __, __ = grid.bounds(key)
            assert lat0 <= lat <= lat1 or lat == 90.0

    def test_keys_array_matches_scalar(self):
        grid = CellGrid(7_500.0)
        rng = random.Random(3)
        lats = [rng.uniform(-90, 90) for __ in range(300)]
        lons = [normalize_lon(rng.uniform(-360, 360)) for __ in range(300)]
        vector = grid.keys_array(lats, lons)
        for (band, ix), lat, lon in zip(vector, lats, lons):
            assert (int(band), int(ix)) == grid.key(lat, lon)


class TestGeohashInterop:
    def test_precision_tracks_cell_size(self):
        # Finer cells need longer geohashes.
        assert geohash_precision_for(500.0) > geohash_precision_for(100_000.0)
        with pytest.raises(ValueError):
            geohash_precision_for(0.0)

    def test_cell_name_round_trips(self):
        for cell_size in (500.0, 20_000.0, 250_000.0):
            grid = CellGrid(cell_size)
            rng = random.Random(int(cell_size))
            for __ in range(50):
                key = grid.key(rng.uniform(-89, 89), rng.uniform(-180, 180))
                name = cell_to_geohash(grid, key)
                assert geohash_to_cell(grid, name) == key

    def test_name_decodes_near_cell_center(self):
        grid = CellGrid(20_000.0)
        key = grid.key(48.0, -5.0)
        lat, lon, __, __ = geohash_decode(cell_to_geohash(grid, key))
        c_lat, c_lon = grid.center(key)
        assert haversine_m(lat, lon, c_lat, c_lon) < grid.cell_size_m

    def test_geohash_counts_merge(self):
        grid = CellGrid(20_000.0)
        a = grid.key(48.0, -5.0)
        b = grid.key(10.0, 120.0)
        named = geohash_counts(grid, [(a, 3), (b, 4), (a, 1)])
        assert sum(named.values()) == 8
        assert len(named) == 2


class TestFactory:
    def scatter(self, rng, n, lat_c, lon_c, spread):
        return [
            (i, lat_c + rng.uniform(-spread, spread), lon_c + rng.uniform(-spread, spread))
            for i in range(n)
        ]

    def clustered(self, rng, n, hubs=8, sigma=0.01):
        points = []
        for i in range(n):
            hub = i % hubs
            points.append(
                (
                    i,
                    40.0 + hub * 1.0 + rng.gauss(0.0, sigma),
                    normalize_lon(170.0 + hub * 2.0 + rng.gauss(0.0, sigma)),
                )
            )
        return points

    def test_skew_statistic_separates_shapes(self):
        rng = random.Random(11)
        uniform = self.scatter(rng, 2000, 45.0, 0.0, 4.0)
        clustered = self.clustered(rng, 2000)
        assert cell_occupancy_skew(uniform, 20_000.0) < 8.0
        assert cell_occupancy_skew(clustered, 20_000.0) > 50.0
        assert cell_occupancy_skew([], 20_000.0) == 0.0

    def test_auto_selects_by_skew(self):
        rng = random.Random(12)
        assert isinstance(
            build_index(self.scatter(rng, 2000, 45.0, 0.0, 4.0), 20_000.0),
            GridIndex,
        )
        assert isinstance(
            build_index(self.clustered(rng, 2000), 20_000.0), STRTree
        )
        # Small populations always take the grid (constant factors win).
        assert isinstance(
            build_index(self.clustered(rng, 100), 20_000.0), GridIndex
        )

    def test_backends_agree_on_clustered_fleet(self):
        rng = random.Random(13)
        points = self.clustered(rng, 600, hubs=4, sigma=0.02)
        grid = build_index(points, 5_000.0, hint="grid")
        tree = build_index(points, 5_000.0, hint="rtree")
        got_grid = {
            frozenset((a, b)) for a, b, __ in grid.all_pairs_within(5_000.0)
        }
        got_tree = {
            frozenset((a, b)) for a, b, __ in tree.all_pairs_within(5_000.0)
        }
        assert got_grid == got_tree
