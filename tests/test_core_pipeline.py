"""Integration tests: the full Figure 2 pipeline on scenario feeds."""

import pytest

from repro.core import MaritimePipeline, PipelineConfig
from repro.events import EventKind, match_events
from repro.simulation import regional_scenario


@pytest.fixture(scope="module")
def run():
    return regional_scenario(n_vessels=25, duration_s=3 * 3600.0, seed=17).run()


@pytest.fixture(scope="module")
def result(run):
    return MaritimePipeline().process(run)


class TestStages:
    def test_all_stages_present(self, result):
        names = [s.name for s in result.stages]
        assert names == [
            "decode", "reorder", "reconstruct", "synopses",
            "integrate", "fuse", "detect", "forecast", "overview",
        ]

    def test_fusion_stage_products(self, result):
        assert result.fused is not None
        assert result.fused.identified_tracks
        # The regional scenario has dark ships painted by coastal radar;
        # at least some anonymous radar tracks should exist.
        from repro.events import EventKind

        uncorrelated = result.events_of(EventKind.UNCORRELATED_TRACK)
        assert len(result.fused.anonymous_tracks) >= len(uncorrelated)

    def test_decode_throughput_positive(self, result):
        decode = result.stage("decode")
        assert decode.n_in > 10_000
        assert decode.n_out > 0.9 * decode.n_in

    def test_reorder_restores_event_time(self, result):
        assert result.stage("reorder").n_out > 0

    def test_reconstruction_produces_tracks(self, run, result):
        assert result.trajectories
        mmsis = {tr.mmsi for tr in result.trajectories}
        assert mmsis <= set(run.specs)
        # Most of the fleet should be tracked.
        assert len(mmsis) >= 0.8 * len(run.specs)

    def test_synopses_compress(self, result):
        pipeline = MaritimePipeline()
        ratio = pipeline.mean_compression_ratio(result)
        assert ratio > 0.85  # the paper's 95% is reached on lane traffic

    def test_synopsis_faithful(self, run, result):
        """Synopses must stay within ~3x the threshold of the original."""
        from repro.trajectory.compression import max_sed_error_m

        threshold = PipelineConfig().synopsis_threshold_m
        for original, synopsis in list(
            zip(result.trajectories, result.synopses)
        )[:10]:
            assert max_sed_error_m(original, synopsis) < 5 * threshold

    def test_store_and_cube_populated(self, result):
        assert len(result.store) > 0
        assert result.cube.total == len(result.store)
        assert len(result.triples) > 100

    def test_summary_renders(self, result):
        text = result.summary()
        assert "decode" in text and "forecast" in text


class TestDetection:
    def test_dark_ship_gaps_found(self, run, result):
        gap_events = result.events_of(EventKind.GAP)
        score = match_events(
            gap_events, run.truth_events, "dark",
            time_slack_s=900.0, distance_slack_m=50_000.0,
        )
        assert score.recall >= 0.5

    def test_spoofer_flagged(self, run, result):
        spoof_truth = [e for e in run.truth_events if e.kind == "spoof"]
        assert spoof_truth
        flagged = {
            m for e in result.events_of(EventKind.TELEPORT) for m in e.mmsis
        } | {
            m for e in result.events_of(EventKind.IDENTITY_CLASH)
            for m in e.mmsis
        }
        spoofer_mmsis = {m for e in spoof_truth for m in e.mmsis}
        assert spoofer_mmsis & flagged

    def test_forecasts_for_most_vessels(self, run, result):
        assert len(result.forecasts) >= 0.7 * len(run.specs)
        for predictions in result.forecasts.values():
            horizons = [p.horizon_s for p in predictions]
            assert horizons == sorted(horizons)

    def test_overview_built(self, result):
        assert result.overview is not None
        assert result.overview.n_vessels > 0


class TestConfigKnobs:
    def test_disable_compression(self, run):
        config = PipelineConfig(synopsis_threshold_m=0.0)
        result = MaritimePipeline(config).process(run)
        assert MaritimePipeline(config).mean_compression_ratio(result) == 0.0

    def test_custom_cep_pattern(self, run):
        from repro.events import SequencePattern

        pattern = SequencePattern(
            name="double_gap",
            sequence=(EventKind.GAP, EventKind.GAP),
            window_s=4 * 3600.0,
        )
        pipeline = MaritimePipeline(cep_patterns=[pattern])
        result = pipeline.process(run)
        for complex_event in result.complex_events:
            assert complex_event.details["pattern"] == "double_gap"


class TestConfigValidation:
    def test_default_config_is_valid(self):
        assert PipelineConfig().validate() is not None

    def test_cross_field_horizons_enforced(self):
        from repro.core import ConfigError

        with pytest.raises(ConfigError, match="gap_timeout_s"):
            PipelineConfig(vessel_ttl_s=600.0).validate()
        with pytest.raises(ConfigError, match="collision_max_state_age_s"):
            PipelineConfig(
                vessel_ttl_s=2000.0, collision_max_state_age_s=3000.0
            ).validate()

    def test_all_violations_reported_at_once(self):
        from repro.core import ConfigError

        with pytest.raises(ConfigError) as excinfo:
            PipelineConfig(
                gap_min_s=0.0, cube_cell_deg=-1.0,
                pol_training_fraction=2.0,
            ).validate()
        message = str(excinfo.value)
        for fragment in (
            "gap_min_s", "cube_cell_deg", "pol_training_fraction",
        ):
            assert fragment in message

    def test_pipeline_constructor_validates(self):
        from repro.core import ConfigError

        with pytest.raises(ConfigError):
            MaritimePipeline(PipelineConfig(collision_screen_period_s=0.0))

    def test_replace_returns_validated_copy(self):
        from repro.core import ConfigError

        base = PipelineConfig()
        derived = base.replace(gap_min_s=1200.0)
        assert derived.gap_min_s == 1200.0
        assert base.gap_min_s == 900.0
        with pytest.raises(ConfigError):
            base.replace(vessel_ttl_s=1.0)

    def test_non_numeric_values_reported_not_raised(self):
        """A JSON/CLI profile handing strings in gets a ConfigError
        naming the field, not a bare TypeError mid-validation."""
        from repro.core import ConfigError

        with pytest.raises(ConfigError, match="gap_min_s must be a number"):
            PipelineConfig.from_overrides({"gap_min_s": "900"})
        with pytest.raises(ConfigError, match="vessel_ttl_s must be a number"):
            PipelineConfig(vessel_ttl_s="6h").validate()

    def test_from_overrides_dotted_keys(self):
        from repro.core import ConfigError

        config = PipelineConfig.from_overrides(
            {"reconstruction.gap_timeout_s": 900.0,
             "rendezvous.max_distance_m": 400.0},
            gap_min_s=600.0,
        )
        assert config.reconstruction.gap_timeout_s == 900.0
        assert config.rendezvous.max_distance_m == 400.0
        assert config.gap_min_s == 600.0
        # The default instance is untouched (nested configs rebuilt).
        assert PipelineConfig().reconstruction.gap_timeout_s == 1800.0
        with pytest.raises(ConfigError, match="unknown config field"):
            PipelineConfig.from_overrides({"reconstruction.nope": 1})
        with pytest.raises(ConfigError, match="unknown config field"):
            PipelineConfig.from_overrides(nope=1)

    def test_nested_values_validated_at_construction(self):
        """Invalid dotted overrides fail like top-level ones: validate()
        descends into the nested reconstruction/rendezvous configs."""
        from repro.core import ConfigError

        with pytest.raises(
            ConfigError, match=r"reconstruction\.min_dt_s must be >= 0"
        ):
            PipelineConfig.from_overrides({"reconstruction.min_dt_s": -1.0})
        with pytest.raises(
            ConfigError,
            match=r"reconstruction\.max_consecutive_rejects must be",
        ):
            PipelineConfig.from_overrides(
                {"reconstruction.max_consecutive_rejects": 0}
            )
        with pytest.raises(
            ConfigError, match=r"rendezvous\.step_s must be positive"
        ):
            PipelineConfig().replace(
                rendezvous=PipelineConfig().rendezvous.__class__(step_s=0.0)
            )
        with pytest.raises(
            ConfigError, match=r"rendezvous\.index_backend must be one of"
        ):
            PipelineConfig.from_overrides(
                {"rendezvous.index_backend": "kdtree"}
            )
        # Several nested problems surface together, not whack-a-mole.
        try:
            PipelineConfig.from_overrides({
                "reconstruction.max_speed_knots": -5.0,
                "rendezvous.max_distance_m": 0.0,
            })
        except ConfigError as exc:
            assert "reconstruction.max_speed_knots" in str(exc)
            assert "rendezvous.max_distance_m" in str(exc)
        else:  # pragma: no cover - the raise is the point
            pytest.fail("invalid nested overrides were accepted")


class TestStageStats:
    def test_zero_duration_throughput_is_json_safe(self):
        """Regression: inf throughput broke json.dumps of result tables."""
        import json

        from repro.core.pipeline import StageStats

        stage = StageStats("decode", n_in=100, n_out=100, seconds=0.0)
        assert stage.throughput_per_s == 0.0
        assert json.loads(json.dumps(stage.throughput_per_s)) == 0.0

    def test_summary_formats_zero_duration_stage(self):
        from repro.core.pipeline import PipelineResult, StageStats

        result = PipelineResult(
            stages=[StageStats("decode", n_in=10, n_out=10, seconds=0.0)],
            trajectories=[], synopses=[], events=[], complex_events=[],
            forecasts={}, store=None, triples=(), cube=None, overview=None,
            pol=None, monitor=None,
        )
        summary = result.summary()
        assert "inf" not in summary
        assert "n/a" in summary
