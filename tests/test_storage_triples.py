"""Tests for the RDF-lite triple store."""

import pytest

from repro.storage import Triple, TripleStore, Variable

V = Variable


@pytest.fixture
def store():
    s = TripleStore()
    s.add("v1", "type", "Cargo")
    s.add("v1", "flag", "FR")
    s.add("v1", "length", 180)
    s.add("v2", "type", "Cargo")
    s.add("v2", "flag", "PA")
    s.add("v3", "type", "Fishing")
    s.add("v3", "flag", "FR")
    return s


class TestAdd:
    def test_set_semantics(self):
        s = TripleStore()
        s.add("a", "b", "c")
        s.add("a", "b", "c")
        assert len(s) == 1

    def test_add_triple_object(self):
        s = TripleStore()
        s.add_triple(Triple("a", "b", "c"))
        assert len(s) == 1


class TestMatch:
    def test_fully_bound(self, store):
        assert len(store.match(("v1", "type", "Cargo"))) == 1
        assert store.match(("v1", "type", "Tanker")) == []

    def test_subject_bound(self, store):
        assert len(store.match(("v1", None, None))) == 3

    def test_predicate_bound(self, store):
        assert len(store.match((None, "type", None))) == 3

    def test_object_bound(self, store):
        assert len(store.match((None, None, "FR"))) == 2

    def test_predicate_object_bound(self, store):
        got = store.match((None, "type", "Cargo"))
        assert {t.subject for t in got} == {"v1", "v2"}

    def test_all_wild(self, store):
        assert len(store.match((None, None, None))) == 7

    def test_variables_act_as_wildcards(self, store):
        got = store.match((V("s"), "type", V("o")))
        assert len(got) == 3


class TestQuery:
    def test_single_pattern_bindings(self, store):
        out = store.query([(V("v"), "type", "Cargo")])
        assert {b["v"] for b in out} == {"v1", "v2"}

    def test_join_two_patterns(self, store):
        out = store.query(
            [(V("v"), "type", "Cargo"), (V("v"), "flag", "FR")]
        )
        assert [b["v"] for b in out] == ["v1"]

    def test_join_across_subjects(self, store):
        store.add("v1", "sameFlagAs", "v3")
        out = store.query(
            [
                (V("a"), "sameFlagAs", V("b")),
                (V("a"), "flag", V("f")),
                (V("b"), "flag", V("f")),
            ]
        )
        assert out == [{"a": "v1", "b": "v3", "f": "FR"}]

    def test_filters(self, store):
        out = store.query(
            [(V("v"), "length", V("len"))],
            filters=[lambda b: b["len"] > 100],
        )
        assert [b["v"] for b in out] == ["v1"]

    def test_filter_rejects(self, store):
        out = store.query(
            [(V("v"), "length", V("len"))],
            filters=[lambda b: b["len"] > 1000],
        )
        assert out == []

    def test_no_match_short_circuits(self, store):
        out = store.query(
            [(V("v"), "type", "Submarine"), (V("v"), "flag", V("f"))]
        )
        assert out == []

    def test_shared_variable_consistency(self, store):
        # ?v type Cargo AND ?v type Fishing is unsatisfiable.
        out = store.query(
            [(V("v"), "type", "Cargo"), (V("v"), "type", "Fishing")]
        )
        assert out == []

    def test_spatial_filter_style(self):
        """The E8 pattern: fixes as triples, range query as join+filter."""
        s = TripleStore()
        for i in range(100):
            node = f"fix{i}"
            s.add(node, "lat", 48.0 + i * 0.01)
            s.add(node, "lon", -5.0)
            s.add(node, "t", float(i * 60))
        out = s.query(
            [
                (V("f"), "lat", V("lat")),
                (V("f"), "lon", V("lon")),
                (V("f"), "t", V("t")),
            ],
            filters=[
                lambda b: 48.2 <= b["lat"] <= 48.5,
                lambda b: 0.0 <= b["t"] <= 4000.0,
            ],
        )
        expected = sum(
            1 for i in range(100)
            if 48.2 <= 48.0 + i * 0.01 <= 48.5 and i * 60 <= 4000.0
        )
        assert len(out) == expected
