"""Tests for the semantic layer: taxonomy, registries, annotation."""

import pytest

from repro.ais.types import ShipType
from repro.events import Event, EventKind
from repro.semantics import (
    MARITIME_TAXONOMY,
    SemanticAnnotator,
    Taxonomy,
    VOCAB,
    build_registry,
    corrupt_registry,
)
from repro.simulation import FleetBuilder
from repro.simulation.weather import WeatherProvider
from repro.simulation.world import Port
from repro.storage import TripleStore, Variable

V = Variable
PORTS = [Port("BREST", 48.38, -4.49)]


class TestTaxonomy:
    def test_subsumption(self):
        assert MARITIME_TAXONOMY.is_a("Trawler", "FishingVessel")
        assert MARITIME_TAXONOMY.is_a("Trawler", "Vessel")
        assert MARITIME_TAXONOMY.is_a("Ferry", "MerchantVessel")
        assert not MARITIME_TAXONOMY.is_a("Trawler", "MerchantVessel")

    def test_reflexive(self):
        assert MARITIME_TAXONOMY.is_a("Tanker", "Tanker")

    def test_activities(self):
        assert MARITIME_TAXONOMY.is_a("Rendezvous", "SuspiciousActivity")
        assert MARITIME_TAXONOMY.is_a("GoingDark", "Activity")
        assert not MARITIME_TAXONOMY.is_a("PortCall", "SuspiciousActivity")

    def test_descendants(self):
        assert "Trawler" in MARITIME_TAXONOMY.descendants("Vessel")
        assert "Rendezvous" in MARITIME_TAXONOMY.descendants("Activity")

    def test_cycle_rejected(self):
        t = Taxonomy()
        t.add("B", "A")
        t.add("C", "B")
        with pytest.raises(ValueError):
            t.add("A", "C")

    def test_self_subsumption_rejected(self):
        with pytest.raises(ValueError):
            Taxonomy().add("A", "A")


class TestRegistry:
    def specs(self, n=30):
        builder = FleetBuilder(4)
        return [builder.build(ShipType.CARGO) for __ in range(n)]

    def test_clean_registry_matches_truth(self):
        specs = self.specs()
        records = build_registry(specs, "MT")
        assert len(records) == len(specs)
        by_mmsi = {r.truth_mmsi: r for r in records}
        for spec in specs:
            record = by_mmsi[spec.mmsi]
            assert record.name == spec.name
            assert record.imo == spec.imo

    def test_corruption_rates(self):
        specs = self.specs(200)
        clean = build_registry(specs, "MT")
        corrupted = corrupt_registry(
            clean, seed=9, typo_rate=0.1, stale_flag_rate=0.1,
            length_jitter_rate=0.0, missing_imo_rate=0.0,
        )
        typos = sum(
            1 for a, b in zip(clean, corrupted) if a.name != b.name
        )
        stale = sum(
            1 for a, b in zip(clean, corrupted) if a.flag != b.flag
        )
        assert 8 <= typos <= 36
        assert 8 <= stale <= 36

    def test_corruption_deterministic(self):
        clean = build_registry(self.specs(), "MT")
        a = corrupt_registry(clean, seed=3)
        b = corrupt_registry(clean, seed=3)
        assert a == b

    def test_length_jitter_bounded(self):
        clean = build_registry(self.specs(100), "MT")
        corrupted = corrupt_registry(
            clean, seed=1, typo_rate=0.0, stale_flag_rate=0.0,
            length_jitter_rate=1.0, length_jitter_m=4.0,
            missing_imo_rate=0.0,
        )
        for a, b in zip(clean, corrupted):
            assert abs(a.length_m - b.length_m) <= 4.0


class TestAnnotator:
    def make(self):
        store = TripleStore()
        annotator = SemanticAnnotator(store, PORTS, WeatherProvider(seed=1))
        return store, annotator

    def test_vessel_annotation(self):
        store, annotator = self.make()
        builder = FleetBuilder(1)
        spec = builder.build(ShipType.FISHING)
        node = annotator.annotate_vessel(spec)
        assert store.match((node, VOCAB.TYPE, "FishingVessel"))
        assert store.match((node, VOCAB.NAME, spec.name))

    def test_trajectory_with_port_call(self):
        from repro.trajectory.points import TrackPoint, Trajectory

        store, annotator = self.make()
        # Dwell at Brest for 30 min then leave.
        points = [
            TrackPoint(i * 60.0, 48.381, -4.492, 0.2, 0.0) for i in range(30)
        ] + [
            TrackPoint(1800.0 + i * 60.0, 48.381 + i * 0.002, -4.492, 8.0, 0.0)
            for i in range(1, 20)
        ]
        annotator.annotate_trajectory(Trajectory(777, points))
        calls = store.query(
            [
                (V("e"), VOCAB.TYPE, "PortCall"),
                (V("e"), VOCAB.NEAR_PORT, V("port")),
            ]
        )
        assert calls and calls[0]["port"] == "BREST"

    def test_event_annotation_with_weather(self):
        store, annotator = self.make()
        event = Event(
            kind=EventKind.RENDEZVOUS, t_start=1000.0, t_end=2000.0,
            mmsis=(1, 2), lat=48.0, lon=-5.5, confidence=0.8,
        )
        node = annotator.annotate_event(event)
        assert store.match((node, VOCAB.EVENT_TYPE, "rendezvous"))
        actors = store.match((node, VOCAB.ACTOR, None))
        assert len(actors) == 2
        weather = store.match((node, VOCAB.IN_WEATHER, None))
        assert len(weather) == 1
        assert weather[0].obj in {"calm", "moderate", "rough"}

    def test_cross_domain_query(self):
        """The §2.5 payoff: one store answers vessel-class + event joins."""
        store, annotator = self.make()
        builder = FleetBuilder(2)
        fisher = builder.build(ShipType.FISHING)
        cargo = builder.build(ShipType.CARGO)
        annotator.annotate_vessel(fisher)
        annotator.annotate_vessel(cargo)
        for mmsi in (fisher.mmsi, cargo.mmsi):
            annotator.annotate_event(
                Event(
                    kind=EventKind.LOITERING, t_start=0.0, t_end=1800.0,
                    mmsis=(mmsi,), lat=47.5, lon=-5.5,
                )
            )
        out = store.query(
            [
                (V("e"), VOCAB.EVENT_TYPE, "loitering"),
                (V("e"), VOCAB.ACTOR, V("v")),
                (V("v"), VOCAB.TYPE, "FishingVessel"),
            ]
        )
        assert len(out) == 1
        assert out[0]["v"] == f"vessel:{fisher.mmsi}"
