"""Tests for zone watching wired into the pipeline."""

import pytest

from repro.core import MaritimePipeline
from repro.events import EventKind
from repro.events.detectors import ZoneWatch
from repro.geo import CircleRegion
from repro.simulation import regional_scenario


@pytest.fixture(scope="module")
def run():
    return regional_scenario(n_vessels=15, duration_s=2 * 3600.0, seed=51).run()


class TestPipelineZones:
    def test_zone_events_emitted(self, run):
        # A big disc over the western approaches: traffic must cross it.
        zone = ZoneWatch(
            name="WESTERN-APPROACHES",
            region=CircleRegion(48.5, -4.5, 120_000.0),
            restricted=True,
        )
        result = MaritimePipeline(zones=[zone]).process(run)
        entries = result.events_of(EventKind.ZONE_ENTRY)
        assert entries
        assert all(e.details["zone"] == "WESTERN-APPROACHES" for e in entries)

    def test_no_zones_no_zone_events(self, run):
        result = MaritimePipeline().process(run)
        assert result.events_of(EventKind.ZONE_ENTRY) == []

    def test_unvisited_zone_silent(self, run):
        zone = ZoneWatch(
            name="ARCTIC", region=CircleRegion(80.0, 0.0, 50_000.0)
        )
        result = MaritimePipeline(zones=[zone]).process(run)
        assert result.events_of(EventKind.ZONE_ENTRY) == []

    def test_zone_events_feed_cep(self, run):
        """Zone entries are first-class events: CEP can sequence them."""
        from repro.events import SequencePattern

        zone = ZoneWatch(
            name="WESTERN-APPROACHES",
            region=CircleRegion(48.5, -4.5, 120_000.0),
        )
        pattern = SequencePattern(
            name="enter_exit",
            sequence=(EventKind.ZONE_ENTRY, EventKind.ZONE_EXIT),
            window_s=4 * 3600.0,
        )
        result = MaritimePipeline(
            zones=[zone], cep_patterns=[pattern]
        ).process(run)
        for complex_event in result.complex_events:
            assert complex_event.details["pattern"] == "enter_exit"
