# ruff: noqa
"""lock-discipline: shared attribute touched outside the lock (fixture)."""
import threading


class LeakyQueue:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = []
        self._worker = threading.Thread(target=self._run, daemon=True)
        self._worker.start()

    def _run(self):
        while True:
            with self._lock:
                if self._queue:
                    self._queue.pop()

    def submit(self, item):
        with self._lock:
            self._queue.append(item)

    def __len__(self):
        return len(self._queue)  # unlocked read of a shared attribute
