# ruff: noqa
"""phase-ownership: compliant vessel-phase stage (fixture, not imported)."""


class Stage:
    name = "stage"
    phase = "cross"
    state_reads = ()
    state_writes = ()


class CleanVesselStage(Stage):
    name = "clean"
    phase = "vessel"
    state_reads = ("config",)
    state_writes = ("decoder",)

    def feed(self, state: PipelineState, items):
        threshold = state.config.threshold
        state.decoder.consume(items, threshold)
        return items


class CleanBarrierStage(Stage):
    name = "merge"
    phase = "barrier"
    state_writes = ("watermark",)

    def feed(self, state: PipelineState, records):
        if records:
            state.watermark = records[-1].t
        return records
