# ruff: noqa
"""single-writer: two classes write the same state field (fixture)."""


class FirstStage:
    def feed(self, state: PipelineState, records):
        state.watermark = records[-1].t
        state.ledger.append(records)


class SecondStage:
    def feed(self, state: PipelineState, records):
        state.watermark = 0.0          # second writer of state.watermark
        return list(state.ledger)      # reading is fine
