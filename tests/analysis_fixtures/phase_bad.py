# ruff: noqa
"""phase-ownership: three distinct violations (fixture, not imported)."""


class Stage:
    name = "stage"
    phase = "cross"
    state_reads = ()
    state_writes = ()


class NoManifestStage(Stage):
    """Vessel-phase stage with no ownership manifest: flagged."""

    name = "bare"
    phase = "vessel"

    def feed(self, state: PipelineState, items):
        return items


class OverreachStage(Stage):
    """Reads and writes state fields missing from its manifest."""

    name = "overreach"
    phase = "vessel"
    state_reads = ("config",)
    state_writes = ("decoder",)

    def feed(self, state: PipelineState, items):
        state.decoder.consume(items)
        state.watermark = 0.0      # write outside state_writes
        return state.forecasts     # read outside the manifest


class GreedyBarrierStage(Stage):
    """Barrier stage touching a ShardState: flagged."""

    name = "greedy"
    phase = "barrier"
    state_writes = ("watermark",)

    def feed(self, state: PipelineState, shard: ShardState):
        shard.reconstructor.finish()
        for sh in state.shards:
            sh.teleports.clear()
        return []
