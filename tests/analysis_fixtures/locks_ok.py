# ruff: noqa
"""lock-discipline: every shared touch under the lock; one documented
lock-free counter on the allowlist (fixture)."""
import threading


class DisciplinedQueue:
    _lock_free = ("n_peeks",)  # monotonic int, torn reads acceptable

    def __init__(self):
        self._lock = threading.Lock()
        self._queue = []
        self.n_peeks = 0
        self._worker = threading.Thread(target=self._run, daemon=True)
        self._worker.start()

    def _run(self):
        while True:
            with self._lock:
                if self._queue:
                    self._queue.pop()
            self.n_peeks += 1

    def submit(self, item):
        with self._lock:
            self._queue.append(item)

    def __len__(self):
        with self._lock:
            return len(self._queue)

    def peeks(self):
        self.n_peeks += 1
        return self.n_peeks
