# ruff: noqa
"""single-writer: one writer per field, many readers (fixture)."""


class WriterStage:
    def feed(self, state: PipelineState, records):
        state.watermark = records[-1].t
        state.ledger.append(records)


class ReaderStage:
    def feed(self, state: PipelineState, records):
        horizon = state.watermark - 60.0
        return [r for r in state.ledger.items() if r.t >= horizon]
