# ruff: noqa
"""Causality-clean detector usage and config handling (fixture)."""


def released_gaps(state, released):
    # Released records came through the watermark barrier: fine.
    return detect_gaps(released, min_gap_s=600.0)


def depth(state):
    # Asking a buffer for its *size* is not a peek.
    return state.reorderer.buffered()


def tune(config):
    # Deriving a validated variant is the sanctioned path.
    return config.replace(workers=8)
