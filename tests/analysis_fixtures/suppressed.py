# ruff: noqa
"""Suppression accounting: reasoned, reasonless and unused (fixture)."""


def tune_with_reason(state):
    state.config.workers = 8  # repro: allow(config-mutation) — fixture exercising a reasoned suppression


def tune_without_reason(state):
    state.config.workers = 8  # repro: allow(config-mutation)


def innocent(state):
    return state.watermark  # repro: allow(single-writer) — suppresses nothing
