# ruff: noqa
"""causal-lookahead + config-mutation violations (fixture)."""


def eager_gaps(state):
    staged = state.reorderer._buffer          # private buffer internals
    return detect_gaps(staged, min_gap_s=600.0)


def eager_loiter(state):
    pending = state.cep.peek()                # peek accessor
    track = list(pending)
    return detect_loitering(track)            # tainted argument


def tune(state):
    state.config.workers = 8                  # mutating validated config


def retune(cfg):
    cfg.gap_min_s = 0.0                       # mutating a config local
