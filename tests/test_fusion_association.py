"""Tests for contact-to-track association and multi-source tracking."""

import random

from repro.fusion import AssociationConfig, MultiSourceTracker, associate_contacts
from repro.geo import haversine_m
from repro.simulation.sensors import RadarContact
from repro.trajectory.points import TrackPoint


def track_points(lat0, lon0, n=20, dt=10.0, dlat=0.0005):
    return [
        TrackPoint(i * dt, lat0 + i * dlat, lon0, 10.0, 0.0)
        for i in range(n)
    ]


def contact(t, lat, lon, truth=0, site="R"):
    return RadarContact(t=t, lat=lat, lon=lon, site=site, truth_mmsi=truth)


class TestAssociateContacts:
    def test_clean_association(self):
        tracks = {1: track_points(48.0, -5.0), 2: track_points(48.5, -4.0)}
        contacts = [
            contact(200.0, 48.0 + 20 * 0.0005, -5.0, truth=1),
            contact(200.0, 48.5 + 20 * 0.0005, -4.0, truth=2),
        ]
        out = associate_contacts(contacts, tracks)
        by_truth = {a.contact.truth_mmsi: a.mmsi for a in out}
        assert by_truth == {1: 1, 2: 2}

    def test_gate_blocks_distant_contact(self):
        tracks = {1: track_points(48.0, -5.0)}
        out = associate_contacts(
            [contact(200.0, 52.0, -5.0)], tracks,
            AssociationConfig(gate_m=1500.0),
        )
        assert out[0].mmsi is None

    def test_stale_track_cannot_gate(self):
        tracks = {1: track_points(48.0, -5.0)}  # track ends at t=190
        out = associate_contacts(
            [contact(5_000.0, 48.01, -5.0)], tracks,
            AssociationConfig(max_track_age_s=600.0),
        )
        assert out[0].mmsi is None

    def test_one_contact_per_track_per_sweep(self):
        tracks = {1: track_points(48.0, -5.0)}
        near = 48.0 + 20 * 0.0005
        contacts = [
            contact(200.0, near, -5.0, truth=1),
            contact(200.0, near + 0.001, -5.0, truth=99),
        ]
        out = associate_contacts(contacts, tracks)
        associated = [a for a in out if a.mmsi == 1]
        assert len(associated) == 1
        # The closer one won.
        assert associated[0].contact.truth_mmsi == 1

    def test_dead_reckoning_prediction(self):
        """A contact taken after the last fix associates via projection."""
        tracks = {1: track_points(48.0, -5.0)}  # moving north at ~10 kn
        # 60 s after the last fix the vessel has moved ~320 m north.
        predicted_lat = 48.0 + 19 * 0.0005 + 0.003
        out = associate_contacts(
            [contact(250.0, predicted_lat, -5.0)], tracks,
            AssociationConfig(gate_m=1000.0),
        )
        assert out[0].mmsi == 1


class TestMultiSourceTracker:
    def test_ais_seeds_identified_tracks(self):
        tracker = MultiSourceTracker()
        for point in track_points(48.0, -5.0):
            tracker.add_ais_fix(1, point)
        assert len(tracker.identified_tracks) == 1
        assert tracker.identified_tracks[0].mmsi == 1

    def test_radar_extends_identified_track(self):
        tracker = MultiSourceTracker()
        for point in track_points(48.0, -5.0):
            tracker.add_ais_fix(1, point)
        tracker.add_radar_contacts(
            [contact(200.0, 48.0 + 20 * 0.0005, -5.0, truth=1)]
        )
        track = tracker.identified_tracks[0]
        assert "radar" in track.sources and "ais" in track.sources

    def test_uncorrelated_contacts_form_anonymous_track(self):
        tracker = MultiSourceTracker()
        for point in track_points(48.0, -5.0):
            tracker.add_ais_fix(1, point)
        # A dark vessel 50 km away paints a sequence of contacts.
        dark = [
            contact(float(i * 10), 48.5 + i * 0.0005, -4.3, truth=77)
            for i in range(10)
        ]
        tracker.add_radar_contacts(dark)
        assert len(tracker.anonymous_tracks) == 1
        anonymous = tracker.anonymous_tracks[0]
        assert len(anonymous.points) == 10

    def test_anonymous_track_continuity(self):
        """Consecutive contacts from the same dark vessel join one track,
        not ten singleton tracks."""
        tracker = MultiSourceTracker(AssociationConfig(gate_m=1500.0))
        dark = [
            contact(float(i * 10), 48.5 + i * 0.0005, -4.3, truth=77)
            for i in range(30)
        ]
        tracker.add_radar_contacts(dark)
        assert len(tracker.anonymous_tracks) == 1

    def test_lrit_merges_by_identity(self):
        tracker = MultiSourceTracker()
        for point in track_points(48.0, -5.0):
            tracker.add_ais_fix(1, point)
        tracker.add_lrit(1, TrackPoint(500.0, 48.02, -5.0, source="lrit"))
        track = tracker.identified_tracks[0]
        assert "lrit" in track.sources

    def test_to_trajectory_dedupes_and_sorts(self):
        tracker = MultiSourceTracker()
        tracker.add_ais_fix(1, TrackPoint(10.0, 48.0, -5.0))
        tracker.add_ais_fix(1, TrackPoint(5.0, 47.999, -5.0))
        tracker.add_ais_fix(1, TrackPoint(10.0, 48.0, -5.0))  # duplicate
        trajectory = tracker.identified_tracks[0].to_trajectory()
        assert [p.t for p in trajectory] == [5.0, 10.0]


def brute_nearest_anonymous(tracker, contact):
    """The seed's O(tracks) scan, kept as the reference oracle for the
    indexed `_nearest_anonymous` (ties broken toward the lower id, as the
    indexed version documents)."""
    best = None
    best_key = None
    for track in tracker.tracks.values():
        if track.mmsi is not None or not track.points:
            continue
        last = max(track.points, key=lambda p: p.t)
        age = contact.t - last.t
        if age > tracker.config.max_track_age_s or contact.t < last.t:
            continue
        dist = haversine_m(contact.lat, contact.lon, last.lat, last.lon)
        if dist <= tracker.config.gate_m:
            key = (dist, track.track_id)
            if best_key is None or key < best_key:
                best = track
                best_key = key
    return best


class TestNearestAnonymousIndex:
    """The streaming-index gating must match the brute-force scan."""

    def random_contacts(self, seed, n=300, n_sources=12):
        """Several dark vessels drifting near each other plus clutter,
        contacts interleaved in time order."""
        rng = random.Random(seed)
        sources = [
            (48.0 + rng.uniform(-0.3, 0.3), -5.0 + rng.uniform(-0.3, 0.3))
            for __ in range(n_sources)
        ]
        out = []
        for i in range(n):
            lat0, lon0 = sources[rng.randrange(n_sources)]
            out.append(
                RadarContact(
                    t=float(i * 7),
                    lat=lat0 + rng.uniform(-0.004, 0.004),
                    lon=lon0 + rng.uniform(-0.004, 0.004),
                    site="R",
                    truth_mmsi=0,
                )
            )
        return out

    def test_indexed_matches_brute_force_scan(self):
        for seed in (5, 6, 7):
            tracker = MultiSourceTracker(
                AssociationConfig(gate_m=1200.0, max_track_age_s=400.0)
            )
            for contact in self.random_contacts(seed):
                expected = brute_nearest_anonymous(tracker, contact)
                got = tracker._nearest_anonymous(contact)
                assert (got is None) == (expected is None)
                if got is not None:
                    assert got.track_id == expected.track_id
                # Feed the contact through the real path so the index
                # evolves exactly as in production.
                tracker.add_radar_contacts([contact])
            assert len(tracker.anonymous_tracks) >= 2

    def test_head_cache_follows_latest_point(self):
        tracker = MultiSourceTracker(AssociationConfig(gate_m=2000.0))
        # One dark vessel moving north; every contact must extend the
        # same track, probed at the *latest* head position.
        for i in range(25):
            tracker.add_radar_contacts(
                [RadarContact(t=i * 30.0, lat=48.0 + i * 0.005, lon=-5.0,
                              site="R", truth_mmsi=0)]
            )
        assert len(tracker.anonymous_tracks) == 1
        head = tracker._anonymous_heads
        track_id = tracker.anonymous_tracks[0].track_id
        assert head.position(track_id) == (48.0 + 24 * 0.005, -5.0)
