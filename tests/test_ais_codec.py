"""Round-trip tests for the AIVDM encoder/decoder across message types."""

import pytest

from repro.ais import (
    BaseStationReport,
    ClassBPositionReport,
    NavigationStatus,
    PositionReport,
    StaticDataReport,
    StaticVoyageData,
    decode_payload,
    decode_sentences,
    encode_message,
    encode_sentences,
    nmea_checksum,
    verify_checksum,
)


def roundtrip(msg):
    sentences = encode_sentences(msg)
    decoded = decode_sentences(sentences)
    assert len(decoded) == 1
    return decoded[0]


class TestPositionReport:
    def make(self, **overrides) -> PositionReport:
        fields = dict(
            mmsi=227123456,
            lat=48.3829,
            lon=-4.4951,
            sog_knots=12.3,
            cog_deg=87.6,
            heading_deg=88.0,
            nav_status=NavigationStatus.UNDER_WAY_ENGINE,
            rot_deg_per_min=0.0,
            timestamp_s=33,
        )
        fields.update(overrides)
        return PositionReport(**fields)

    def test_roundtrip_exact_fields(self):
        out = roundtrip(self.make())
        assert out.mmsi == 227123456
        assert out.lat == pytest.approx(48.3829, abs=1e-4)
        assert out.lon == pytest.approx(-4.4951, abs=1e-4)
        assert out.sog_knots == pytest.approx(12.3, abs=0.05)
        assert out.cog_deg == pytest.approx(87.6, abs=0.05)
        assert out.heading_deg == 88.0
        assert out.nav_status is NavigationStatus.UNDER_WAY_ENGINE
        assert out.timestamp_s == 33

    def test_position_precision_within_ais_quantum(self):
        # 1/10000 arc-minute ≈ 0.18 m in latitude.
        out = roundtrip(self.make(lat=48.123456789, lon=-4.987654321))
        assert out.lat == pytest.approx(48.123456789, abs=2e-6)
        assert out.lon == pytest.approx(-4.987654321, abs=2e-6)

    def test_sentinels_become_none(self):
        out = roundtrip(
            self.make(sog_knots=None, cog_deg=None, heading_deg=None,
                      timestamp_s=None, rot_deg_per_min=None)
        )
        assert out.sog_knots is None
        assert out.cog_deg is None
        assert out.heading_deg is None
        assert out.timestamp_s is None
        assert out.rot_deg_per_min is None

    def test_southern_western_hemisphere(self):
        out = roundtrip(self.make(lat=-33.91, lon=-71.62))
        assert out.lat == pytest.approx(-33.91, abs=1e-4)
        assert out.lon == pytest.approx(-71.62, abs=1e-4)

    def test_message_types_2_and_3(self):
        for msg_type in (2, 3):
            out = roundtrip(self.make(msg_type=msg_type))
            assert out.msg_type == msg_type

    def test_rot_roundtrip_sign(self):
        right = roundtrip(self.make(rot_deg_per_min=5.0))
        left = roundtrip(self.make(rot_deg_per_min=-5.0))
        assert right.rot_deg_per_min > 0
        assert left.rot_deg_per_min < 0

    def test_single_sentence(self):
        assert len(encode_sentences(self.make())) == 1

    def test_168_bits(self):
        assert len(encode_message(self.make())) == 168


class TestStaticVoyage:
    def make(self, **overrides) -> StaticVoyageData:
        fields = dict(
            mmsi=227123456,
            imo=9074729,
            callsign="FQAB",
            shipname="PONT AVEN",
            ship_type_code=70,
            to_bow_m=100,
            to_stern_m=84,
            to_port_m=12,
            to_starboard_m=13,
            eta_month=6,
            eta_day=12,
            eta_hour=10,
            eta_minute=30,
            draught_m=6.5,
            destination="ROSCOFF",
        )
        fields.update(overrides)
        return StaticVoyageData(**fields)

    def test_multi_sentence(self):
        sentences = encode_sentences(self.make())
        assert len(sentences) == 2
        assert ",2,1," in sentences[0]
        assert ",2,2," in sentences[1]

    def test_roundtrip(self):
        out = roundtrip(self.make())
        assert out.shipname == "PONT AVEN"
        assert out.callsign == "FQAB"
        assert out.imo == 9074729
        assert out.destination == "ROSCOFF"
        assert out.draught_m == pytest.approx(6.5)
        assert out.length_m == 184
        assert out.beam_m == 25
        assert out.eta_month == 6 and out.eta_minute == 30

    def test_empty_strings(self):
        out = roundtrip(self.make(shipname="", callsign="", destination=""))
        assert out.shipname == ""
        assert out.callsign == ""
        assert out.destination == ""

    def test_424_bits(self):
        assert len(encode_message(self.make())) == 424

    def test_fragments_out_of_order_reassemble(self):
        from repro.ais import AisDecoder

        sentences = encode_sentences(self.make())
        decoder = AisDecoder()
        assert decoder.feed(sentences[1]) is None
        out = decoder.feed(sentences[0])
        assert out is not None and out.shipname == "PONT AVEN"


class TestClassB:
    def test_roundtrip(self):
        msg = ClassBPositionReport(
            mmsi=227999111, lat=47.1, lon=-3.5,
            sog_knots=6.4, cog_deg=210.0, heading_deg=208.0, timestamp_s=12,
        )
        out = roundtrip(msg)
        assert out.mmsi == 227999111
        assert out.sog_knots == pytest.approx(6.4, abs=0.05)
        assert out.cog_deg == pytest.approx(210.0, abs=0.05)
        assert out.msg_type == 18


class TestStaticDataReport:
    def test_part_a(self):
        out = roundtrip(StaticDataReport(mmsi=227, part=0, shipname="LE BATEAU"))
        assert out.part == 0
        assert out.shipname == "LE BATEAU"

    def test_part_b(self):
        out = roundtrip(
            StaticDataReport(
                mmsi=227, part=1, ship_type_code=30, vendor_id="REPRO",
                callsign="FX123", to_bow_m=10, to_stern_m=12,
                to_port_m=3, to_starboard_m=3,
            )
        )
        assert out.part == 1
        assert out.ship_type_code == 30
        assert out.callsign == "FX123"
        assert out.to_bow_m == 10


class TestBaseStation:
    def test_roundtrip(self):
        msg = BaseStationReport(
            mmsi=2275000, year=2017, month=3, day=21,
            hour=9, minute=30, second=15, lat=48.38, lon=-4.49,
        )
        out = roundtrip(msg)
        assert (out.year, out.month, out.day) == (2017, 3, 21)
        assert (out.hour, out.minute, out.second) == (9, 30, 15)
        assert out.lat == pytest.approx(48.38, abs=1e-4)


class TestChecksum:
    def test_valid_sentences(self):
        for sentence in encode_sentences(
            PositionReport(mmsi=227000001, lat=1.0, lon=2.0)
        ):
            assert verify_checksum(sentence)

    def test_corrupted_fails(self):
        sentence = encode_sentences(
            PositionReport(mmsi=227000001, lat=1.0, lon=2.0)
        )[0]
        corrupted = sentence.replace(",A,", ",B,", 1)
        assert not verify_checksum(corrupted)

    def test_known_value(self):
        assert nmea_checksum("AIVDM,1,1,,A,,0") == f"{_xor('AIVDM,1,1,,A,,0'):02X}"

    def test_malformed(self):
        assert not verify_checksum("")
        assert not verify_checksum("AIVDM no bang")
        assert not verify_checksum("!AIVDM,1,1,,A,x,0")  # no checksum


def _xor(text: str) -> int:
    value = 0
    for char in text:
        value ^= ord(char)
    return value


class TestDecodeErrors:
    def test_unsupported_type(self):
        from repro.ais import DecodeError
        from repro.ais.sixbit import BitBuffer

        buf = BitBuffer()
        buf.write_uint(6, 6)  # binary addressed message: unsupported
        buf.write_uint(0, 32)
        payload, fill = buf.to_payload()
        with pytest.raises(DecodeError):
            decode_payload(payload, fill)

    def test_too_short(self):
        from repro.ais import DecodeError

        with pytest.raises(DecodeError):
            decode_payload("1", 0)

    def test_truncated_type5(self):
        from repro.ais import DecodeError
        from repro.ais.sixbit import BitBuffer

        buf = BitBuffer()
        buf.write_uint(5, 6)
        buf.write_uint(0, 60)
        payload, fill = buf.to_payload()
        with pytest.raises(DecodeError):
            decode_payload(payload, fill)
