"""Tests for route clustering, anchorage discovery and RTS smoothing."""

import random

import pytest

from repro.geo import haversine_m
from repro.trajectory.clustering import (
    cluster_routes,
    discover_anchorages,
)
from repro.trajectory.kalman import rts_smooth_trajectory, smooth_trajectory
from repro.trajectory.points import TrackPoint, Trajectory
from repro.trajectory.stops import StopSegment


def lane_track(mmsi, lat0, lon0, dlat, dlon, n=30, dt=120.0, jitter=0.002,
               seed=0):
    rng = random.Random(seed + mmsi)
    points = [
        TrackPoint(
            i * dt,
            lat0 + i * dlat + rng.uniform(-jitter, jitter),
            lon0 + i * dlon + rng.uniform(-jitter, jitter),
            10.0, 0.0,
        )
        for i in range(n)
    ]
    return Trajectory(mmsi, points)


class TestClusterRoutes:
    def make_two_lanes(self):
        northbound = [
            lane_track(100 + i, 48.0, -5.0, 0.01, 0.0) for i in range(5)
        ]
        eastbound = [
            lane_track(200 + i, 47.0, -6.0, 0.0, 0.015) for i in range(5)
        ]
        return northbound + eastbound

    def test_separates_lanes(self):
        tracks = self.make_two_lanes()
        clusters = cluster_routes(tracks, k=2, seed=1)
        assert len(clusters) == 2
        groups = [
            {tracks[i].mmsi // 100 for i in c.member_indices}
            for c in clusters
        ]
        # Each cluster is pure: all northbound or all eastbound.
        assert all(len(group) == 1 for group in groups)
        assert {g.pop() for g in groups} == {1, 2}

    def test_every_track_assigned_once(self):
        tracks = self.make_two_lanes()
        clusters = cluster_routes(tracks, k=2, seed=1)
        assigned = sorted(
            i for c in clusters for i in c.member_indices
        )
        assert assigned == list(range(len(tracks)))

    def test_medoid_is_member(self):
        tracks = self.make_two_lanes()
        for cluster in cluster_routes(tracks, k=2, seed=1):
            assert cluster.medoid_index in cluster.member_indices

    def test_k_larger_than_n(self):
        tracks = self.make_two_lanes()[:3]
        clusters = cluster_routes(tracks, k=10, seed=1)
        assert len(clusters) == 3

    def test_empty(self):
        assert cluster_routes([], k=3) == []

    def test_deterministic(self):
        tracks = self.make_two_lanes()
        a = cluster_routes(tracks, k=2, seed=5)
        b = cluster_routes(tracks, k=2, seed=5)
        assert [c.member_indices for c in a] == [c.member_indices for c in b]


class TestAnchorages:
    def stop(self, mmsi, lat, lon, t=0.0, dwell=1800.0):
        return StopSegment(mmsi, t, t + dwell, lat, lon)

    def test_discovers_busy_spot(self):
        stops = [
            self.stop(i, 48.380 + i * 1e-4, -4.490, t=i * 1000.0)
            for i in range(6)
        ]
        stops.append(self.stop(99, 43.0, -3.0))  # lone stop elsewhere
        anchorages = discover_anchorages(stops, min_stops=3)
        assert len(anchorages) == 1
        anchorage = anchorages[0]
        assert anchorage.n_stops == 6
        assert anchorage.n_vessels == 6
        assert haversine_m(anchorage.lat, anchorage.lon, 48.380, -4.490) < 500.0

    def test_separate_spots_stay_separate(self):
        brest = [self.stop(i, 48.38, -4.49, t=i * 100.0) for i in range(4)]
        cherbourg = [
            self.stop(10 + i, 49.65, -1.62, t=i * 100.0) for i in range(4)
        ]
        anchorages = discover_anchorages(brest + cherbourg, min_stops=3)
        assert len(anchorages) == 2

    def test_min_stops_filter(self):
        stops = [self.stop(1, 48.0, -5.0), self.stop(2, 48.0, -5.0)]
        assert discover_anchorages(stops, min_stops=3) == []

    def test_busiest_first(self):
        busy = [self.stop(i, 48.38, -4.49, t=i * 100.0) for i in range(8)]
        quiet = [self.stop(20 + i, 49.65, -1.62, t=i * 100.0) for i in range(3)]
        anchorages = discover_anchorages(busy + quiet, min_stops=3)
        assert anchorages[0].n_stops == 8

    def test_dwell_accumulated(self):
        stops = [
            self.stop(i, 48.0, -5.0, t=i * 10_000.0, dwell=3600.0)
            for i in range(3)
        ]
        anchorage = discover_anchorages(stops, min_stops=3)[0]
        assert anchorage.total_dwell_s == pytest.approx(3 * 3600.0)


class TestRtsSmoother:
    def noisy_track(self, noise_m=40.0, n=60, seed=4):
        rng = random.Random(seed)
        truth = []
        noisy = []
        for i in range(n):
            lat = 48.0 + i * 1e-4
            truth.append((lat, -5.0))
            noisy.append(
                TrackPoint(
                    i * 10.0,
                    lat + rng.gauss(0.0, noise_m / 111_195.0),
                    -5.0 + rng.gauss(0.0, noise_m / 74_000.0),
                )
            )
        return truth, Trajectory(3, noisy)

    def mean_error(self, truth, track, skip=0):
        return sum(
            haversine_m(track[i].lat, track[i].lon, *truth[i])
            for i in range(skip, len(track))
        ) / (len(track) - skip)

    def test_rts_beats_forward_filter(self):
        truth, track = self.noisy_track()
        forward = smooth_trajectory(track, measurement_sigma_m=40.0)
        rts = rts_smooth_trajectory(track, measurement_sigma_m=40.0)
        # RTS conditions on the whole track, so it must beat the causal
        # filter overall — most visibly in the early, unconverged part.
        assert self.mean_error(truth, rts) < self.mean_error(truth, forward)

    def test_rts_beats_raw(self):
        truth, track = self.noisy_track()
        rts = rts_smooth_trajectory(track, measurement_sigma_m=40.0)
        assert self.mean_error(truth, rts) < self.mean_error(truth, track)

    def test_structure_preserved(self):
        __, track = self.noisy_track()
        rts = rts_smooth_trajectory(track)
        assert len(rts) == len(track)
        assert [p.t for p in rts] == [p.t for p in track]
        assert rts.mmsi == track.mmsi
