"""Tests for the visual analytics substrate."""

import pytest

from repro.events import Event, EventKind
from repro.geo import BoundingBox
from repro.trajectory.points import TrackPoint
from repro.visual import (
    CubeQuery,
    DensityMap,
    SituationOverview,
    SpatioTemporalCube,
    render_ascii_map,
)

BOX = BoundingBox(40.0, 60.0, -20.0, 10.0)


class TestDensityMap:
    def test_counts_inside(self):
        density = DensityMap(BOX, 10, 10)
        n = density.add_positions([45.0, 55.0, 70.0], [-10.0, 0.0, 0.0])
        assert n == 2
        assert density.total == 2

    def test_antimeridian_box_counts_across_seam(self):
        density = DensityMap(BoundingBox(0.0, 10.0, 170.0, -170.0), 5, 20)
        n = density.add_positions([5.0, 5.0, 5.0], [175.0, -175.0, 0.0])
        assert n == 2  # lon 0 is outside the wrapped box
        assert density.total == 2
        # Both sides of the seam land on the raster, west side left of east.
        raster = density.raster()
        occupied = sorted(int(j) for j in raster.nonzero()[1])
        assert len(occupied) == 2
        assert occupied[0] < density.n_lon_bins / 2 < occupied[1]

    def test_seam_longitude_representations_share_a_cell(self):
        """The same seam position written as +180, -180 or 540-360 keys
        one cell, not a fixed-degree key per representation."""
        density = DensityMap(BoundingBox(0.0, 10.0, 170.0, -170.0), 5, 20)
        density.add_positions([5.0, 5.0, 5.0], [180.0, -180.0, 540.0])
        assert density.total == 3
        assert density.occupied_cells == 1
        assert density.top_cells(1)[0][2] == 3

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            DensityMap(BOX).add_positions([1.0], [])

    def test_top_cells(self):
        density = DensityMap(BOX, 10, 10)
        density.add_positions([45.0] * 10 + [55.0], [-10.0] * 10 + [0.0])
        top = density.top_cells(2)
        assert top[0][2] == 10
        assert top[1][2] == 1

    def test_occupancy(self):
        density = DensityMap(BOX, 10, 10)
        density.add_positions([45.0], [-10.0])
        assert 0.0 < density.occupancy_fraction() < 0.05

    def test_east_spilling_cell_folds_onto_east_border(self):
        """A cell whose centre lies just past lon_max must render on the
        east border column, not wrap to the west edge."""
        density = DensityMap(BoundingBox(40.0, 41.0, -15.0, -5.0), 10, 10)
        assert density.add_positions([40.05], [-5.0001]) == 1
        raster = density.raster()
        assert raster.sum() == 1
        assert int(raster.nonzero()[1][0]) == density.n_lon_bins - 1

    def test_geohash_export_round_trip(self):
        from repro.spatial import geohash_to_cell

        density = DensityMap(BOX, 10, 10)
        density.add_positions([45.0] * 3 + [55.0], [-10.0] * 3 + [0.0])
        named = density.to_geohash_counts()
        assert sum(named.values()) == 4
        cells = {geohash_to_cell(density.cells, name) for name in named}
        assert cells == set(density._counts)


class TestRenderAscii:
    def test_dimensions(self):
        density = DensityMap(BOX, 8, 30)
        density.add_positions([45.0, 55.0], [-10.0, 0.0])
        rendered = render_ascii_map(density)
        lines = rendered.split("\n")
        assert len(lines) == 8
        assert all(len(line) == 30 for line in lines)

    def test_empty_map_blank(self):
        rendered = render_ascii_map(DensityMap(BOX, 4, 10))
        assert set(rendered) <= {" ", "\n"}

    def test_density_ramp_monotone(self):
        density = DensityMap(BOX, 1, 3)
        density.add_positions(
            [50.0] * 100 + [50.0] * 5,
            [-15.0] * 100 + [-5.0] * 5,
        )
        row = render_ascii_map(density)
        ramp = " .:-=+*#%@"
        assert ramp.index(row[0]) > ramp.index(row[1])

    def test_markers_override(self):
        density = DensityMap(BOX, 8, 30)
        rendered = render_ascii_map(density, markers={(50.0, -5.0): "o"})
        assert "o" in rendered

    def test_north_at_top(self):
        density = DensityMap(BOX, 4, 4)
        density.add_positions([59.0], [-15.0])  # far north-west
        lines = render_ascii_map(density).split("\n")
        assert lines[0].strip() != ""
        assert lines[-1].strip() == ""


class TestCube:
    def make(self):
        cube = SpatioTemporalCube(cell_deg=1.0, time_bucket_s=3600.0)
        for hour in range(24):
            for i in range(hour + 1):  # traffic grows through the day
                cube.add(48.5, -5.5, hour * 3600.0 + i, "cargo")
        cube.add(55.5, 3.5, 0.0, "fishing")
        return cube

    def test_total(self):
        cube = self.make()
        assert cube.total == sum(range(1, 25)) + 1

    def test_category_filter(self):
        cube = self.make()
        assert cube.count(CubeQuery(category="fishing")) == 1

    def test_spatial_filter(self):
        cube = self.make()
        north_sea = BoundingBox(54.0, 57.0, 2.0, 5.0)
        assert cube.count(CubeQuery(box=north_sea)) == 1

    def test_time_filter(self):
        cube = self.make()
        first_hour = cube.count(CubeQuery(t0=0.0, t1=3599.0))
        assert first_hour == 1 + 1  # one cargo + the fishing point

    def test_roll_up_time_day(self):
        cube = self.make()
        by_day = cube.roll_up_time(24)
        assert by_day[0] == cube.total

    def test_roll_up_space(self):
        cube = self.make()
        coarse = cube.roll_up_space(10)
        assert sum(coarse.values()) == cube.total
        assert len(coarse) <= 2

    def test_drill_down_consistent_with_count(self):
        cube = self.make()
        box = BoundingBox(48.0, 49.0, -6.0, -5.0)
        drilled = cube.drill_down(box, 0.0, 86400.0)
        assert sum(drilled.values()) == cube.count(
            CubeQuery(box=box, t0=0.0, t1=86400.0)
        )

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            self.make().roll_up_space(0)

    def test_edge_cell_intersecting_box_counts(self):
        """Regression: the centre-in-box rule dropped cells whose centre
        fell just outside the query box even though the observations
        inside them intersected it."""
        cube = SpatioTemporalCube(cell_deg=1.0, time_bucket_s=3600.0)
        cube.add(48.9, -5.5, 0.0)  # near the cell's northern edge
        box = cube._cell_box(cube.grid.key(48.9, -5.5))
        # A thin query box overlapping only the top tenth of the cell —
        # it misses the centre but must still count the cell.
        lat_hi = box.lat_max
        thin = BoundingBox(lat_hi - 0.1, lat_hi + 0.2, -6.0, -5.0)
        assert cube.count(CubeQuery(box=thin)) == 1

    def test_antimeridian_cells_key_together(self):
        """±180° representations of the same spot land in one cell."""
        cube = SpatioTemporalCube(cell_deg=1.0, time_bucket_s=3600.0)
        cube.add(10.5, 180.0, 0.0)
        cube.add(10.5, -180.0, 0.0)
        cube.add(10.5, 540.0, 0.0)
        assert len(cube.cell_counts()) == 1
        assert cube.total == 3

    def test_antimeridian_query_box(self):
        """A seam-crossing CubeQuery box counts both sides, nothing else."""
        cube = SpatioTemporalCube(cell_deg=1.0, time_bucket_s=3600.0)
        cube.add(5.5, 177.5, 0.0)
        cube.add(5.5, -177.5, 0.0)
        cube.add(5.5, 0.5, 0.0)
        seam_box = BoundingBox(0.0, 10.0, 175.0, -175.0)
        assert cube.count(CubeQuery(box=seam_box)) == 2
        drilled = cube.drill_down(seam_box, 0.0, 3600.0)
        assert sum(drilled.values()) == 2

    def test_roll_up_space_geometric(self):
        """Roll-up keys are cells of a real coarser latitude-aware grid,
        so nearby base cells merge and distant ones stay apart."""
        cube = SpatioTemporalCube(cell_deg=1.0, time_bucket_s=3600.0)
        cube.add(48.2, -5.2, 0.0)
        cube.add(48.7, -5.7, 0.0)  # ~70 km away: same 10x cell
        cube.add(-33.0, 151.0, 0.0)  # the other side of the planet
        coarse = cube.roll_up_space(10)
        assert sum(coarse.values()) == 3
        assert len(coarse) == 2

    def test_geohash_export(self):
        from repro.spatial import geohash_to_cell

        cube = self.make()
        named = cube.to_geohash_counts()
        assert sum(named.values()) == cube.total
        cells = {geohash_to_cell(cube.grid, name) for name in named}
        assert cells == set(cube.cell_counts())
        # Query-scoped export only ships the matching slice.
        fishing = cube.to_geohash_counts(CubeQuery(category="fishing"))
        assert sum(fishing.values()) == 1

    def test_high_latitude_cells_keep_metric_size(self):
        """A 0.1° cube at 75°N keys ~8 km of longitude into one cell
        instead of splitting it across fixed-degree slivers."""
        cube = SpatioTemporalCube(cell_deg=0.2, time_bucket_s=3600.0)
        import math

        lat, lon = cube.grid.center(cube.grid.key(75.05, 20.0))
        half_deg = 4_000.0 / (111_194.9 * math.cos(math.radians(lat)))
        for i in range(10):
            cube.add(lat, lon - half_deg + i * half_deg / 5.0, 0.0)
        assert len(cube.cell_counts()) == 1


class TestOverview:
    def test_build(self):
        states = {
            1: TrackPoint(1000.0, 48.0, -5.0, 12.0, 0.0),
            2: TrackPoint(1000.0, 48.1, -5.0, 0.2, 0.0),
            3: TrackPoint(1000.0, 70.0, 10.0, 9.0, 0.0),  # outside box
        }
        events = [
            Event(EventKind.GAP, 500.0, 600.0, (1,), 48.0, -5.0),
            Event(EventKind.GAP, 500.0, 600.0, (3,), 70.0, 10.0),
        ]
        overview = SituationOverview.build(
            t=1000.0, box=BoundingBox(47.0, 49.0, -6.0, -4.0),
            current_states=states, recent_events=events,
        )
        assert overview.n_vessels == 2
        assert overview.n_underway == 1
        assert overview.n_stationary == 1
        assert len(overview.events_last_hour) == 1
        assert "2 vessels" in overview.headline()

    def test_monitor_alarm_explanation(self):
        from repro.events.pol import PatternOfLife
        from repro.trajectory.points import Trajectory
        from repro.visual import SituationMonitor

        pol = PatternOfLife()
        lane = [
            Trajectory(
                k,
                [
                    TrackPoint(i * 60.0, 48.0 + i * 0.002, -5.0, 10.0, 0.0)
                    for i in range(50)
                ],
            )
            for k in range(20)
        ]
        pol.train(lane)
        monitor = SituationMonitor(pol, alarm_threshold=0.6)
        # Southbound through the northbound lane.
        alarm = monitor.offer(99, TrackPoint(100.0, 48.05, -5.0, 10.0, 180.0))
        assert alarm is not None
        assert "unusual" in alarm.explanation
        assert str(pol.n_training_points) in alarm.explanation
        # Conforming traffic does not alarm.
        assert monitor.offer(98, TrackPoint(100.0, 48.05, -5.0, 10.0, 0.0)) is None
