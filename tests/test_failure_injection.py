"""Failure injection: the pipeline must survive hostile/degraded feeds.

§4: "empty fields very common in marine data, approximate values or
uncertain fields"; §1: manipulation, hacking, poor quality.  These tests
corrupt the feed in targeted ways and assert the system degrades
gracefully — wrong data is dropped and counted, never crashing, and clean
data still flows through.
"""

import random

import pytest

from repro.ais import AisDecoder, PositionReport, encode_sentences
from repro.core import MaritimePipeline
from repro.simulation import regional_scenario


@pytest.fixture(scope="module")
def clean_run():
    return regional_scenario(n_vessels=12, duration_s=3600.0, seed=77).run()


def corrupt_feed(sentences, mode, rate=0.2, seed=0):
    rng = random.Random(seed)
    out = []
    for sentence in sentences:
        if rng.random() > rate:
            out.append(sentence)
            continue
        if mode == "bitflip":
            index = rng.randrange(10, max(11, len(sentence) - 3))
            flipped = chr((ord(sentence[index]) ^ 0x02) & 0x7F)
            out.append(sentence[:index] + flipped + sentence[index + 1 :])
        elif mode == "truncate":
            out.append(sentence[: rng.randrange(5, len(sentence))])
        elif mode == "binary_garbage":
            out.append("".join(chr(rng.randrange(0, 255)) for __ in range(40)))
        elif mode == "drop_fragment":
            # Drop only continuation fragments of multipart messages.
            if ",2,2," in sentence:
                continue
            out.append(sentence)
        elif mode == "duplicate":
            out.append(sentence)
            out.append(sentence)
    return out


class TestDecoderUnderFire:
    @pytest.mark.parametrize(
        "mode", ["bitflip", "truncate", "binary_garbage", "drop_fragment"]
    )
    def test_no_crash_and_accounting(self, clean_run, mode):
        feed = corrupt_feed(clean_run.sentences, mode, rate=0.3)
        decoder = AisDecoder()
        decoded = 0
        for sentence in feed:
            if decoder.feed(sentence) is not None:
                decoded += 1
        # Clean majority still decodes; corruption is counted, not fatal.
        assert decoded > 0.5 * len(clean_run.sentences) * 0.7
        rejects = sum(
            count for reason, count in decoder.stats.items()
            if reason not in ("decoded", "fragment_buffered")
            and not reason.startswith("decode_error:")
        )
        if mode != "drop_fragment":
            assert rejects > 0

    def test_duplicates_are_harmless(self, clean_run):
        feed = corrupt_feed(clean_run.sentences, "duplicate", rate=0.5)
        decoder = AisDecoder()
        decoded = sum(1 for s in feed if decoder.feed(s) is not None)
        assert decoded >= len(clean_run.sentences)


class TestPipelineUnderFire:
    def test_pipeline_survives_corrupted_observations(self, clean_run):
        import dataclasses

        corrupted = corrupt_feed(clean_run.sentences, "bitflip", rate=0.2)
        observations = [
            dataclasses.replace(obs, sentence=sentence)
            for obs, sentence in zip(clean_run.observations, corrupted)
        ]
        run = dataclasses.replace(clean_run, observations=observations)
        result = MaritimePipeline().process(run)
        assert result.trajectories  # the fleet is still tracked
        assert result.stage("decode").n_out < result.stage("decode").n_in

    def test_pipeline_with_empty_feed(self, clean_run):
        import dataclasses

        run = dataclasses.replace(
            clean_run, observations=[], radar_contacts=[], lrit_reports=[]
        )
        result = MaritimePipeline().process(run)
        assert result.trajectories == []
        assert result.events == []
        assert result.overview is None

    def test_clock_skew_out_of_order_feed(self, clean_run):
        """Receiver clock skew: shuffle arrival order within ±5 min; the
        watermark stage must still deliver usable tracks."""
        import dataclasses

        rng = random.Random(3)
        skewed = sorted(
            (
                dataclasses.replace(
                    obs, t_received=obs.t_received + rng.uniform(-300.0, 300.0)
                )
                for obs in clean_run.observations
            ),
            key=lambda obs: obs.t_received,
        )
        run = dataclasses.replace(clean_run, observations=skewed)
        result = MaritimePipeline().process(run)
        assert len(result.trajectories) >= 0.7 * len(clean_run.specs)

    def test_duplicate_mmsi_fleet(self):
        """Two physical vessels sharing an MMSI (identity fraud): the
        reconstructor splits impossible tracks instead of weaving them."""
        from repro.trajectory.reconstruction import TrackReconstructor

        rec = TrackReconstructor()
        t = 0.0
        for i in range(60):
            # Vessel 1 near Brest, vessel 2 in Biscay — alternating reports.
            rec.add(
                PositionReport(
                    mmsi=227000111, lat=48.4 + i * 1e-4, lon=-4.5,
                    sog_knots=8.0, cog_deg=0.0,
                ),
                t,
            )
            rec.add(
                PositionReport(
                    mmsi=227000111, lat=45.0 + i * 1e-4, lon=-4.0,
                    sog_knots=8.0, cog_deg=0.0,
                ),
                t + 5.0,
            )
            t += 10.0
        tracks = rec.finish()
        # Every produced segment must be internally consistent (< 50 kn).
        for track in tracks:
            assert track.mean_speed_knots() < 50.0

    def test_all_fields_empty_static(self):
        """§4's 'empty fields very common': fully blank static messages
        decode and validate without crashing."""
        from repro.ais import StaticVoyageData, decode_sentences, validate_message

        blank = StaticVoyageData(mmsi=227000112)
        out = decode_sentences(encode_sentences(blank))[0]
        issues = validate_message(out)
        assert issues  # plenty to complain about
        assert out.shipname == "" and out.destination == ""
