"""Tests for trajectory synopses (the E1 / §2.1 machinery)."""

import math
import random

import pytest

from repro.trajectory import (
    Trajectory,
    compression_ratio,
    dead_reckoning_compress,
    douglas_peucker,
    max_sed_error_m,
    mean_sed_error_m,
    squish_e,
)
from repro.trajectory.points import TrackPoint


def straight_track(n=200, dt=10.0):
    """Constant-velocity track: maximally compressible."""
    return Trajectory(
        1,
        [
            TrackPoint(i * dt, 48.0 + i * 0.0005, -5.0, 10.5, 0.0)
            for i in range(n)
        ],
    )


def wiggly_track(n=200, dt=10.0, amplitude=0.01, seed=3):
    """Northbound track with a sinusoidal *cross-track* (longitude) wiggle
    of ~amplitude*74 km, plus small noise."""
    rng = random.Random(seed)
    points = []
    for i in range(n):
        lat = 48.0 + i * 0.0005
        lon = -5.0 + amplitude * math.sin(i / 5.0) + rng.uniform(-1e-4, 1e-4)
        points.append(TrackPoint(i * dt, lat, lon, 10.0, 0.0))
    return Trajectory(1, points)


ALGORITHMS = [
    ("dp", lambda tr, tol: douglas_peucker(tr, tol)),
    ("dr", lambda tr, tol: dead_reckoning_compress(tr, tol)),
    ("squish", lambda tr, tol: squish_e(tr, tol)),
]


@pytest.mark.parametrize("name,algo", ALGORITHMS)
class TestCommonProperties:
    def test_endpoints_kept(self, name, algo):
        track = wiggly_track()
        synopsis = algo(track, 100.0)
        assert synopsis[0] == track[0]
        assert synopsis[-1] == track[-1]

    def test_synopsis_is_subset(self, name, algo):
        track = wiggly_track()
        synopsis = algo(track, 100.0)
        original = set((p.t, p.lat, p.lon) for p in track)
        assert all((p.t, p.lat, p.lon) in original for p in synopsis)

    def test_timestamps_increasing(self, name, algo):
        synopsis = algo(wiggly_track(), 100.0)
        times = [p.t for p in synopsis]
        assert times == sorted(times)

    def test_tighter_tolerance_keeps_more(self, name, algo):
        track = wiggly_track()
        loose = algo(track, 500.0)
        tight = algo(track, 20.0)
        assert len(tight) >= len(loose)

    def test_two_point_track_unchanged(self, name, algo):
        track = Trajectory(
            1, [TrackPoint(0.0, 48.0, -5.0, 10.0, 0.0),
                TrackPoint(60.0, 48.01, -5.0, 10.0, 0.0)]
        )
        assert len(algo(track, 100.0)) == 2

    def test_invalid_tolerance(self, name, algo):
        with pytest.raises(ValueError):
            algo(straight_track(), 0.0)


class TestStraightLineCompression:
    """A constant-velocity track compresses to ~2 points — this is how the
    95% figure of [29] arises on lane traffic."""

    def test_douglas_peucker_two_points(self):
        synopsis = douglas_peucker(straight_track(), 50.0)
        assert len(synopsis) <= 4
        assert compression_ratio(straight_track(), synopsis) > 0.95

    def test_dead_reckoning_high_ratio(self):
        synopsis = dead_reckoning_compress(straight_track(), 100.0)
        assert compression_ratio(straight_track(), synopsis) > 0.95

    def test_squish_high_ratio(self):
        synopsis = squish_e(straight_track(), 50.0)
        assert compression_ratio(straight_track(), synopsis) > 0.95


class TestErrorBounds:
    def test_squish_respects_sed_bound(self):
        track = wiggly_track()
        bound = 200.0
        synopsis = squish_e(track, bound)
        # SQUISH-E's accumulated priority guarantees the bound.
        assert max_sed_error_m(track, synopsis) <= bound * 1.01

    def test_dp_cross_track_bound_approximates_sed(self):
        track = wiggly_track()
        synopsis = douglas_peucker(track, 100.0)
        # DP bounds cross-track, not SED; on near-constant-speed tracks
        # the SED stays within a small multiple.
        assert max_sed_error_m(track, synopsis) <= 500.0

    def test_mean_below_max(self):
        track = wiggly_track()
        synopsis = squish_e(track, 150.0)
        assert mean_sed_error_m(track, synopsis) <= max_sed_error_m(track, synopsis)

    def test_identity_synopsis_zero_error(self):
        track = wiggly_track()
        assert max_sed_error_m(track, track) == 0.0
        assert compression_ratio(track, track) == 0.0


class TestManoeuvrePreservation:
    def test_turn_point_survives(self):
        """A sharp course change must keep a fix near the corner."""
        points = []
        for i in range(50):
            points.append(TrackPoint(i * 10.0, 48.0 + i * 0.001, -5.0, 10.0, 0.0))
        corner_lat = 48.0 + 49 * 0.001
        for i in range(1, 50):
            points.append(
                TrackPoint(
                    490.0 + i * 10.0, corner_lat, -5.0 + i * 0.001, 10.0, 90.0
                )
            )
        track = Trajectory(1, points)
        for algo in (douglas_peucker, squish_e):
            synopsis = algo(track, 100.0)
            from repro.geo import haversine_m

            nearest_to_corner = min(
                haversine_m(p.lat, p.lon, corner_lat, -5.0) for p in synopsis
            )
            assert nearest_to_corner < 500.0
