"""Tests for geohash encode/decode/neighbours."""

import pytest

from repro.geo import geohash_decode, geohash_encode, geohash_neighbors


class TestEncode:
    def test_known_value(self):
        # Canonical test vector: Jutland.
        assert geohash_encode(57.64911, 10.40744, 11) == "u4pruydqqvj"

    def test_precision_length(self):
        for precision in range(1, 12):
            assert len(geohash_encode(48.0, -5.0, precision)) == precision

    def test_prefix_property(self):
        # Longer hashes refine shorter ones.
        long = geohash_encode(48.38, -4.49, 9)
        short = geohash_encode(48.38, -4.49, 5)
        assert long.startswith(short)

    def test_out_of_range_latitude(self):
        with pytest.raises(ValueError):
            geohash_encode(95.0, 0.0)

    def test_bad_precision(self):
        with pytest.raises(ValueError):
            geohash_encode(0.0, 0.0, 0)


class TestDecode:
    def test_roundtrip_within_cell_error(self):
        lat, lon = 48.3829, -4.4951
        decoded_lat, decoded_lon, lat_err, lon_err = geohash_decode(
            geohash_encode(lat, lon, 8)
        )
        assert abs(decoded_lat - lat) <= lat_err
        assert abs(decoded_lon - lon) <= lon_err

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            geohash_decode("abci")  # 'i' is not in the base32 alphabet

    def test_error_shrinks_with_precision(self):
        __, __, err5, __ = geohash_decode(geohash_encode(10.0, 10.0, 5))
        __, __, err8, __ = geohash_decode(geohash_encode(10.0, 10.0, 8))
        assert err8 < err5


class TestNeighbors:
    def test_eight_neighbours_inland(self):
        neighbours = geohash_neighbors(geohash_encode(48.0, -5.0, 6))
        assert len(neighbours) == 8
        assert len(set(neighbours)) == 8

    def test_neighbours_same_precision(self):
        for n in geohash_neighbors(geohash_encode(48.0, -5.0, 7)):
            assert len(n) == 7

    def test_neighbours_are_adjacent(self):
        center = geohash_encode(48.0, -5.0, 6)
        __, __, lat_err, lon_err = geohash_decode(center)
        for n in geohash_neighbors(center):
            nlat, nlon, __, __ = geohash_decode(n)
            clat, clon, __, __ = geohash_decode(center)
            assert abs(nlat - clat) <= 2.5 * lat_err
            assert abs(nlon - clon) <= 2.5 * lon_err

    def test_antimeridian_wrap(self):
        neighbours = geohash_neighbors(geohash_encode(0.0, 179.99, 5))
        assert len(neighbours) >= 7  # wraps without crashing
