"""Tests for behaviour models (plans must cover the window and be sane)."""

import random

import pytest

from repro.geo import haversine_m
from repro.simulation.behaviours import (
    plan_ferry,
    plan_fishing,
    plan_loiter,
    plan_rendezvous_pair,
    plan_transit,
)

BREST = (48.38, -4.49)
CHERBOURG = (49.65, -1.62)


@pytest.fixture
def rng():
    return random.Random(42)


class TestTransit:
    def test_covers_window(self, rng):
        plan = plan_transit(0.0, 6 * 3600.0, BREST, CHERBOURG, 12.0, rng)
        assert plan.t_start == 0.0
        assert plan.t_end >= 6 * 3600.0

    def test_starts_at_origin(self, rng):
        plan = plan_transit(0.0, 3600.0, BREST, CHERBOURG, 12.0, rng)
        assert haversine_m(*plan.position_at(0.0), *BREST) < 1000.0

    def test_heads_towards_destination(self, rng):
        plan = plan_transit(0.0, 2 * 3600.0, BREST, CHERBOURG, 12.0, rng)
        d0 = haversine_m(*plan.position_at(0.0), *CHERBOURG)
        d1 = haversine_m(*plan.position_at(2 * 3600.0), *CHERBOURG)
        assert d1 < d0

    def test_deterministic_given_rng(self):
        p1 = plan_transit(0.0, 3600.0, BREST, CHERBOURG, 12.0, random.Random(7))
        p2 = plan_transit(0.0, 3600.0, BREST, CHERBOURG, 12.0, random.Random(7))
        assert p1.position_at(1800.0) == p2.position_at(1800.0)


class TestFerry:
    def test_returns_near_start(self, rng):
        # A short hop back and forth should revisit the origin.
        plan = plan_ferry(
            0.0, 8 * 3600.0, BREST, (48.72, -3.97), 18.0, rng,
            turnaround_s=600.0,
        )
        distances = [
            haversine_m(*plan.position_at(t), *BREST)
            for t in range(0, int(plan.t_end), 600)
        ]
        # It must come back close to Brest at least once after leaving.
        assert min(distances[10:]) < 5_000.0

    def test_covers_window(self, rng):
        plan = plan_ferry(0.0, 4 * 3600.0, BREST, CHERBOURG, 18.0, rng)
        assert plan.t_end >= 4 * 3600.0


class TestFishing:
    def test_visits_ground(self, rng):
        ground = (48.0, -5.8)
        plan = plan_fishing(0.0, 8 * 3600.0, BREST, ground, rng)
        closest = min(
            haversine_m(*plan.position_at(t), *ground)
            for t in range(0, int(plan.t_end), 300)
        )
        assert closest < 16_000.0

    def test_has_slow_phase(self, rng):
        # Ground ~40 km out: most of the day is spent trawling slowly.
        plan = plan_fishing(0.0, 8 * 3600.0, BREST, (48.2, -5.0), rng)
        speeds = [
            plan.kinematics_at(float(t)).sog_knots
            for t in range(0, int(plan.t_end), 300)
        ]
        slow = [s for s in speeds if 0.5 < s < 5.0]
        assert len(slow) > len(speeds) * 0.3

    def test_returns_home(self, rng):
        plan = plan_fishing(0.0, 8 * 3600.0, BREST, (48.0, -5.8), rng)
        assert haversine_m(*plan.position_at(plan.t_end), *BREST) < 5_000.0


class TestLoiter:
    def test_stays_within_radius(self, rng):
        center = (47.5, -6.0)
        plan = plan_loiter(0.0, 2 * 3600.0, center, rng, radius_m=1_000.0)
        for t in range(0, int(plan.t_end), 120):
            assert haversine_m(*plan.position_at(float(t)), *center) < 2_500.0

    def test_slow(self, rng):
        plan = plan_loiter(0.0, 3600.0, (47.5, -6.0), rng)
        speeds = [
            plan.kinematics_at(float(t)).sog_knots
            for t in range(0, 3600, 60)
        ]
        assert max(speeds) < 4.0


class TestRendezvousPair:
    def test_both_at_meeting_point(self, rng):
        meeting = (48.2, -5.5)
        meeting_time = 2 * 3600.0
        plan_a, plan_b, truth = plan_rendezvous_pair(
            0.0, 6 * 3600.0,
            (48.9, -5.2), (47.8, -5.9),
            meeting, meeting_time, meeting_duration_s=1800.0, rng=rng,
        )
        mid = meeting_time + 900.0
        pos_a = plan_a.position_at(mid)
        pos_b = plan_b.position_at(mid)
        assert haversine_m(*pos_a, *meeting) < 1_000.0
        assert haversine_m(*pos_b, *meeting) < 1_000.0
        assert haversine_m(*pos_a, *pos_b) < 1_000.0
        assert truth["type"] == "rendezvous"
        assert truth["t_start"] == meeting_time

    def test_separate_afterwards(self, rng):
        meeting = (48.2, -5.5)
        plan_a, plan_b, truth = plan_rendezvous_pair(
            0.0, 8 * 3600.0,
            (48.9, -5.2), (47.8, -5.9),
            meeting, 2 * 3600.0, meeting_duration_s=1800.0, rng=rng,
        )
        late = truth["t_end"] + 2 * 3600.0
        separation = haversine_m(
            *plan_a.position_at(late), *plan_b.position_at(late)
        )
        assert separation > 5_000.0

    def test_unreachable_meeting_rejected(self, rng):
        with pytest.raises(ValueError):
            plan_rendezvous_pair(
                0.0, 3600.0,
                (60.0, 0.0), (47.8, -5.9),  # 1300+ km away
                (48.0, -5.0), 600.0, 600.0, rng,
            )
