"""Tests for possibility theory and second-order (Beta) probabilities."""

import pytest

from repro.uncertainty import BetaProbability, PossibilityDistribution


class TestPossibility:
    def test_normalisation(self):
        pd = PossibilityDistribution({"a": 0.5, "b": 0.25})
        assert max(pd.degrees.values()) == 1.0
        assert pd.inconsistency == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PossibilityDistribution({})
        with pytest.raises(ValueError):
            PossibilityDistribution({"a": 1.5})
        with pytest.raises(ValueError):
            PossibilityDistribution({"a": 0.0})

    def test_possibility_is_max(self):
        pd = PossibilityDistribution({"a": 1.0, "b": 0.6, "c": 0.2})
        assert pd.possibility({"b", "c"}) == pytest.approx(0.6)
        assert pd.possibility({"a", "c"}) == 1.0
        assert pd.possibility(set()) == 0.0

    def test_necessity_duality(self):
        pd = PossibilityDistribution({"a": 1.0, "b": 0.6, "c": 0.2})
        for subset in [{"a"}, {"a", "b"}, {"c"}]:
            complement = pd.frame - set(subset)
            assert pd.necessity(subset) == pytest.approx(
                1.0 - pd.possibility(complement)
            )

    def test_necessity_below_possibility(self):
        pd = PossibilityDistribution({"a": 1.0, "b": 0.6})
        for subset in [{"a"}, {"b"}]:
            assert pd.necessity(subset) <= pd.possibility(subset)

    def test_combine_min(self):
        a = PossibilityDistribution({"fishing": 1.0, "cargo": 0.5})
        b = PossibilityDistribution({"fishing": 0.8, "cargo": 1.0})
        combined = a.combine_min(b)
        assert combined.degrees["fishing"] == 1.0  # renormalised from 0.8
        assert combined.degrees["cargo"] == pytest.approx(0.5 / 0.8)

    def test_combine_inconsistent_raises(self):
        a = PossibilityDistribution({"fishing": 1.0})
        b = PossibilityDistribution({"cargo": 1.0})
        with pytest.raises(ValueError):
            a.combine_min(b)

    def test_most_plausible(self):
        pd = PossibilityDistribution({"a": 0.3, "b": 1.0})
        assert pd.most_plausible() == "b"


class TestBetaProbability:
    def test_validation(self):
        with pytest.raises(ValueError):
            BetaProbability(0.0, 1.0)
        with pytest.raises(ValueError):
            BetaProbability.from_counts(-1, 5)

    def test_mean(self):
        assert BetaProbability(3.0, 1.0).mean == pytest.approx(0.75)

    def test_from_counts_laplace(self):
        bp = BetaProbability.from_counts(9, 0)
        assert bp.mean == pytest.approx(10.0 / 11.0)

    def test_more_evidence_narrower(self):
        small = BetaProbability.from_counts(90, 10)
        large = BetaProbability.from_counts(900, 100)
        assert small.mean == pytest.approx(large.mean, abs=0.01)
        assert large.std < small.std
        lo_s, hi_s = small.credible_interval()
        lo_l, hi_l = large.credible_interval()
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_interval_clipped(self):
        lo, hi = BetaProbability.from_counts(1, 0).credible_interval()
        assert 0.0 <= lo <= hi <= 1.0

    def test_update(self):
        bp = BetaProbability.from_counts(5, 5)
        updated = bp.update(successes=10)
        assert updated.mean > bp.mean
        assert updated.evidence == bp.evidence + 10

    def test_combine_pools_evidence(self):
        a = BetaProbability.from_counts(8, 2)
        b = BetaProbability.from_counts(7, 3)
        pooled = a.combine(b)
        assert pooled.evidence > a.evidence
        assert 0.6 < pooled.mean < 0.9

    def test_reliability_flag(self):
        assert not BetaProbability.from_counts(2, 1).is_reliable()
        assert BetaProbability.from_counts(50, 50).is_reliable()

    def test_str_contains_interval(self):
        text = str(BetaProbability.from_counts(9, 1))
        assert "[" in text and "n≈" in text
