"""Tests for watermark-based reordering."""

import pytest

from repro.streaming import (
    LateRecordPolicy,
    Record,
    Stream,
    reorder_with_watermark,
)
from repro.streaming.watermarks import ReorderStats


def stream_of(times):
    return Stream(Record(float(t), "k", t) for t in times)


class TestReorder:
    def test_restores_order_within_bound(self):
        out = reorder_with_watermark(
            stream_of([0, 3, 1, 2, 5, 4, 8]), max_lateness_s=5.0
        ).collect()
        assert [r.t for r in out] == sorted([0, 3, 1, 2, 5, 4, 8])

    def test_already_ordered_passthrough(self):
        out = reorder_with_watermark(
            stream_of(range(10)), max_lateness_s=2.0
        ).collect()
        assert [r.t for r in out] == list(map(float, range(10)))

    def test_too_late_dropped(self):
        stats = ReorderStats()
        out = reorder_with_watermark(
            stream_of([0, 100, 1]), max_lateness_s=5.0, stats=stats
        ).collect()
        assert [r.t for r in out] == [0.0, 100.0]
        assert stats.late == 1

    def test_too_late_emitted_when_policy_says_so(self):
        out = reorder_with_watermark(
            stream_of([0, 100, 1]),
            max_lateness_s=5.0,
            policy=LateRecordPolicy.EMIT_OUT_OF_ORDER,
        ).collect()
        assert len(out) == 3

    def test_everything_flushed_at_end(self):
        stats = ReorderStats()
        out = reorder_with_watermark(
            stream_of([5, 4, 3, 2, 1]), max_lateness_s=10.0, stats=stats
        ).collect()
        assert len(out) == 5
        assert stats.emitted == 5

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            reorder_with_watermark(stream_of([1]), -1.0)

    def test_satellite_latency_scenario(self):
        """Terrestrial (fast) and satellite (minutes late) interleave; the
        reorderer restores event-time order with a 400 s bound."""
        import random

        rng = random.Random(0)
        arrivals = []
        for t in range(0, 2000, 10):
            latency = 1.0 if rng.random() < 0.7 else rng.uniform(250.0, 390.0)
            arrivals.append((t + latency, float(t)))
        arrivals.sort()  # arrival order
        out = reorder_with_watermark(
            Stream(Record(event_t, "v", None) for __, event_t in arrivals),
            max_lateness_s=400.0,
        ).collect()
        times = [r.t for r in out]
        assert times == sorted(times)
        assert len(times) == len(arrivals)
