"""Tests for the pattern-of-life model and the CEP engine."""

import pytest

from repro.events import (
    CepEngine,
    Event,
    EventKind,
    PatternOfLife,
    PolConfig,
    SequencePattern,
)
from repro.trajectory.points import TrackPoint, Trajectory


def lane_traffic(n_tracks=20, n_points=50):
    """Historical traffic: northbound lane at ~10 kn through one cell set."""
    tracks = []
    for k in range(n_tracks):
        points = [
            TrackPoint(
                i * 60.0, 48.0 + i * 0.002, -5.0 + k * 1e-4, 10.0, 0.0
            )
            for i in range(n_points)
        ]
        tracks.append(Trajectory(1000 + k, points))
    return tracks


class TestPatternOfLife:
    def test_normal_scores_low(self):
        pol = PatternOfLife()
        pol.train(lane_traffic())
        score = pol.anomaly_score(48.05, -5.0, 10.0, 0.0)
        assert score < 0.3

    def test_wrong_direction_scores_high(self):
        pol = PatternOfLife()
        pol.train(lane_traffic())
        score = pol.anomaly_score(48.05, -5.0, 10.0, 180.0)
        assert score > 0.6

    def test_wrong_speed_scores_high(self):
        pol = PatternOfLife()
        pol.train(lane_traffic())
        assert pol.anomaly_score(48.05, -5.0, 0.5, 0.0) > 0.5

    def test_unseen_cell_neutral(self):
        pol = PatternOfLife()
        pol.train(lane_traffic())
        assert pol.anomaly_score(60.0, 10.0, 10.0, 0.0) == 0.5

    def test_sparse_cell_neutral(self):
        pol = PatternOfLife(PolConfig(min_cell_observations=1000))
        pol.train(lane_traffic(n_tracks=2))
        assert pol.anomaly_score(48.05, -5.0, 10.0, 0.0) == 0.5

    def test_detect_anomalies_on_deviant_track(self):
        pol = PatternOfLife()
        pol.train(lane_traffic())
        # Southbound through the northbound lane.
        deviant = Trajectory(
            9,
            [
                TrackPoint(i * 60.0, 48.1 - i * 0.002, -5.0, 10.0, 180.0)
                for i in range(40)
            ],
        )
        events = pol.detect_anomalies(deviant, threshold=0.6)
        assert events
        assert all(e.kind is EventKind.POL_ANOMALY for e in events)

    def test_conforming_track_clean(self):
        pol = PatternOfLife()
        pol.train(lane_traffic())
        conforming = Trajectory(
            9,
            [
                TrackPoint(i * 60.0, 48.0 + i * 0.002, -5.0, 10.0, 0.0)
                for i in range(40)
            ],
        )
        assert pol.detect_anomalies(conforming, threshold=0.85) == []

    def test_training_counts(self):
        pol = PatternOfLife()
        pol.train(lane_traffic(n_tracks=3, n_points=10))
        assert pol.n_training_points == 30
        assert pol.n_cells > 0

    def test_antimeridian_trains_one_history(self):
        """A vessel loitering at ±180° must train a single cell history,
        however its longitude is reported (regression: the fixed-degree
        key split +180/-180 into disjoint cells)."""
        pol = PatternOfLife()
        for i in range(40):
            lon = 180.0 if i % 2 == 0 else -180.0
            pol.observe(10.0, lon, 8.0, 90.0)
        pol.observe(10.0, 540.0, 8.0, 90.0)  # same meridian, wrapped rep
        assert pol.n_cells == 1
        # The combined history crosses min_cell_observations, so the
        # behaviour scores as ordinary rather than unknown-neutral.
        assert pol.anomaly_score(10.0, 180.0, 8.0, 90.0) < 0.3
        assert pol.anomaly_score(10.0, -180.0, 8.0, 90.0) < 0.3

    def test_high_latitude_cells_keep_metric_size(self):
        """At 75°N, fixes spread over ~8 km of longitude belong to one
        ~22 km cell (regression: fixed 0.2° cells shrink to ~5.8 km)."""
        import math

        pol = PatternOfLife()
        c_lat, c_lon = pol._grid.center(pol._grid.key(75.05, 20.0))
        half_deg = 4_000.0 / (111_194.9 * math.cos(math.radians(c_lat)))
        assert 2 * half_deg > PolConfig().cell_deg  # would split if fixed
        for i in range(30):
            pol.observe(c_lat, c_lon - half_deg + i * half_deg / 15.0, 10.0, 0.0)
        assert pol.n_cells == 1
        assert pol.anomaly_score(c_lat, c_lon + half_deg, 10.0, 0.0) < 0.3

    def test_negative_sog_clamps_to_bin_zero(self):
        """Garbage negative speeds must not mint negative histogram bins
        (regression: they silently polluted the speed histogram)."""
        pol = PatternOfLife()
        for __ in range(30):
            pol.observe(48.0, -5.0, -3.0, 0.0)
        cell = pol._cells[pol._key(48.0, -5.0)]
        assert set(cell.speed_hist) == {0}
        # Scoring garbage speeds uses the same clamped bin.
        assert pol.anomaly_score(48.0, -5.0, -1.0, 0.0) == pol.anomaly_score(
            48.0, -5.0, 0.5, 0.0
        )

    def test_non_finite_kinematics_are_binned_safely(self):
        pol = PatternOfLife()
        pol.observe(48.0, -5.0, float("nan"), float("inf"))
        assert pol.n_training_points == 1
        cell = pol._cells[pol._key(48.0, -5.0)]
        assert set(cell.speed_hist) == {0}
        assert set(cell.course_hist) == {0}

    def test_geohash_export(self):
        pol = PatternOfLife()
        pol.train(lane_traffic(n_tracks=2, n_points=10))
        named = pol.cell_counts_by_geohash()
        assert sum(named.values()) == pol.n_training_points
        assert all(isinstance(name, str) for name in named)


def event(kind, t, mmsis=(1,), lat=48.0, lon=-5.0, confidence=1.0):
    return Event(
        kind=kind, t_start=t, t_end=t + 60.0, mmsis=mmsis,
        lat=lat, lon=lon, confidence=confidence,
    )


DARK_RDV = SequencePattern(
    name="dark_rdv",
    sequence=(EventKind.GAP, EventKind.RENDEZVOUS),
    window_s=3600.0,
    same_vessel=True,
    max_radius_m=50_000.0,
)


class TestCepEngine:
    def test_sequence_completes(self):
        engine = CepEngine([DARK_RDV])
        out = engine.feed_all(
            [
                event(EventKind.GAP, 0.0, (1,)),
                event(EventKind.RENDEZVOUS, 600.0, (1, 2)),
            ]
        )
        assert len(out) == 1
        complex_event = out[0]
        assert complex_event.kind is EventKind.COMPLEX
        assert complex_event.details["pattern"] == "dark_rdv"
        assert set(complex_event.mmsis) == {1, 2}

    def test_order_matters(self):
        engine = CepEngine([DARK_RDV])
        out = engine.feed_all(
            [
                event(EventKind.RENDEZVOUS, 0.0, (1, 2)),
                event(EventKind.GAP, 600.0, (1,)),
            ]
        )
        assert out == []

    def test_window_expiry(self):
        engine = CepEngine([DARK_RDV])
        out = engine.feed_all(
            [
                event(EventKind.GAP, 0.0, (1,)),
                event(EventKind.RENDEZVOUS, 10_000.0, (1, 2)),
            ]
        )
        assert out == []

    def test_vessel_constraint(self):
        engine = CepEngine([DARK_RDV])
        out = engine.feed_all(
            [
                event(EventKind.GAP, 0.0, (1,)),
                event(EventKind.RENDEZVOUS, 600.0, (3, 4)),
            ]
        )
        assert out == []

    def test_spatial_constraint(self):
        engine = CepEngine([DARK_RDV])
        out = engine.feed_all(
            [
                event(EventKind.GAP, 0.0, (1,), lat=48.0, lon=-5.0),
                event(EventKind.RENDEZVOUS, 600.0, (1, 2), lat=55.0, lon=3.0),
            ]
        )
        assert out == []

    def test_confidence_propagates_min(self):
        engine = CepEngine([DARK_RDV])
        out = engine.feed_all(
            [
                event(EventKind.GAP, 0.0, (1,), confidence=0.4),
                event(EventKind.RENDEZVOUS, 600.0, (1, 2), confidence=0.9),
            ]
        )
        assert out[0].confidence == pytest.approx(0.9 * 0.4)

    def test_three_step_pattern(self):
        pattern = SequencePattern(
            name="triple",
            sequence=(EventKind.GAP, EventKind.LOITERING, EventKind.GAP),
            window_s=7200.0,
        )
        engine = CepEngine([pattern])
        out = engine.feed_all(
            [
                event(EventKind.GAP, 0.0),
                event(EventKind.LOITERING, 1000.0),
                event(EventKind.GAP, 2000.0),
            ]
        )
        assert len(out) == 1
        assert len(out[0].details["steps"]) == 3

    def test_multiple_matches(self):
        engine = CepEngine([DARK_RDV])
        out = engine.feed_all(
            [
                event(EventKind.GAP, 0.0, (1,)),
                event(EventKind.GAP, 100.0, (1,)),
                event(EventKind.RENDEZVOUS, 600.0, (1, 2)),
            ]
        )
        assert len(out) == 2  # both gaps complete with the rendezvous

    def test_invalid_patterns(self):
        with pytest.raises(ValueError):
            SequencePattern("x", (EventKind.GAP,), 100.0)
        with pytest.raises(ValueError):
            SequencePattern("x", (EventKind.GAP, EventKind.GAP), 0.0)


class TestCepOutOfOrderAndDuplicates:
    """The incremental detect stage emits events as they are discovered,
    not globally time-sorted; the engine must not care."""

    def _flow(self):
        return [
            event(EventKind.GAP, 0.0, (1,)),
            event(EventKind.GAP, 100.0, (1,)),
            event(EventKind.RENDEZVOUS, 600.0, (1, 2)),
            event(EventKind.GAP, 1200.0, (2,)),
            event(EventKind.RENDEZVOUS, 1800.0, (2, 3)),
        ]

    def test_reversed_feed_finds_same_matches(self):
        sorted_out = CepEngine([DARK_RDV]).feed_all(self._flow())
        reversed_engine = CepEngine([DARK_RDV])
        reversed_out = []
        for e in reversed(self._flow()):
            reversed_out.extend(reversed_engine.feed(e))
        assert len(sorted_out) == len(reversed_out) == 3
        key = lambda c: (c.t_start, c.t_end, c.mmsis)  # noqa: E731
        assert sorted(map(key, sorted_out)) == sorted(map(key, reversed_out))
        # Matched steps are reported in start-time order either way.
        for complex_event in reversed_out:
            steps = complex_event.details["steps"]
            assert steps == sorted(
                steps, key=lambda s: float(s.split("t=")[1].split("..")[0])
            )

    def test_shuffled_feeds_are_order_insensitive(self):
        import itertools

        expected = None
        for order in itertools.permutations(self._flow()):
            engine = CepEngine([DARK_RDV])
            out = []
            for e in order:
                out.extend(engine.feed(e))
            got = sorted((c.t_start, c.t_end, c.mmsis) for c in out)
            if expected is None:
                expected = got
            assert got == expected

    def test_duplicates_do_not_double_match(self):
        engine = CepEngine([DARK_RDV])
        gap = event(EventKind.GAP, 0.0, (1,))
        rdv = event(EventKind.RENDEZVOUS, 600.0, (1, 2))
        out = []
        for e in (gap, gap, rdv, rdv, gap):
            out.extend(engine.feed(e))
        assert len(out) == 1

    def test_late_arrival_completes_pattern(self):
        """A first step discovered after the second (gap reported when the
        silence *ends*) still completes the match on arrival."""
        engine = CepEngine([DARK_RDV])
        assert engine.feed(event(EventKind.RENDEZVOUS, 600.0, (1, 2))) == []
        completed = engine.feed(event(EventKind.GAP, 0.0, (1,)))
        assert len(completed) == 1
        assert completed[0].t_start == 0.0

    def test_expire_bounds_state_and_blocks_stale_matches(self):
        engine = CepEngine([DARK_RDV])
        engine.feed(event(EventKind.GAP, 0.0, (1,)))
        assert engine.buffered() == 1
        engine.expire(low_watermark=10_000.0)
        assert engine.buffered() == 0
        # The evicted gap can no longer anchor a (stale) match.
        assert engine.feed(event(EventKind.RENDEZVOUS, 600.0, (1, 2))) == []

    def test_per_pattern_lateness_overrides_default(self):
        """A short-lateness pattern evicts its buffers early while a
        long-lateness twin still matches the same late discovery."""
        def pattern(name, lateness_s):
            return SequencePattern(
                name=name,
                sequence=(EventKind.GAP, EventKind.RENDEZVOUS),
                window_s=3600.0,
                max_radius_m=50_000.0,
                lateness_s=lateness_s,
            )

        engine = CepEngine(
            [pattern("impatient", 600.0), pattern("patient", 14_400.0)]
        )
        engine.feed(event(EventKind.GAP, 0.0, (1,)))
        # Watermark 5000: the impatient pattern's horizon is
        # 5000 - 600 - 3600 = 800 > 0 (gap evicted); the patient one's is
        # 5000 - 14400 - 3600 < 0 (gap retained).
        engine.expire(5000.0, default_lateness_s=0.0)
        completed = engine.feed(event(EventKind.RENDEZVOUS, 900.0, (1, 2)))
        assert [c.details["pattern"] for c in completed] == ["patient"]

    def test_default_lateness_applies_when_pattern_has_none(self):
        engine = CepEngine([DARK_RDV])  # lateness_s=None
        engine.feed(event(EventKind.GAP, 0.0, (1,)))
        engine.expire(5000.0, default_lateness_s=7200.0)
        assert engine.buffered() == 1  # 5000 - 7200 - 3600 < 0: retained
        engine.expire(5000.0, default_lateness_s=0.0)
        assert engine.buffered() == 0

    def test_negative_lateness_rejected(self):
        with pytest.raises(ValueError):
            SequencePattern(
                name="bad",
                sequence=(EventKind.GAP, EventKind.RENDEZVOUS),
                window_s=3600.0,
                lateness_s=-1.0,
            )

    def test_three_step_out_of_order(self):
        pattern = SequencePattern(
            name="triple",
            sequence=(EventKind.GAP, EventKind.LOITERING, EventKind.GAP),
            window_s=7200.0,
        )
        engine = CepEngine([pattern])
        out = []
        for e in (
            event(EventKind.GAP, 2000.0),
            event(EventKind.GAP, 0.0),
            event(EventKind.LOITERING, 1000.0),
        ):
            out.extend(engine.feed(e))
        assert len(out) == 1
        assert len(out[0].details["steps"]) == 3
