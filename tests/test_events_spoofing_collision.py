"""Tests for spoofing indicators and collision-risk screening."""

import pytest

from repro.events import (
    CollisionRiskConfig,
    EventKind,
    detect_collision_risk,
    detect_identity_clashes,
    detect_teleports,
)
from repro.trajectory.points import TrackPoint


class TestTeleports:
    def test_spoof_jump_detected(self):
        fixes = {
            1: [
                TrackPoint(0.0, 48.0, -5.0),
                TrackPoint(10.0, 48.001, -5.0),
                TrackPoint(20.0, 48.5, -5.0),  # 55 km in 10 s
            ]
        }
        events = detect_teleports(fixes)
        assert len(events) == 1
        assert events[0].kind is EventKind.TELEPORT
        assert events[0].details["implied_speed_knots"] > 1000.0

    def test_normal_track_clean(self):
        fixes = {
            1: [TrackPoint(i * 10.0, 48.0 + i * 5e-4, -5.0) for i in range(20)]
        }
        assert detect_teleports(fixes) == []

    def test_small_noise_jump_ignored(self):
        """A 200 m hop in 1 s is implausible but below min_jump_m: noise."""
        fixes = {
            1: [TrackPoint(0.0, 48.0, -5.0), TrackPoint(1.0, 48.002, -5.0)]
        }
        assert detect_teleports(fixes) == []

    def test_unsorted_input_handled(self):
        fixes = {
            1: [
                TrackPoint(20.0, 48.5, -5.0),
                TrackPoint(0.0, 48.0, -5.0),
                TrackPoint(10.0, 48.001, -5.0),
            ]
        }
        assert len(detect_teleports(fixes)) == 1


class TestIdentityClash:
    def test_two_transmitters_detected(self):
        # The same MMSI alternating between Brest and 50 km offshore.
        fixes = {7: []}
        for i in range(20):
            fixes[7].append(TrackPoint(i * 10.0, 48.38, -4.49))
            fixes[7].append(TrackPoint(i * 10.0 + 5.0, 48.0, -5.5))
        events = detect_identity_clashes(fixes)
        assert events
        assert events[0].kind is EventKind.IDENTITY_CLASH
        assert events[0].details["separation_m"] > 10_000.0

    def test_episodes_deduplicated(self):
        fixes = {7: []}
        for i in range(100):
            fixes[7].append(TrackPoint(i * 10.0, 48.38, -4.49))
            fixes[7].append(TrackPoint(i * 10.0 + 5.0, 48.0, -5.5))
        events = detect_identity_clashes(fixes)
        # 1000 s of clashing split into ~10-minute episodes, not 100 events.
        assert 1 <= len(events) <= 3

    def test_single_transmitter_clean(self):
        fixes = {
            7: [TrackPoint(i * 10.0, 48.0 + i * 5e-4, -5.0) for i in range(50)]
        }
        assert detect_identity_clashes(fixes) == []


class TestCollisionRisk:
    def states(self, **kwargs):
        base = {
            1: TrackPoint(0.0, 0.0, 0.0, 10.0, 90.0),
            2: TrackPoint(0.0, 0.0, 0.05, 10.0, 270.0),  # head-on, ~5.5 km
        }
        base.update(kwargs)
        return base

    def test_head_on_flagged(self):
        events = detect_collision_risk(self.states())
        assert len(events) == 1
        event = events[0]
        assert event.kind is EventKind.COLLISION_RISK
        assert event.details["dcpa_m"] < 100.0
        assert 0.0 < event.details["tcpa_s"] < 1200.0

    def test_diverging_not_flagged(self):
        states = {
            1: TrackPoint(0.0, 0.0, 0.0, 10.0, 270.0),
            2: TrackPoint(0.0, 0.0, 0.05, 10.0, 90.0),
        }
        assert detect_collision_risk(states) == []

    def test_stationary_pairs_skipped(self):
        states = {
            1: TrackPoint(0.0, 48.381, -4.491, 0.1, 0.0),
            2: TrackPoint(0.0, 48.3812, -4.4912, 0.1, 0.0),
        }
        assert detect_collision_risk(states) == []

    def test_far_pairs_screened_out(self):
        states = {
            1: TrackPoint(0.0, 0.0, 0.0, 10.0, 90.0),
            2: TrackPoint(0.0, 10.0, 10.0, 10.0, 270.0),
        }
        assert detect_collision_risk(states) == []

    def test_safe_crossing_below_threshold(self):
        config = CollisionRiskConfig(dcpa_alarm_m=100.0)
        states = {
            1: TrackPoint(0.0, 0.0, 0.0, 10.0, 0.0),
            2: TrackPoint(0.0, 0.05, 0.1, 10.0, 270.0),
        }
        events = detect_collision_risk(states, config)
        for event in events:
            assert event.details["dcpa_m"] <= 100.0

    def test_antimeridian_pair_screened_in(self):
        """The 20 km screen must not treat lon ±180° as 360° apart."""
        states = {
            1: TrackPoint(0.0, 0.0, 179.99, 10.0, 90.0),
            2: TrackPoint(0.0, 0.0, -179.99, 10.0, 270.0),  # head-on
        }
        events = detect_collision_risk(states)
        assert len(events) == 1

    def test_antimeridian_midpoint_on_seam(self):
        """Regression: the naive lon average put this event near lon 0,
        half a world from both vessels."""
        states = {
            1: TrackPoint(0.0, 10.0, 179.98, 10.0, 90.0),
            2: TrackPoint(0.0, 10.0, -179.98, 10.0, 270.0),
        }
        events = detect_collision_risk(states)
        assert len(events) == 1
        event = events[0]
        assert abs(abs(event.lon) - 180.0) < 0.05
        assert event.lat == pytest.approx(10.0)
