"""Property-based tests for the geodesy substrate (hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.geo import (
    EARTH_RADIUS_M,
    BoundingBox,
    angular_difference_deg,
    destination_point,
    geohash_decode,
    geohash_encode,
    haversine_m,
    initial_bearing_deg,
    interpolate_fraction,
    normalize_course,
    normalize_lon,
    LocalTangentPlane,
)

lat_strategy = st.floats(min_value=-85.0, max_value=85.0)
lon_strategy = st.floats(min_value=-180.0, max_value=180.0)
bearing_strategy = st.floats(min_value=0.0, max_value=360.0)
distance_strategy = st.floats(min_value=0.0, max_value=2_000_000.0)


class TestDistanceProperties:
    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        d_ab = haversine_m(lat1, lon1, lat2, lon2)
        d_ba = haversine_m(lat2, lon2, lat1, lon1)
        assert math.isclose(d_ab, d_ba, rel_tol=1e-9, abs_tol=1e-6)

    @given(lat_strategy, lon_strategy)
    def test_identity(self, lat, lon):
        assert haversine_m(lat, lon, lat, lon) == 0.0

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    def test_bounded_by_half_circumference(self, lat1, lon1, lat2, lon2):
        d = haversine_m(lat1, lon1, lat2, lon2)
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_M * 1.0000001

    @given(
        lat_strategy, lon_strategy, lat_strategy, lon_strategy,
        lat_strategy, lon_strategy,
    )
    @settings(max_examples=200)
    def test_triangle_inequality(self, lat1, lon1, lat2, lon2, lat3, lon3):
        d_ac = haversine_m(lat1, lon1, lat3, lon3)
        d_ab = haversine_m(lat1, lon1, lat2, lon2)
        d_bc = haversine_m(lat2, lon2, lat3, lon3)
        assert d_ac <= d_ab + d_bc + 1e-6


class TestDestinationProperties:
    @given(lat_strategy, lon_strategy, bearing_strategy, distance_strategy)
    def test_roundtrip_distance(self, lat, lon, bearing, distance):
        lat2, lon2 = destination_point(lat, lon, bearing, distance)
        back = haversine_m(lat, lon, lat2, lon2)
        assert math.isclose(back, distance, rel_tol=1e-6, abs_tol=0.5)

    @given(
        lat_strategy, lon_strategy, bearing_strategy,
        st.floats(min_value=1000.0, max_value=1_000_000.0),
    )
    def test_roundtrip_bearing(self, lat, lon, bearing, distance):
        lat2, lon2 = destination_point(lat, lon, bearing, distance)
        recovered = initial_bearing_deg(lat, lon, lat2, lon2)
        assert angular_difference_deg(recovered, bearing) < 0.01

    @given(lat_strategy, lon_strategy, bearing_strategy, distance_strategy)
    def test_output_in_range(self, lat, lon, bearing, distance):
        lat2, lon2 = destination_point(lat, lon, bearing, distance)
        assert -90.0 <= lat2 <= 90.0
        assert -180.0 <= lon2 <= 180.0


class TestInterpolationProperties:
    @given(
        lat_strategy, lon_strategy, lat_strategy, lon_strategy,
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_point_between_endpoints(self, lat1, lon1, lat2, lon2, fraction):
        total = haversine_m(lat1, lon1, lat2, lon2)
        mid_lat, mid_lon = interpolate_fraction(lat1, lon1, lat2, lon2, fraction)
        d1 = haversine_m(lat1, lon1, mid_lat, mid_lon)
        d2 = haversine_m(mid_lat, mid_lon, lat2, lon2)
        assert d1 + d2 <= total + 1.0  # on the geodesic, no detour

    @given(
        lat_strategy, lon_strategy, lat_strategy, lon_strategy,
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_proportionality(self, lat1, lon1, lat2, lon2, fraction):
        from hypothesis import assume

        total = haversine_m(lat1, lon1, lat2, lon2)
        # Near-antipodal pairs have no unique geodesic; the library picks
        # one deterministically but proportionality is then ill-posed.
        assume(total < 0.999 * math.pi * EARTH_RADIUS_M)
        mid = interpolate_fraction(lat1, lon1, lat2, lon2, fraction)
        d1 = haversine_m(lat1, lon1, *mid)
        assert math.isclose(d1, fraction * total, rel_tol=1e-5, abs_tol=1.0)


class TestNormalisationProperties:
    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_lon_range(self, lon):
        assert -180.0 <= normalize_lon(lon) < 180.0

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_course_range(self, course):
        assert 0.0 <= normalize_course(course) < 360.0

    @given(bearing_strategy, bearing_strategy)
    def test_angular_difference_range(self, a, b):
        assert 0.0 <= angular_difference_deg(a, b) <= 180.0


class TestGeohashProperties:
    @given(lat_strategy, lon_strategy, st.integers(min_value=1, max_value=10))
    def test_decode_contains_point(self, lat, lon, precision):
        geohash = geohash_encode(lat, lon, precision)
        clat, clon, lat_err, lon_err = geohash_decode(geohash)
        assert abs(clat - lat) <= lat_err + 1e-9
        assert abs(clon - lon) <= lon_err + 1e-9

    @given(lat_strategy, lon_strategy, st.integers(min_value=2, max_value=9))
    def test_prefix_refinement(self, lat, lon, precision):
        fine = geohash_encode(lat, lon, precision)
        coarse = geohash_encode(lat, lon, precision - 1)
        assert fine.startswith(coarse)


class TestTangentPlaneProperties:
    @given(
        st.floats(min_value=-80.0, max_value=80.0),
        lon_strategy,
        st.floats(min_value=-0.4, max_value=0.4),
        st.floats(min_value=-0.4, max_value=0.4),
    )
    def test_roundtrip(self, lat0, lon0, dlat, dlon):
        plane = LocalTangentPlane(lat0, lon0)
        lat, lon = lat0 + dlat, normalize_lon(lon0 + dlon)
        x, y = plane.to_xy(lat, lon)
        lat2, lon2 = plane.to_latlon(x, y)
        assert math.isclose(lat, lat2, abs_tol=1e-9)
        assert angular_difference_deg(lon * 2, lon2 * 2) < 1e-6 or math.isclose(
            lon, lon2, abs_tol=1e-9
        )


class TestBoundingBoxProperties:
    @given(lat_strategy, lat_strategy, lon_strategy, lon_strategy,
           lat_strategy, lon_strategy)
    def test_contains_consistent_with_center(
        self, lat_a, lat_b, lon_a, lon_b, probe_lat, probe_lon
    ):
        box = BoundingBox(
            min(lat_a, lat_b), max(lat_a, lat_b),
            min(lon_a, lon_b), max(lon_a, lon_b),
        )
        center_lat, center_lon = box.center
        assert box.contains(center_lat, center_lon)
        if box.contains(probe_lat, probe_lon):
            assert box.intersects(box)
