"""Tests for link discovery between registries."""

import pytest

from repro.storage import LinkageConfig, discover_links, jaro_winkler
from repro.storage.linkage import numeric_similarity


class TestJaroWinkler:
    def test_identity(self):
        assert jaro_winkler("MARTHA", "MARTHA") == 1.0

    def test_empty(self):
        assert jaro_winkler("", "ABC") == 0.0
        assert jaro_winkler("", "") == 1.0

    def test_known_value(self):
        # The canonical MARTHA/MARHTA example ≈ 0.961.
        assert jaro_winkler("MARTHA", "MARHTA") == pytest.approx(0.961, abs=0.01)

    def test_prefix_bonus(self):
        # Same edit, one at the front, one at the back: prefix match wins.
        assert jaro_winkler("ATLANTIC", "ATLANTIX") > jaro_winkler(
            "ATLANTIC", "XTLANTIC"
        )

    def test_symmetry(self):
        assert jaro_winkler("DWAYNE", "DUANE") == pytest.approx(
            jaro_winkler("DUANE", "DWAYNE")
        )

    def test_disjoint(self):
        assert jaro_winkler("AAAA", "BBBB") == 0.0

    def test_range(self):
        for a, b in [("OCEAN STAR", "OCEAN STARR"), ("A", "ABCD"), ("XY", "YX")]:
            assert 0.0 <= jaro_winkler(a, b) <= 1.0


class TestNumericSimilarity:
    def test_equal(self):
        assert numeric_similarity(100.0, 100.0, 10.0) == 1.0

    def test_linear_falloff(self):
        assert numeric_similarity(100.0, 105.0, 10.0) == pytest.approx(0.5)

    def test_beyond_tolerance(self):
        assert numeric_similarity(100.0, 200.0, 10.0) == 0.0

    def test_missing_neutral(self):
        assert numeric_similarity(None, 100.0, 10.0) == 0.5


def record(id, name, callsign, imo, length, flag):
    return {
        "id": id, "name": name, "callsign": callsign,
        "imo": imo, "length_m": length, "flag": flag,
    }


class TestDiscoverLinks:
    def test_exact_match_links(self):
        left = [record(1, "ATLANTIC TRADER", "FABC", 9074729, 180, "FR")]
        right = [record("x", "ATLANTIC TRADER", "FABC", 9074729, 180, "FR")]
        links = discover_links(left, right)
        assert len(links) == 1
        assert links[0].score > 0.95

    def test_slight_differences_still_link(self):
        """§4's example: length differs slightly, flag is stale."""
        left = [record(1, "ATLANTIC TRADER", "FABC", 9074729, 180, "FR")]
        right = [record("x", "ATLANTIC TRADER", "FABC", 9074729, 184, "PA")]
        links = discover_links(left, right)
        assert len(links) == 1

    def test_typo_in_name_links_via_imo(self):
        left = [record(1, "ATLANTIC TRADER", "FABC", 9074729, 180, "FR")]
        right = [record("x", "ATLQNTIC TRADER", "FABC", 9074729, 180, "FR")]
        links = discover_links(left, right)
        assert len(links) == 1

    def test_different_vessels_do_not_link(self):
        left = [record(1, "ATLANTIC TRADER", "FABC", 9074729, 180, "FR")]
        right = [record("y", "PACIFIC STAR", "GXYZ", 1234567, 90, "GB")]
        assert discover_links(left, right) == []

    def test_one_to_one_assignment(self):
        """Two identical-looking right records: only one may link."""
        left = [record(1, "OCEAN WAVE", "FAAA", 9074729, 120, "FR")]
        right = [
            record("a", "OCEAN WAVE", "FAAA", 9074729, 120, "FR"),
            record("b", "OCEAN WAVE", "FAAA", 9074729, 121, "FR"),
        ]
        links = discover_links(left, right)
        assert len(links) == 1

    def test_threshold_respected(self):
        left = [record(1, "OCEAN WAVE", "FAAA", None, 120, "FR")]
        right = [record("a", "OCEAN WAVES", "FBBB", None, 150, "GB")]
        strict = LinkageConfig(accept_threshold=0.9)
        assert discover_links(left, right, strict) == []

    def test_registry_scale_precision_recall(self):
        """End-to-end against the synthetic corrupted registries."""
        from repro.ais.types import ShipType
        from repro.simulation import FleetBuilder
        from repro.semantics import build_registry, corrupt_registry

        builder = FleetBuilder(3)
        specs = [builder.build(ShipType.CARGO) for _ in range(80)]
        left = corrupt_registry(build_registry(specs, "MT"), seed=1)
        right = corrupt_registry(build_registry(specs, "LL"), seed=2)
        links = discover_links(
            [r.as_linkage_dict() for r in left],
            [r.as_linkage_dict() for r in right],
        )
        truth_left = {r.id: r.truth_mmsi for r in left}
        truth_right = {r.id: r.truth_mmsi for r in right}
        correct = sum(
            1 for link in links
            if truth_left[link.left_id] == truth_right[link.right_id]
        )
        precision = correct / len(links)
        recall = correct / len(specs)
        assert precision > 0.95
        assert recall > 0.80
