"""Tests for detection scoring against ground truth."""

from repro.events import Event, EventKind, match_events
from repro.simulation.scenario import TruthEvent


def detection(t=1000.0, mmsis=(1, 2), lat=48.0, lon=-5.0):
    return Event(
        kind=EventKind.RENDEZVOUS, t_start=t, t_end=t + 600.0,
        mmsis=mmsis, lat=lat, lon=lon,
    )


def truth(t=1000.0, mmsis=(1, 2), lat=48.0, lon=-5.0, kind="rendezvous"):
    return TruthEvent(
        kind=kind, mmsis=mmsis, t_start=t, t_end=t + 600.0, lat=lat, lon=lon
    )


class TestMatching:
    def test_perfect_match(self):
        score = match_events([detection()], [truth()], "rendezvous")
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_miss(self):
        score = match_events([], [truth()], "rendezvous")
        assert score.recall == 0.0
        assert score.n_truth == 1

    def test_false_positive(self):
        score = match_events(
            [detection(t=90_000.0)], [truth()], "rendezvous"
        )
        assert score.precision == 0.0
        assert score.recall == 0.0

    def test_time_slack(self):
        score = match_events(
            [detection(t=1500.0)], [truth(t=1000.0)], "rendezvous",
            time_slack_s=600.0,
        )
        assert score.recall == 1.0

    def test_distance_gate(self):
        score = match_events(
            [detection(lat=49.0)], [truth(lat=48.0)], "rendezvous",
            distance_slack_m=10_000.0,
        )
        assert score.recall == 0.0

    def test_vessel_overlap_required(self):
        score = match_events(
            [detection(mmsis=(7, 8))], [truth(mmsis=(1, 2))], "rendezvous"
        )
        assert score.recall == 0.0
        relaxed = match_events(
            [detection(mmsis=(7, 8))], [truth(mmsis=(1, 2))], "rendezvous",
            require_vessel_overlap=False,
        )
        assert relaxed.recall == 1.0

    def test_multiple_detections_one_truth(self):
        """Repeat detections of one event: full precision, recall counts
        the truth event once."""
        detections = [detection(t=1000.0), detection(t=1100.0)]
        score = match_events(detections, [truth()], "rendezvous")
        assert score.precision == 1.0
        assert score.truth_found == 1
        assert score.recall == 1.0

    def test_kind_filtering(self):
        score = match_events(
            [detection()], [truth(kind="dark")], "rendezvous"
        )
        assert score.n_truth == 0
        assert score.recall == 0.0

    def test_f1_zero_when_empty(self):
        score = match_events([], [], "rendezvous")
        assert score.f1 == 0.0
