"""Tests for window operators."""

import pytest

from repro.streaming import (
    Record,
    Stream,
    session_windows,
    sliding_windows,
    tumbling_windows,
)


def keyed(times, key="k"):
    return Stream(Record(float(t), key, t) for t in times)


class TestTumbling:
    def test_alignment(self):
        out = tumbling_windows(keyed([0, 5, 9, 10, 15, 21]), 10.0).collect()
        spans = [(r.value.t_start, r.value.t_end) for r in out]
        assert spans == [(0.0, 10.0), (10.0, 20.0), (20.0, 30.0)]

    def test_contents(self):
        out = tumbling_windows(keyed([0, 5, 9, 10]), 10.0).collect()
        assert out[0].value.values == [0, 5, 9]
        assert out[1].value.values == [10]

    def test_keys_independent(self):
        mixed = Stream(
            [Record(0.0, "a", 1), Record(1.0, "b", 2), Record(11.0, "a", 3)]
        )
        out = tumbling_windows(mixed, 10.0).collect()
        keys = [(r.key, len(r.value)) for r in out]
        assert ("a", 1) in keys and ("b", 1) in keys

    def test_final_flush(self):
        out = tumbling_windows(keyed([3]), 10.0).collect()
        assert len(out) == 1

    def test_bad_size(self):
        with pytest.raises(ValueError):
            tumbling_windows(keyed([1]), 0.0).collect()


class TestSliding:
    def test_overlap(self):
        out = sliding_windows(keyed(range(0, 30)), 20.0, 10.0).collect()
        # Every record should appear in up to two windows.
        total = sum(len(r.value) for r in out)
        assert total > 30

    def test_window_spans(self):
        out = sliding_windows(keyed(range(0, 25)), 20.0, 10.0).collect()
        for r in out:
            assert r.value.t_end - r.value.t_start == pytest.approx(20.0)
            for inner in r.value.records:
                assert r.value.t_start <= inner.t < r.value.t_end

    def test_slide_must_not_exceed_size(self):
        with pytest.raises(ValueError):
            sliding_windows(keyed([1]), 10.0, 20.0).collect()


class TestSession:
    def test_gap_splits_sessions(self):
        out = session_windows(keyed([0, 1, 2, 50, 51, 100]), 10.0).collect()
        spans = [(r.value.t_start, r.value.t_end) for r in out]
        assert spans == [(0.0, 2.0), (50.0, 51.0), (100.0, 100.0)]

    def test_continuous_single_session(self):
        out = session_windows(keyed(range(0, 100, 5)), 10.0).collect()
        assert len(out) == 1
        assert len(out[0].value) == 20

    def test_per_key_sessions(self):
        mixed = Stream(
            [
                Record(0.0, "a", 1), Record(2.0, "b", 2),
                Record(30.0, "a", 3), Record(4.0, "b", 4),
            ]
        )
        out = session_windows(mixed, 10.0).collect()
        a_sessions = [r for r in out if r.key == "a"]
        b_sessions = [r for r in out if r.key == "b"]
        assert len(a_sessions) == 2
        assert len(b_sessions) == 1

    def test_session_emission_time_is_gap_expiry(self):
        out = session_windows(keyed([0, 1, 2, 50]), 10.0).collect()
        assert out[0].t == pytest.approx(12.0)  # last event + gap
