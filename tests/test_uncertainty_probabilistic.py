"""Tests for probabilistic relations and open-world evaluation."""

import pytest

from repro.uncertainty import (
    OpenWorldRelation,
    PossibilityInterval,
    ProbabilisticRelation,
    ProbabilisticTuple,
)
from repro.uncertainty.openworld import unobserved_pair_candidates


class TestProbabilisticRelation:
    def make(self):
        r = ProbabilisticRelation()
        r.add({"vessel": 1, "zone": "A"}, 0.9)
        r.add({"vessel": 2, "zone": "A"}, 0.5)
        r.add({"vessel": 3, "zone": "B"}, 0.8)
        return r

    def test_tuple_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticTuple("x", 1.5)

    def test_select_keeps_probabilities(self):
        out = self.make().select(lambda v: v["zone"] == "A")
        assert len(out) == 2
        assert {t.p for t in out} == {0.9, 0.5}

    def test_probability_exists_noisy_or(self):
        r = self.make()
        p = r.probability_exists(lambda v: v["zone"] == "A")
        assert p == pytest.approx(1.0 - 0.1 * 0.5)

    def test_probability_exists_no_match(self):
        assert self.make().probability_exists(lambda v: False) == 0.0

    def test_expected_count(self):
        assert self.make().expected_count() == pytest.approx(2.2)

    def test_project_noisy_or_merges(self):
        out = self.make().project(lambda v: v["zone"])
        by_zone = {t.value: t.p for t in out}
        assert by_zone["A"] == pytest.approx(1.0 - 0.1 * 0.5)
        assert by_zone["B"] == pytest.approx(0.8)

    def test_join_multiplies(self):
        left = ProbabilisticRelation([ProbabilisticTuple("a", 0.5)])
        right = ProbabilisticRelation([ProbabilisticTuple("a", 0.4)])
        joined = left.join(right, on=lambda l, r: l == r)
        assert joined.tuples[0].p == pytest.approx(0.2)

    def test_top_k(self):
        top = self.make().top_k(2)
        assert [t.p for t in top] == [0.9, 0.8]


class TestPossibilityInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            PossibilityInterval(0.7, 0.3)
        with pytest.raises(ValueError):
            PossibilityInterval(-0.1, 0.5)

    def test_width(self):
        assert PossibilityInterval(0.2, 0.7).width == pytest.approx(0.5)

    def test_flags(self):
        assert PossibilityInterval(0.0, 0.3).possible
        assert not PossibilityInterval(0.0, 0.0).possible
        assert PossibilityInterval(1.0, 1.0).certain


class TestOpenWorld:
    def test_closed_world_is_lower_bound(self):
        r = ProbabilisticRelation([ProbabilisticTuple("rdv", 0.6)])
        ow = OpenWorldRelation(r, completion_lambda=0.1)
        interval = ow.probability_exists(lambda v: v == "rdv", n_unobserved=0)
        assert interval.lower == interval.upper == pytest.approx(0.6)

    def test_unobserved_widens_upper(self):
        r = ProbabilisticRelation([ProbabilisticTuple("rdv", 0.6)])
        ow = OpenWorldRelation(r, completion_lambda=0.1)
        interval = ow.probability_exists(lambda v: v == "rdv", n_unobserved=5)
        assert interval.lower == pytest.approx(0.6)
        assert interval.upper == pytest.approx(1.0 - 0.4 * 0.9**5)

    def test_empty_database_still_possible(self):
        """§4's punchline: no recorded rendezvous does NOT mean none
        happened."""
        ow = OpenWorldRelation(ProbabilisticRelation(), completion_lambda=0.05)
        interval = ow.probability_exists(lambda v: True, n_unobserved=66)
        assert interval.lower == 0.0
        assert interval.upper > 0.9

    def test_lambda_zero_is_closed_world(self):
        ow = OpenWorldRelation(ProbabilisticRelation(), completion_lambda=0.0)
        interval = ow.probability_exists(lambda v: True, n_unobserved=100)
        assert interval.upper == 0.0

    def test_expected_count_bounds(self):
        r = ProbabilisticRelation([ProbabilisticTuple("rdv", 0.5)])
        ow = OpenWorldRelation(r, completion_lambda=0.1)
        lo, hi = ow.expected_count(lambda v: True, n_unobserved=10)
        assert lo == pytest.approx(0.5)
        assert hi == pytest.approx(1.5)

    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            OpenWorldRelation(ProbabilisticRelation(), completion_lambda=1.5)

    def test_per_query_lambda_override(self):
        ow = OpenWorldRelation(ProbabilisticRelation(), completion_lambda=0.0)
        interval = ow.probability_exists(
            lambda v: True, n_unobserved=10, completion_lambda=0.2
        )
        assert interval.upper > 0.8


class TestPairCounting:
    def test_pairs(self):
        assert unobserved_pair_candidates(0, 100) == 0
        assert unobserved_pair_candidates(1, 100) == 0
        assert unobserved_pair_candidates(4, 100) == 6
        assert unobserved_pair_candidates(12, 100) == 66
