"""Tests for conflict detection/resolution and reliability estimation."""

from repro.fusion import (
    AttributeConflict,
    detect_conflicts,
    estimate_reliability,
    resolve_majority,
    resolve_most_recent,
    resolve_weighted,
)


def registries(**entities):
    """Build records_by_source from {entity: {source: attrs}}."""
    out: dict[str, dict] = {}
    for entity_id, by_source in entities.items():
        for source, attrs in by_source.items():
            out.setdefault(source, {})[entity_id] = attrs
    return out


class TestDetect:
    def test_flag_conflict_detected(self):
        data = registries(
            v1={"MT": {"flag": "FR"}, "LL": {"flag": "PA"}},
        )
        conflicts = detect_conflicts(data, ["flag"])
        assert len(conflicts) == 1
        assert conflicts[0].attribute == "flag"
        assert conflicts[0].distinct_values == {"FR", "PA"}

    def test_agreement_no_conflict(self):
        data = registries(v1={"MT": {"flag": "FR"}, "LL": {"flag": "FR"}})
        assert detect_conflicts(data, ["flag"]) == []

    def test_numeric_tolerance(self):
        """§4: 'the length may differ slightly' — within tolerance is not
        a conflict."""
        data = registries(
            v1={"MT": {"length_m": 180.0}, "LL": {"length_m": 183.0}},
            v2={"MT": {"length_m": 180.0}, "LL": {"length_m": 230.0}},
        )
        conflicts = detect_conflicts(
            data, ["length_m"], numeric_tolerance={"length_m": 10.0}
        )
        assert [c.entity_id for c in conflicts] == ["v2"]

    def test_missing_values_not_conflicting(self):
        data = registries(
            v1={"MT": {"flag": "FR"}, "LL": {"flag": ""}},
            v2={"MT": {"flag": None}, "LL": {"flag": "PA"}},
        )
        assert detect_conflicts(data, ["flag"]) == []

    def test_entity_in_one_source_only(self):
        data = registries(v1={"MT": {"flag": "FR"}})
        assert detect_conflicts(data, ["flag"]) == []


class TestResolve:
    def conflict(self, values):
        return AttributeConflict("v1", "flag", values)

    def test_majority(self):
        c = self.conflict({"A": "FR", "B": "FR", "C": "PA"})
        assert resolve_majority(c) == "FR"

    def test_majority_tie_deterministic(self):
        c = self.conflict({"A": "FR", "B": "PA"})
        assert resolve_majority(c) == resolve_majority(c)

    def test_weighted_prefers_reliable_source(self):
        c = self.conflict({"A": "FR", "B": "PA", "C": "PA"})
        # A is near-perfect; B and C are junk.
        assert resolve_weighted(c, {"A": 0.95, "B": 0.2, "C": 0.2}) == "FR"

    def test_weighted_unknown_source_neutral(self):
        c = self.conflict({"A": "FR", "B": "PA"})
        assert resolve_weighted(c, {"A": 0.9}) == "FR"  # 0.9 vs default 0.5

    def test_most_recent(self):
        c = self.conflict({"A": "FR", "B": "PA"})
        assert resolve_most_recent(c, {"A": 100.0, "B": 200.0}) == "PA"

    def test_weighted_beats_majority_with_degraded_source(self):
        """E5's shape: when two sources copy each other's stale value, the
        reliability-weighted vote recovers the truth that majority loses."""
        c = self.conflict({"good": "FR", "stale1": "PA", "stale2": "PA"})
        assert resolve_majority(c) == "PA"  # majority is wrong
        weighted = resolve_weighted(
            c, {"good": 0.98, "stale1": 0.3, "stale2": 0.3}
        )
        assert weighted == "FR"


class TestReliability:
    def test_accurate_source_scores_high(self):
        reports = {
            "good": [(float(t), 48.0 + t * 1e-5, -5.0) for t in range(20)],
            "bad": [(float(t), 48.0 + t * 1e-5 + 0.05, -5.0) for t in range(20)],
        }
        truth = lambda t: (48.0 + t * 1e-5, -5.0)
        out = estimate_reliability(reports, truth, scale_m=500.0)
        assert out["good"].reliability > 0.9
        assert out["bad"].reliability < 0.1
        assert out["good"].n_comparisons == 20

    def test_no_overlap_neutral(self):
        out = estimate_reliability({"s": [(0.0, 48.0, -5.0)]}, lambda t: None)
        assert out["s"].reliability == 0.5
