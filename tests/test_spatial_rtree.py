"""Tests for the STR R-tree backend and backend interchangeability.

The load-bearing property: whatever the fleet looks like — random,
clustered, antimeridian-straddling, polar — the R-tree answers every
query with exactly the same result set as the grid backend and as
brute-force haversine enumeration.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import haversine_m, normalize_lon
from repro.spatial import (
    GridIndex,
    MutableSpatialIndex,
    STRTree,
    SpatialIndex,
    build_index,
)


def brute_pairs(points, distance_m):
    found = set()
    for i in range(len(points)):
        pid, lat, lon = points[i]
        for qid, qlat, qlon in points[i + 1 :]:
            if haversine_m(lat, lon, qlat, qlon) <= distance_m:
                found.add(frozenset((pid, qid)))
    return found


def scatter(rng, n, lat_c, lon_c, spread_deg):
    lon_spread = spread_deg / max(0.05, math.cos(math.radians(lat_c)))
    return [
        (
            i,
            min(90.0, max(-90.0, lat_c + rng.uniform(-spread_deg, spread_deg))),
            normalize_lon(lon_c + rng.uniform(-lon_spread, lon_spread)),
        )
        for i in range(n)
    ]


class TestBasics:
    def test_protocol_conformance(self):
        assert isinstance(STRTree([]), SpatialIndex)
        assert not isinstance(STRTree([]), MutableSpatialIndex)
        assert isinstance(GridIndex(100.0), MutableSpatialIndex)

    def test_introspection(self):
        tree = STRTree([("a", 48.0, -5.0), ("b", 10.0, 120.0)])
        assert len(tree) == 2
        assert "a" in tree and "c" not in tree
        assert list(tree.ids()) == ["a", "b"]
        assert tree.position("b") == (10.0, 120.0)

    def test_duplicate_ids_upsert(self):
        tree = STRTree([("a", 48.0, -5.0), ("a", 10.0, 120.0)])
        assert len(tree) == 1
        assert tree.position("a") == (10.0, 120.0)
        assert {i for i, __ in tree.radius_query(10.0, 120.0, 1.0)} == {"a"}

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            STRTree([], leaf_capacity=1)

    def test_empty_and_singleton(self):
        empty = STRTree([])
        assert list(empty.radius_query(0.0, 0.0, 1e6)) == []
        assert empty.knn(0.0, 0.0, 3) == []
        assert list(empty.all_pairs_within(1e6)) == []
        one = STRTree([("only", 5.0, 5.0)])
        assert one.knn(0.0, 0.0, 3) == [
            ("only", haversine_m(0.0, 0.0, 5.0, 5.0))
        ]
        assert list(one.all_pairs_within(1e9)) == []

    def test_radius_query_inclusive_and_exact(self):
        tree = STRTree([(1, 0.0, 0.0), (2, 0.0, 0.01)])
        hits = dict(tree.radius_query(0.0, 0.0, 1500.0))
        assert set(hits) == {1, 2}
        assert hits[1] == 0.0
        assert hits[2] == pytest.approx(
            haversine_m(0.0, 0.0, 0.0, 0.01), abs=1e-6
        )

    def test_knn_matches_grid_ordering(self):
        points = [(i, 0.0, 0.001 * i) for i in range(10)]
        tree = STRTree(points)
        grid = GridIndex.from_points(points, 1000.0)
        assert [i for i, __ in tree.knn(0.0, 0.0, 3)] == [0, 1, 2]
        assert tree.knn(0.0, 0.0, 0) == []
        assert [i for i, __ in tree.knn(0.0, 0.0, 50)] == [
            i for i, __ in grid.knn(0.0, 0.0, 50)
        ]

    def test_knn_reaches_far_items(self):
        tree = STRTree([("far", 1.0, 1.0), ("farther", -2.0, 3.0)])
        assert [i for i, __ in tree.knn(0.0, 0.0, 2)] == ["far", "farther"]


class TestAntimeridianAndPoles:
    def test_pair_across_seam_found(self):
        tree = STRTree([(1, 10.0, 179.999), (2, 10.0, -179.999)])
        pairs = list(tree.all_pairs_within(500.0))
        assert [(a, b) for a, b, __ in pairs] == [(1, 2)]
        assert pairs[0][2] == pytest.approx(
            haversine_m(10.0, 179.999, 10.0, -179.999), abs=1e-6
        )

    def test_radius_query_across_seam(self):
        tree = STRTree([("west", 0.0, -179.995), ("east", 0.0, 179.995)])
        assert {i for i, __ in tree.radius_query(0.0, 180.0, 2000.0)} == {
            "west",
            "east",
        }

    def test_pole_cap(self):
        tree = STRTree([(1, 89.999, 0.0), (2, 89.999, 180.0)])
        dist = haversine_m(89.999, 0.0, 89.999, 180.0)
        assert [p[:2] for p in tree.all_pairs_within(dist + 1.0)] == [(1, 2)]


# Fleet shapes for the equivalence suite: (lat_c, lon_c, spread_deg,
# distance_m) covering mid-latitude, seam-straddling and polar cases.
FLEETS = [
    (0, 48.0, -5.0, 0.5, 2_000.0),
    (1, 0.0, 180.0, 2.0, 20_000.0),
    (2, 78.0, 179.9, 1.0, 500.0),
    (3, -62.0, -179.95, 0.8, 5_000.0),
    (4, 85.0, 10.0, 3.0, 10_000.0),
    (5, 45.0, 180.0, 0.1, 700.0),
]


class TestBackendsAgree:
    """R-tree == grid == brute force, query for query (satellite #4)."""

    @pytest.mark.parametrize("seed,lat_c,lon_c,spread_deg,distance_m", FLEETS)
    def test_all_pairs_identical(self, seed, lat_c, lon_c, spread_deg, distance_m):
        rng = random.Random(seed)
        points = scatter(rng, 250, lat_c, lon_c, spread_deg)
        grid = GridIndex.from_points(points, cell_size_m=distance_m)
        tree = STRTree(points)
        want = brute_pairs(points, distance_m)
        got_grid = {
            frozenset((a, b)) for a, b, __ in grid.all_pairs_within(distance_m)
        }
        got_tree = {
            frozenset((a, b)) for a, b, __ in tree.all_pairs_within(distance_m)
        }
        assert got_grid == want
        assert got_tree == want

    @pytest.mark.parametrize("seed,lat_c,lon_c,spread_deg,distance_m", FLEETS)
    def test_radius_sets_identical(self, seed, lat_c, lon_c, spread_deg, distance_m):
        rng = random.Random(seed + 100)
        points = scatter(rng, 150, lat_c, lon_c, spread_deg)
        grid = GridIndex.from_points(points, cell_size_m=distance_m)
        tree = STRTree(points)
        for __, q_lat, q_lon in points[:10]:
            grid_hits = dict(grid.radius_query(q_lat, q_lon, distance_m))
            tree_hits = dict(tree.radius_query(q_lat, q_lon, distance_m))
            assert set(grid_hits) == set(tree_hits)
            for item, dist in grid_hits.items():
                assert tree_hits[item] == pytest.approx(dist, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        lat_c=st.floats(min_value=-89.0, max_value=89.0),
        lon_c=st.floats(min_value=-180.0, max_value=180.0),
        distance_m=st.floats(min_value=50.0, max_value=50_000.0),
    )
    def test_property_pairs_match_brute_force(
        self, seed, lat_c, lon_c, distance_m
    ):
        rng = random.Random(seed)
        spread_deg = distance_m / 111_194.9 * rng.uniform(0.5, 4.0)
        points = scatter(rng, 60, lat_c, lon_c, spread_deg)
        tree = STRTree(points, leaf_capacity=rng.choice([4, 16, 64]))
        got = {frozenset((a, b)) for a, b, __ in tree.all_pairs_within(distance_m)}
        assert got == brute_pairs(points, distance_m)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        lat_c=st.floats(min_value=-89.0, max_value=89.0),
        radius_m=st.floats(min_value=10.0, max_value=100_000.0),
    )
    def test_property_radius_query_on_seam(self, seed, lat_c, radius_m):
        rng = random.Random(seed)
        points = scatter(rng, 80, lat_c, 179.9, radius_m / 111_194.9 * 2.0)
        tree = STRTree(points)
        q_lat, q_lon = points[0][1], points[0][2]
        got = {i for i, __ in tree.radius_query(q_lat, q_lon, radius_m)}
        want = {
            i
            for i, lat, lon in points
            if haversine_m(q_lat, q_lon, lat, lon) <= radius_m
        }
        assert got == want

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        lat_c=st.floats(min_value=-85.0, max_value=85.0),
        k=st.integers(min_value=1, max_value=12),
    )
    def test_property_knn_matches_grid(self, seed, lat_c, k):
        rng = random.Random(seed)
        points = scatter(rng, 50, lat_c, 179.95, 0.7)
        grid = GridIndex.from_points(points, cell_size_m=5_000.0)
        tree = STRTree(points)
        q_lat, q_lon = lat_c, 180.0
        got = [i for i, __ in tree.knn(q_lat, q_lon, k)]
        want = [i for i, __ in grid.knn(q_lat, q_lon, k)]
        assert got == want

    def test_build_index_honours_hints(self):
        rng = random.Random(9)
        points = scatter(rng, 100, 45.0, 0.0, 1.0)
        assert isinstance(build_index(points, 1000.0, hint="rtree"), STRTree)
        assert isinstance(build_index(points, 1000.0, hint="grid"), GridIndex)
        with pytest.raises(ValueError):
            build_index(points, 1000.0, hint="quadtree")
