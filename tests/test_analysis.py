"""The static invariant checkers (``repro.analysis`` / ``repro analyze``).

Each rule is exercised against fixture snippets under
``tests/analysis_fixtures/`` — one file that violates it, one that
complies — and the whole checker suite must come back clean over the
real source tree with zero unexplained suppressions (the same gate CI
runs via ``repro analyze --strict``).
"""

from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    AnalysisError,
    analyze_paths,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC = Path(__file__).parent.parent / "src" / "repro"


def findings_for(fixture: str, rule: str | None = None):
    report = analyze_paths(
        [FIXTURES / fixture], rules=[rule] if rule else None
    )
    assert not report.broken
    return report


class TestPhaseOwnership:
    def test_violations_flagged(self):
        report = findings_for("phase_bad.py", "phase-ownership")
        messages = [f.message for f in report.errors]
        assert any("declares no ownership manifest" in m for m in messages)
        assert any(
            "writes state.watermark, not in its state_writes" in m
            for m in messages
        )
        assert any(
            "reads state.forecasts, not in its ownership manifest" in m
            for m in messages
        )
        # Barrier-phase shard touches: the annotated parameter, the
        # .shards read, and the loop variable derived from it.
        shard_messages = [m for m in messages if "vessel-phase" in m]
        assert len(shard_messages) >= 3

    def test_clean_fixture_passes(self):
        assert findings_for("phase_ok.py", "phase-ownership").ok

    def test_real_stages_carry_manifests(self):
        report = analyze_paths(
            [SRC / "core" / "stages"], rules=["phase-ownership"]
        )
        assert report.ok, report.render()


class TestSingleWriter:
    def test_second_writer_flagged(self):
        report = findings_for("writers_bad.py", "single-writer")
        assert len(report.errors) == 1
        finding = report.errors[0]
        assert "state.watermark" in finding.message
        assert "SecondStage" in finding.message
        assert "FirstStage" in finding.message

    def test_readers_are_free(self):
        assert findings_for("writers_ok.py", "single-writer").ok


class TestLockDiscipline:
    def test_unlocked_shared_read_flagged(self):
        report = findings_for("locks_bad.py", "lock-discipline")
        assert len(report.errors) == 1
        assert "__len__" in report.errors[0].message
        assert "_queue" in report.errors[0].message

    def test_locked_class_with_allowlist_passes(self):
        assert findings_for("locks_ok.py", "lock-discipline").ok

    def test_threaded_modules_are_clean(self):
        report = analyze_paths(
            [SRC / "sources", SRC / "sinks"], rules=["lock-discipline"]
        )
        assert report.ok, report.render()


class TestCausality:
    def test_peeks_and_mutations_flagged(self):
        report = findings_for("causality_bad.py")
        rules = sorted({f.rule for f in report.errors})
        assert rules == ["causal-lookahead", "config-mutation"]
        lookahead = [
            f for f in report.errors if f.rule == "causal-lookahead"
        ]
        assert len(lookahead) == 3  # private read + 2 tainted helper calls
        mutation = [
            f for f in report.errors if f.rule == "config-mutation"
        ]
        assert len(mutation) == 2

    def test_released_data_and_replace_pass(self):
        assert findings_for("causality_ok.py").ok


class TestSuppressions:
    def test_accounting(self):
        report = findings_for("suppressed.py")
        assert len(report.suppressed) == 2
        reasoned = [
            f for f in report.suppressed
            if f.suppression_reason != "<no reason given>"
        ]
        assert len(reasoned) == 1
        meta = sorted(f.rule for f in report.errors)
        assert meta == ["suppression-reason", "suppression-unused"]

    def test_unused_not_reported_on_partial_runs(self):
        # A single-rule run cannot tell "unused" from "not selected".
        report = findings_for("suppressed.py", "config-mutation")
        assert "suppression-unused" not in {f.rule for f in report.errors}

    def test_suppression_syntax_in_docstrings_is_inert(self):
        # base.py documents the allow() syntax in its docstring; only
        # real comment tokens may register as suppressions.
        report = analyze_paths([SRC / "analysis" / "base.py"])
        assert report.ok, report.render()


class TestWholeTree:
    def test_source_tree_is_clean(self):
        """The CI gate: zero findings, zero unexplained suppressions."""
        report = analyze_paths([SRC])
        assert report.ok, report.render()
        for finding in report.suppressed:
            assert finding.suppression_reason != "<no reason given>"

    def test_unknown_rule_rejected(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            analyze_paths([SRC], rules=["bogus"])

    def test_all_rules_registry(self):
        assert "phase-ownership" in ALL_RULES
        assert "suppression-unused" in ALL_RULES

    def test_broken_file_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = analyze_paths([bad])
        assert not report.ok
        assert report.broken and "syntax error" in report.broken[0][1]


class TestCli:
    def test_strict_fails_on_violations(self, capsys):
        code = main([
            "analyze", "--strict", str(FIXTURES / "locks_bad.py")
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "lock-discipline" in out
        assert "1 finding(s)" in out

    def test_strict_passes_on_clean_input(self, capsys):
        code = main(["analyze", "--strict", str(FIXTURES / "locks_ok.py")])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_non_strict_reports_but_exits_zero(self):
        assert main(["analyze", str(FIXTURES / "locks_bad.py")]) == 0

    def test_rule_filter_and_unknown_rule(self, capsys):
        assert main([
            "analyze", "--rule", "single-writer",
            str(FIXTURES / "locks_bad.py"),
        ]) == 0  # lock finding filtered out
        assert main([
            "analyze", "--rule", "nonsense", str(FIXTURES),
        ]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_default_target_is_installed_package(self, capsys):
        assert main(["analyze", "--strict"]) == 0
        assert "file(s)" in capsys.readouterr().out
