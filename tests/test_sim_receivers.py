"""Tests for the receiver/coverage model."""

import pytest

from repro.ais.types import PositionReport
from repro.simulation.receivers import (
    ReceiverNetwork,
    SatelliteConstellation,
    TerrestrialStation,
)
from repro.simulation.reporting import Transmission


def tx_at(t: float, lat: float, lon: float, mmsi: int = 227000001) -> Transmission:
    return Transmission(
        t=t, lat=lat, lon=lon,
        message=PositionReport(mmsi=mmsi, lat=lat, lon=lon, sog_knots=10.0,
                               cog_deg=0.0),
    )


class TestTerrestrialStation:
    def test_hears_within_range(self):
        station = TerrestrialStation("STA", 48.38, -4.49)
        assert station.hears(48.5, -4.5)  # ~13 km
        assert not station.hears(50.0, -4.5)  # ~180 km

    def test_lossless_station_receives_everything(self):
        station = TerrestrialStation("STA", 48.38, -4.49, loss_probability=0.0)
        network = ReceiverNetwork([station], None, seed=1)
        txs = [tx_at(float(t), 48.4, -4.5) for t in range(100)]
        observations = network.observe(txs)
        assert len(observations) == 100

    def test_loss_rate_applied(self):
        station = TerrestrialStation("STA", 48.38, -4.49, loss_probability=0.5)
        network = ReceiverNetwork([station], None, seed=1)
        txs = [tx_at(float(t), 48.4, -4.5) for t in range(400)]
        observations = network.observe(txs)
        assert 120 <= len(observations) <= 280

    def test_out_of_range_unheard_without_satellite(self):
        station = TerrestrialStation("STA", 48.38, -4.49)
        network = ReceiverNetwork([station], None, seed=1)
        observations = network.observe([tx_at(0.0, 30.0, -40.0)])
        assert observations == []

    def test_latency_applied(self):
        station = TerrestrialStation(
            "STA", 48.38, -4.49, loss_probability=0.0, latency_s=2.5
        )
        network = ReceiverNetwork([station], None, seed=1)
        obs = network.observe([tx_at(100.0, 48.4, -4.5)])[0]
        assert obs.t_received == pytest.approx(102.5)
        assert obs.t_transmitted == 100.0
        assert obs.source == "STA"


class TestSatellite:
    def test_pass_windows_periodic(self):
        sat = SatelliteConstellation(revisit_period_s=1000.0, pass_duration_s=100.0)
        in_pass_count = sum(
            1 for t in range(0, 10_000, 10) if sat.in_pass(float(t), 0.0)
        )
        # 10% duty cycle.
        assert in_pass_count == pytest.approx(100, abs=10)

    def test_phase_varies_with_longitude(self):
        sat = SatelliteConstellation(revisit_period_s=1000.0, pass_duration_s=100.0)
        signatures = set()
        for lon in (-120.0, 0.0, 120.0):
            signatures.add(
                tuple(sat.in_pass(float(t), lon) for t in range(0, 1000, 50))
            )
        assert len(signatures) > 1

    def test_collision_degrades_detection(self):
        sat = SatelliteConstellation()
        assert sat.detection_probability(0) > sat.detection_probability(200)

    def test_open_ocean_coverage_partial(self):
        network = ReceiverNetwork([], SatelliteConstellation(), seed=3)
        txs = [
            tx_at(float(t), 30.0, -40.0, mmsi=227000001 + (t % 5))
            for t in range(0, 20_000, 10)
        ]
        observations = network.observe(txs)
        coverage = network.coverage_fraction(txs, observations)
        # Revisit gaps mean far less than full coverage, but not zero.
        assert 0.02 < coverage < 0.6

    def test_satellite_latency_larger(self):
        network = ReceiverNetwork([], SatelliteConstellation(), seed=3)
        txs = [tx_at(float(t), 30.0, -40.0) for t in range(0, 20_000, 10)]
        observations = network.observe(txs)
        assert observations
        for obs in observations:
            assert obs.t_received - obs.t_transmitted >= 300.0
            assert obs.source == "satellite"


class TestNetworkOrdering:
    def test_observations_sorted_by_reception(self):
        stations = [
            TerrestrialStation("A", 48.38, -4.49, loss_probability=0.0,
                               latency_s=1.0),
        ]
        network = ReceiverNetwork(stations, SatelliteConstellation(), seed=4)
        txs = [tx_at(float(t), 48.4, -4.5) for t in range(0, 1000, 10)]
        txs += [tx_at(float(t), 30.0, -40.0) for t in range(0, 1000, 10)]
        txs.sort(key=lambda tx: tx.t)
        observations = network.observe(txs)
        times = [o.t_received for o in observations]
        assert times == sorted(times)

    def test_terrestrial_preferred_over_satellite(self):
        """In coastal range the observation source is the station."""
        stations = [TerrestrialStation("COAST", 48.38, -4.49,
                                       loss_probability=0.0)]
        network = ReceiverNetwork(stations, SatelliteConstellation(), seed=5)
        observations = network.observe(
            [tx_at(float(t), 48.4, -4.5) for t in range(0, 5000, 10)]
        )
        assert all(o.source == "COAST" for o in observations)
