"""Tests for Kalman filtering and smoothing."""

import random

import pytest

from repro.geo import LocalTangentPlane, haversine_m
from repro.trajectory import CvKalmanFilter, smooth_trajectory
from repro.trajectory.points import TrackPoint, Trajectory


def noisy_straight_track(n=60, dt=10.0, noise_m=30.0, seed=2):
    """Truth: due north at ~19.3 kn; fixes carry Gaussian noise."""
    rng = random.Random(seed)
    truth = []
    noisy = []
    for i in range(n):
        lat = 48.0 + i * dt * 0.9e-5  # ~1 m/s per 1e-5 deg ≈ 10 m/s north
        truth.append((lat, -5.0))
        noisy.append(
            TrackPoint(
                i * dt,
                lat + rng.gauss(0.0, noise_m / 111_195.0),
                -5.0 + rng.gauss(0.0, noise_m / 74_000.0),
                None, None,
            )
        )
    return truth, Trajectory(7, noisy)


class TestFilter:
    def test_initialises_on_first_fix(self):
        plane = LocalTangentPlane(48.0, -5.0)
        kf = CvKalmanFilter(plane)
        state = kf.update(TrackPoint(0.0, 48.0, -5.0))
        assert state.position_m == pytest.approx((0.0, 0.0), abs=1e-6)

    def test_predict_before_init_fails(self):
        kf = CvKalmanFilter(LocalTangentPlane(48.0, -5.0))
        with pytest.raises(RuntimeError):
            kf.predict(10.0)

    def test_predict_into_past_fails(self):
        kf = CvKalmanFilter(LocalTangentPlane(48.0, -5.0))
        kf.update(TrackPoint(100.0, 48.0, -5.0))
        with pytest.raises(ValueError):
            kf.predict(50.0)

    def test_velocity_converges(self):
        truth, track = noisy_straight_track()
        kf = CvKalmanFilter(LocalTangentPlane(48.0, -5.0))
        for point in track:
            state = kf.update(point)
        # Truth speed: 0.9e-5 deg / s * 111195 m/deg ≈ 1.0 m/s.
        assert state.speed_mps == pytest.approx(1.0, abs=0.3)

    def test_uncertainty_grows_with_prediction_horizon(self):
        __, track = noisy_straight_track()
        kf = CvKalmanFilter(LocalTangentPlane(48.0, -5.0))
        for point in track:
            kf.update(point)
        near = kf.predict(track.t_end + 60.0).position_sigma_m()
        far = kf.predict(track.t_end + 1800.0).position_sigma_m()
        assert far > near

    def test_update_shrinks_uncertainty(self):
        __, track = noisy_straight_track()
        kf = CvKalmanFilter(LocalTangentPlane(48.0, -5.0))
        kf.update(track[0])
        sigma_first = kf.state.position_sigma_m()
        for point in track.points[1:20]:
            kf.update(point)
        assert kf.state.position_sigma_m() < sigma_first

    def test_innovation_distance_flags_jump(self):
        __, track = noisy_straight_track()
        kf = CvKalmanFilter(LocalTangentPlane(48.0, -5.0))
        for point in track.points[:20]:
            kf.update(point)
        consistent = TrackPoint(205.0, track[20].lat, track[20].lon)
        jumped = TrackPoint(205.0, track[20].lat + 0.5, track[20].lon)
        assert kf.innovation_distance(jumped) > 10 * kf.innovation_distance(
            consistent
        ) or kf.innovation_distance(jumped) > 50.0


class TestSmoothing:
    def test_smoothing_reduces_noise(self):
        truth, track = noisy_straight_track(noise_m=50.0)
        smoothed = smooth_trajectory(track, measurement_sigma_m=50.0)
        raw_error = 0.0
        smooth_error = 0.0
        # Skip the convergence phase.
        for i in range(20, len(track)):
            true_lat, true_lon = truth[i]
            raw_error += haversine_m(
                track[i].lat, track[i].lon, true_lat, true_lon
            )
            smooth_error += haversine_m(
                smoothed[i].lat, smoothed[i].lon, true_lat, true_lon
            )
        assert smooth_error < raw_error

    def test_smoothing_preserves_structure(self):
        __, track = noisy_straight_track()
        smoothed = smooth_trajectory(track)
        assert len(smoothed) == len(track)
        assert smoothed.mmsi == track.mmsi
        assert [p.t for p in smoothed] == [p.t for p in track]
