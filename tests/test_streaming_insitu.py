"""Tests for the in-situ placement and communication-cost model."""

import pytest

from repro.streaming import (
    CommunicationLedger,
    PlacementPlan,
    ProcessingNode,
    Record,
    Stream,
    compare_placements,
)
from repro.streaming.insitu import Stage


def source(n=100):
    return Stream(Record(float(t), "v", t) for t in range(n))


EDGE = ProcessingNode("edge", uplink_bytes_per_s=1000.0)
CENTRE = ProcessingNode("centre")


def compress_stage(keep_every=10):
    return Stage(
        name="compress",
        transform=lambda s: s.filter(lambda r: int(r.t) % keep_every == 0),
        output_record_bytes=48,
    )


def detect_stage():
    return Stage(
        name="detect",
        transform=lambda s: s.filter(lambda r: r.value % 50 == 0),
        output_record_bytes=96,
    )


class TestLedger:
    def test_local_handoff_free(self):
        ledger = CommunicationLedger()
        ledger.charge("edge", "edge", 1000)
        assert ledger.total_bytes == 0

    def test_accumulates_per_link(self):
        ledger = CommunicationLedger()
        ledger.charge("edge", "centre", 100)
        ledger.charge("edge", "centre", 50)
        assert ledger.bytes_by_link[("edge", "centre")] == 150
        assert ledger.total_records == 2

    def test_transfer_time(self):
        ledger = CommunicationLedger()
        ledger.charge("edge", "centre", 2000)
        assert ledger.transfer_time_s(EDGE) == pytest.approx(2.0)


class TestPlacementPlan:
    def test_all_central_charges_source_records(self):
        plan = PlacementPlan(
            [compress_stage(), detect_stage()],
            {"compress": CENTRE, "detect": CENTRE},
            source_node=EDGE, sink_node=CENTRE, source_record_bytes=48,
        )
        plan.run(source(100))
        # All 100 raw records crossed edge→centre.
        assert plan.ledger.records_by_link[("edge", "centre")] == 100

    def test_in_situ_charges_compressed_only(self):
        plan = PlacementPlan(
            [compress_stage(), detect_stage()],
            {"compress": EDGE, "detect": CENTRE},
            source_node=EDGE, sink_node=CENTRE,
        )
        plan.run(source(100))
        assert plan.ledger.records_by_link[("edge", "centre")] == 10

    def test_missing_assignment_rejected(self):
        with pytest.raises(ValueError):
            PlacementPlan(
                [compress_stage()], {}, source_node=EDGE, sink_node=CENTRE
            )

    def test_results_identical_across_placements(self):
        stages = [compress_stage(), detect_stage()]
        central = PlacementPlan(
            stages, {"compress": CENTRE, "detect": CENTRE},
            source_node=EDGE, sink_node=CENTRE,
        ).run(source(200))
        insitu = PlacementPlan(
            stages, {"compress": EDGE, "detect": CENTRE},
            source_node=EDGE, sink_node=CENTRE,
        ).run(source(200))
        assert [r.t for r in central] == [r.t for r in insitu]


class TestComparePlacements:
    def test_in_situ_saves_bandwidth(self):
        result = compare_placements(
            make_source=lambda: source(500),
            stages=[compress_stage(), detect_stage()],
            edge=EDGE,
            centre=CENTRE,
            in_situ_stages={"compress"},
        )
        assert result["in_situ_bytes"] < result["central_bytes"]
        # 10:1 record compression should save ~90% of the uplink.
        assert result["savings_ratio"] > 0.75
