"""Tests for Dempster-Shafer evidence theory."""

import pytest

from repro.uncertainty import (
    MassFunction,
    combine_dempster,
    combine_yager,
    discount,
)

FRAME = frozenset({"fishing", "cargo", "smuggling"})


class TestMassFunction:
    def test_masses_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MassFunction({frozenset({"fishing"}): 0.5})

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            MassFunction({frozenset(): 0.3, FRAME: 0.7})

    def test_vacuous(self):
        m = MassFunction.vacuous(FRAME)
        assert m.belief({"fishing"}) == 0.0
        assert m.plausibility({"fishing"}) == 1.0

    def test_categorical(self):
        m = MassFunction.categorical({"fishing"}, FRAME)
        assert m.belief({"fishing"}) == 1.0
        assert m.plausibility({"cargo"}) == 0.0

    def test_simple_support(self):
        m = MassFunction.simple({"fishing"}, 0.7, FRAME)
        assert m.belief({"fishing"}) == pytest.approx(0.7)
        assert m.plausibility({"fishing"}) == 1.0
        assert m.plausibility({"cargo"}) == pytest.approx(0.3)

    def test_belief_below_plausibility(self):
        m = MassFunction(
            {
                frozenset({"fishing"}): 0.4,
                frozenset({"fishing", "smuggling"}): 0.3,
                FRAME: 0.3,
            },
            FRAME,
        )
        for hypothesis in [{"fishing"}, {"smuggling"}, {"fishing", "cargo"}]:
            assert m.belief(hypothesis) <= m.plausibility(hypothesis) + 1e-12

    def test_belief_plausibility_duality(self):
        m = MassFunction.simple({"fishing"}, 0.6, FRAME)
        a = {"fishing", "cargo"}
        complement = set(FRAME) - a
        assert m.plausibility(a) == pytest.approx(1.0 - m.belief(complement))

    def test_pignistic_sums_to_one(self):
        m = MassFunction.simple({"fishing", "smuggling"}, 0.8, FRAME)
        bet = m.pignistic()
        assert sum(bet.values()) == pytest.approx(1.0)
        assert bet["fishing"] == pytest.approx(0.4 + 0.2 / 3)


class TestDempster:
    def test_agreement_reinforces(self):
        a = MassFunction.simple({"smuggling"}, 0.6, FRAME)
        b = MassFunction.simple({"smuggling"}, 0.7, FRAME)
        combined = combine_dempster(a, b)
        assert combined.belief({"smuggling"}) > 0.85

    def test_identity_with_vacuous(self):
        a = MassFunction.simple({"fishing"}, 0.6, FRAME)
        combined = combine_dempster(a, MassFunction.vacuous(FRAME))
        assert combined.masses == a.masses

    def test_commutative(self):
        a = MassFunction.simple({"fishing"}, 0.6, FRAME)
        b = MassFunction.simple({"fishing", "smuggling"}, 0.5, FRAME)
        ab = combine_dempster(a, b)
        ba = combine_dempster(b, a)
        for h in ab.masses:
            assert ab.masses[h] == pytest.approx(ba.masses[h])

    def test_total_conflict_raises(self):
        a = MassFunction.categorical({"fishing"}, FRAME)
        b = MassFunction.categorical({"cargo"}, FRAME)
        with pytest.raises(ValueError):
            combine_dempster(a, b)

    def test_conflict_measure(self):
        a = MassFunction.simple({"fishing"}, 0.8, FRAME)
        b = MassFunction.simple({"cargo"}, 0.8, FRAME)
        assert a.conflict_with(b) == pytest.approx(0.64)

    def test_zadeh_paradox_behaviour(self):
        """The classic pathological case: Dempster renormalisation makes
        the barely-supported middle hypothesis certain — documented
        behaviour, and the reason Yager's rule exists."""
        frame = frozenset({"a", "b", "c"})
        m1 = MassFunction({frozenset("a"): 0.99, frozenset("b"): 0.01}, frame)
        m2 = MassFunction({frozenset("c"): 0.99, frozenset("b"): 0.01}, frame)
        combined = combine_dempster(m1, m2)
        assert combined.belief({"b"}) == pytest.approx(1.0)


class TestYager:
    def test_conflict_goes_to_ignorance(self):
        a = MassFunction.simple({"fishing"}, 0.8, FRAME)
        b = MassFunction.simple({"cargo"}, 0.8, FRAME)
        combined = combine_yager(a, b)
        assert combined.masses[FRAME] >= 0.64

    def test_total_conflict_fully_ignorant(self):
        a = MassFunction.categorical({"fishing"}, FRAME)
        b = MassFunction.categorical({"cargo"}, FRAME)
        combined = combine_yager(a, b)
        assert combined.masses[FRAME] == pytest.approx(1.0)

    def test_agreement_matches_dempster_when_no_conflict(self):
        a = MassFunction.simple({"fishing"}, 0.6, FRAME)
        b = MassFunction.simple({"fishing"}, 0.5, FRAME)
        d = combine_dempster(a, b)
        y = combine_yager(a, b)
        for h in d.masses:
            assert d.masses[h] == pytest.approx(y.masses[h])

    def test_zadeh_paradox_stays_cautious(self):
        frame = frozenset({"a", "b", "c"})
        m1 = MassFunction({frozenset("a"): 0.99, frozenset("b"): 0.01}, frame)
        m2 = MassFunction({frozenset("c"): 0.99, frozenset("b"): 0.01}, frame)
        combined = combine_yager(m1, m2)
        assert combined.belief({"b"}) < 0.01
        assert combined.masses[frame] > 0.97


class TestDiscounting:
    def test_full_reliability_identity(self):
        m = MassFunction.simple({"fishing"}, 0.8, FRAME)
        assert discount(m, 1.0).masses == m.masses

    def test_zero_reliability_vacuous(self):
        m = MassFunction.simple({"fishing"}, 0.8, FRAME)
        discounted = discount(m, 0.0)
        assert discounted.masses == {FRAME: pytest.approx(1.0)}

    def test_partial_discount(self):
        m = MassFunction.categorical({"smuggling"}, FRAME)
        discounted = discount(m, 0.6)
        assert discounted.belief({"smuggling"}) == pytest.approx(0.6)
        assert discounted.masses[FRAME] == pytest.approx(0.4)

    def test_invalid_reliability(self):
        m = MassFunction.vacuous(FRAME)
        with pytest.raises(ValueError):
            discount(m, 1.2)

    def test_discounted_sources_combine_softly(self):
        """An unreliable contradicting source should barely move belief."""
        trusted = MassFunction.simple({"smuggling"}, 0.8, FRAME)
        junk = discount(MassFunction.categorical({"fishing"}, FRAME), 0.1)
        combined = combine_dempster(trusted, junk)
        assert combined.belief({"smuggling"}) > 0.6
