"""Tests for rendezvous detection."""

import random

import pytest

from repro.events import EventKind, RendezvousConfig, detect_rendezvous
from repro.simulation.behaviours import plan_rendezvous_pair, plan_transit
from repro.simulation.world import Port
from repro.trajectory.points import TrackPoint, Trajectory

PORTS = [Port("BREST", 48.38, -4.49)]


def plan_to_trajectory(plan, mmsi, step_s=60.0):
    return Trajectory(
        mmsi,
        [
            TrackPoint(k.t, k.lat, k.lon, k.sog_knots, k.cog_deg)
            for k in plan.sample(step_s)
        ],
    )


@pytest.fixture(scope="module")
def rendezvous_tracks():
    rng = random.Random(5)
    plan_a, plan_b, truth = plan_rendezvous_pair(
        0.0, 5 * 3600.0,
        (48.9, -6.2), (47.8, -6.9),
        (48.3, -6.5), 2 * 3600.0, meeting_duration_s=1800.0, rng=rng,
    )
    return (
        plan_to_trajectory(plan_a, 101),
        plan_to_trajectory(plan_b, 102),
        truth,
    )


class TestDetection:
    def test_finds_injected_rendezvous(self, rendezvous_tracks):
        a, b, truth = rendezvous_tracks
        events = detect_rendezvous([a, b], PORTS)
        matches = [e for e in events if set(e.mmsis) == {101, 102}]
        assert matches
        event = matches[0]
        assert abs(event.t_start - truth["t_start"]) < 1200.0
        assert event.kind is EventKind.RENDEZVOUS

    def test_passing_ships_not_rendezvous(self):
        """Two vessels crossing at speed never count: the speed gate."""
        rng = random.Random(1)
        a = plan_to_trajectory(
            plan_transit(0.0, 3 * 3600.0, (48.0, -6.0), (49.0, -6.0), 12.0, rng),
            201,
        )
        b = plan_to_trajectory(
            plan_transit(0.0, 3 * 3600.0, (49.0, -6.0), (48.0, -6.0), 12.0, rng),
            202,
        )
        events = detect_rendezvous([a, b], PORTS)
        assert [e for e in events if set(e.mmsis) == {201, 202}] == []

    def test_port_meeting_excluded(self):
        """Two vessels moored in the same harbour are not a rendezvous."""
        points_a = [
            TrackPoint(i * 60.0, 48.381, -4.491, 0.1, 0.0) for i in range(60)
        ]
        points_b = [
            TrackPoint(i * 60.0, 48.382, -4.492, 0.1, 0.0) for i in range(60)
        ]
        events = detect_rendezvous(
            [Trajectory(301, points_a), Trajectory(302, points_b)], PORTS
        )
        assert events == []

    def test_open_sea_double_dwell_detected(self):
        points_a = [
            TrackPoint(i * 60.0, 47.5, -6.5, 0.5, 0.0) for i in range(60)
        ]
        points_b = [
            TrackPoint(i * 60.0, 47.501, -6.501, 0.5, 0.0) for i in range(60)
        ]
        events = detect_rendezvous(
            [Trajectory(301, points_a), Trajectory(302, points_b)], PORTS
        )
        assert len(events) == 1
        assert events[0].duration_s >= 1800.0

    def test_distance_gate(self):
        """Dwells 5 km apart are not a rendezvous at the 500 m default."""
        points_a = [
            TrackPoint(i * 60.0, 47.5, -6.5, 0.5, 0.0) for i in range(60)
        ]
        points_b = [
            TrackPoint(i * 60.0, 47.545, -6.5, 0.5, 0.0) for i in range(60)
        ]
        events = detect_rendezvous(
            [Trajectory(301, points_a), Trajectory(302, points_b)], PORTS
        )
        assert events == []

    def test_short_contact_ignored(self):
        config = RendezvousConfig(min_duration_s=1800.0)
        points_a = [
            TrackPoint(i * 60.0, 47.5, -6.5, 0.5, 0.0) for i in range(10)
        ]
        points_b = [
            TrackPoint(i * 60.0, 47.5005, -6.5, 0.5, 0.0) for i in range(10)
        ]
        events = detect_rendezvous(
            [Trajectory(301, points_a), Trajectory(302, points_b)],
            PORTS, config,
        )
        assert events == []

    def test_high_latitude_contact_found(self):
        """Regression: fixed-degree cells shrink to ~230 m of longitude at
        78°N, so a true 480 m contact fell outside the 3x3 neighbourhood
        searched by the old hash.  The latitude-aware index must find it."""
        import math

        lon_offset = 480.0 / (111_194.9 * math.cos(math.radians(78.0)))
        points_a = [
            TrackPoint(i * 60.0, 78.0, 0.0, 0.5, 0.0) for i in range(60)
        ]
        points_b = [
            TrackPoint(i * 60.0, 78.0, lon_offset, 0.5, 0.0) for i in range(60)
        ]
        events = detect_rendezvous(
            [Trajectory(501, points_a), Trajectory(502, points_b)], PORTS
        )
        assert len(events) == 1
        assert set(events[0].mmsis) == {501, 502}

    def test_antimeridian_contact_and_centroid(self):
        """A dwell straddling lon ±180° is detected and its centroid sits
        on the seam, not at lon ~0."""
        points_a = [
            TrackPoint(i * 60.0, 10.0, 179.999, 0.5, 0.0) for i in range(60)
        ]
        points_b = [
            TrackPoint(i * 60.0, 10.0, -179.999, 0.5, 0.0) for i in range(60)
        ]
        events = detect_rendezvous(
            [Trajectory(601, points_a), Trajectory(602, points_b)], PORTS
        )
        assert len(events) == 1
        assert abs(abs(events[0].lon) - 180.0) < 0.01

    def test_three_way_meeting_reports_all_pairs(self):
        tracks = [
            Trajectory(
                400 + k,
                [
                    TrackPoint(i * 60.0, 47.5 + k * 0.001, -6.5, 0.3, 0.0)
                    for i in range(60)
                ],
            )
            for k in range(3)
        ]
        events = detect_rendezvous(tracks, PORTS)
        pairs = {tuple(sorted(e.mmsis)) for e in events}
        assert pairs == {(400, 401), (400, 402), (401, 402)}
