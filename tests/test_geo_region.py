"""Tests for bounding boxes, circles and polygons."""

import pytest

from repro.geo import BoundingBox, CircleRegion, PolygonRegion


class TestBoundingBox:
    def test_contains(self):
        box = BoundingBox(45.0, 50.0, -10.0, 0.0)
        assert box.contains(48.0, -5.0)
        assert not box.contains(44.0, -5.0)
        assert not box.contains(48.0, 5.0)

    def test_edges_inclusive(self):
        box = BoundingBox(45.0, 50.0, -10.0, 0.0)
        assert box.contains(45.0, -10.0)
        assert box.contains(50.0, 0.0)

    def test_invalid_latitudes(self):
        with pytest.raises(ValueError):
            BoundingBox(50.0, 45.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            BoundingBox(-100.0, 0.0, 0.0, 10.0)

    def test_antimeridian(self):
        box = BoundingBox(-10.0, 10.0, 170.0, -170.0)
        assert box.crosses_antimeridian
        assert box.contains(0.0, 175.0)
        assert box.contains(0.0, -175.0)
        assert not box.contains(0.0, 0.0)

    def test_intersects(self):
        a = BoundingBox(0.0, 10.0, 0.0, 10.0)
        b = BoundingBox(5.0, 15.0, 5.0, 15.0)
        c = BoundingBox(20.0, 30.0, 20.0, 30.0)
        assert a.intersects(b)
        assert b.intersects(a)
        assert not a.intersects(c)

    def test_intersects_antimeridian(self):
        wrap = BoundingBox(-10.0, 10.0, 170.0, -170.0)
        east = BoundingBox(-5.0, 5.0, 175.0, 179.0)
        west = BoundingBox(-5.0, 5.0, -179.0, -175.0)
        mid = BoundingBox(-5.0, 5.0, -10.0, 10.0)
        assert wrap.intersects(east)
        assert wrap.intersects(west)
        assert not wrap.intersects(mid)

    def test_expand(self):
        box = BoundingBox(45.0, 50.0, -10.0, 0.0).expand(1.0)
        assert box.contains(44.5, -10.5)

    def test_expand_clamps_poles(self):
        box = BoundingBox(89.0, 90.0, 0.0, 10.0).expand(5.0)
        assert box.lat_max == 90.0

    def test_center(self):
        assert BoundingBox(0.0, 10.0, 0.0, 10.0).center == (5.0, 5.0)

    def test_center_antimeridian(self):
        lat, lon = BoundingBox(-10.0, 10.0, 170.0, -170.0).center
        assert abs(lon) == pytest.approx(180.0)


class TestCircleRegion:
    def test_contains(self):
        circle = CircleRegion(48.0, -5.0, 10_000.0)
        assert circle.contains(48.0, -5.0)
        assert circle.contains(48.05, -5.0)  # ~5.5 km north
        assert not circle.contains(48.2, -5.0)  # ~22 km north

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            CircleRegion(0.0, 0.0, -1.0)

    def test_bounding_box_encloses(self):
        circle = CircleRegion(48.0, -5.0, 20_000.0)
        box = circle.bounding_box()
        # Points on the circle's rim must be in the box.
        from repro.geo import destination_point

        for bearing in range(0, 360, 30):
            lat, lon = destination_point(48.0, -5.0, bearing, 20_000.0)
            assert box.contains(lat, lon)


class TestPolygonRegion:
    def _square(self) -> PolygonRegion:
        return PolygonRegion(
            [(0.0, 0.0), (0.0, 10.0), (10.0, 10.0), (10.0, 0.0)], name="sq"
        )

    def test_inside(self):
        assert self._square().contains(5.0, 5.0)

    def test_outside(self):
        square = self._square()
        assert not square.contains(15.0, 5.0)
        assert not square.contains(5.0, 15.0)
        assert not square.contains(-5.0, 5.0)

    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            PolygonRegion([(0.0, 0.0), (1.0, 1.0)])

    def test_concave(self):
        # A "C" shape: the notch is outside.
        c_shape = PolygonRegion(
            [
                (0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0),
                (0.0, 7.0), (7.0, 7.0), (7.0, 3.0), (0.0, 3.0),
            ]
        )
        assert c_shape.contains(5.0, 8.5)  # top arm
        assert c_shape.contains(5.0, 1.5)  # bottom arm
        assert not c_shape.contains(5.0, 5.0)  # notch

    def test_bounding_box(self):
        box = self._square().bounding_box()
        assert box.lat_min == 0.0 and box.lat_max == 10.0

    def test_area(self):
        assert self._square().area_sq_deg() == pytest.approx(100.0)

    def test_repr(self):
        assert "sq" in repr(self._square())
