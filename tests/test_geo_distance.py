"""Unit tests for great-circle distance and bearing primitives."""

import math

import pytest

from repro.geo import (
    EARTH_RADIUS_M,
    along_track_distance_m,
    angular_difference_deg,
    cross_track_distance_m,
    destination_point,
    equirectangular_m,
    haversine_m,
    haversine_nm,
    initial_bearing_deg,
    normalize_course,
    normalize_lon,
)


class TestNormalize:
    def test_lon_in_range_unchanged(self):
        assert normalize_lon(12.5) == pytest.approx(12.5)

    def test_lon_wraps_east(self):
        assert normalize_lon(190.0) == pytest.approx(-170.0)

    def test_lon_wraps_west(self):
        assert normalize_lon(-190.0) == pytest.approx(170.0)

    def test_lon_180_maps_to_minus_180(self):
        assert normalize_lon(180.0) == pytest.approx(-180.0)

    def test_lon_multiple_wraps(self):
        assert normalize_lon(720.0 + 10.0) == pytest.approx(10.0)

    def test_course_wraps(self):
        assert normalize_course(370.0) == pytest.approx(10.0)
        assert normalize_course(-10.0) == pytest.approx(350.0)
        assert normalize_course(360.0) == pytest.approx(0.0)

    def test_angular_difference_symmetric(self):
        assert angular_difference_deg(350.0, 10.0) == pytest.approx(20.0)
        assert angular_difference_deg(10.0, 350.0) == pytest.approx(20.0)

    def test_angular_difference_max_180(self):
        assert angular_difference_deg(0.0, 180.0) == pytest.approx(180.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(48.0, -5.0, 48.0, -5.0) == 0.0

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.19 km on the sphere.
        d = haversine_m(48.0, -5.0, 49.0, -5.0)
        assert d == pytest.approx(111_195.0, rel=1e-3)

    def test_equator_one_degree_longitude(self):
        d = haversine_m(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(111_195.0, rel=1e-3)

    def test_longitude_shrinks_with_latitude(self):
        d_equator = haversine_m(0.0, 0.0, 0.0, 1.0)
        d_60 = haversine_m(60.0, 0.0, 60.0, 1.0)
        assert d_60 == pytest.approx(d_equator * 0.5, rel=1e-2)

    def test_antipodal(self):
        d = haversine_m(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-6)

    def test_antimeridian_shortcut(self):
        # 179.5°E to 179.5°W is 1 degree, not 359.
        d = haversine_m(0.0, 179.5, 0.0, -179.5)
        assert d == pytest.approx(111_195.0, rel=1e-3)

    def test_symmetry(self):
        assert haversine_m(10.0, 20.0, 30.0, 40.0) == pytest.approx(
            haversine_m(30.0, 40.0, 10.0, 20.0)
        )

    def test_nm_conversion(self):
        d_m = haversine_m(48.0, -5.0, 49.0, -5.0)
        assert haversine_nm(48.0, -5.0, 49.0, -5.0) == pytest.approx(d_m / 1852.0)

    def test_one_minute_of_latitude_is_one_nm(self):
        # The historical definition, good to ~0.3% on the sphere.
        d = haversine_nm(48.0, -5.0, 48.0 + 1.0 / 60.0, -5.0)
        assert d == pytest.approx(1.0, rel=5e-3)


class TestEquirectangular:
    def test_close_to_haversine_at_short_range(self):
        exact = haversine_m(48.0, -5.0, 48.05, -4.95)
        approx = equirectangular_m(48.0, -5.0, 48.05, -4.95)
        assert approx == pytest.approx(exact, rel=1e-3)

    def test_zero(self):
        assert equirectangular_m(48.0, -5.0, 48.0, -5.0) == 0.0


class TestBearing:
    def test_due_north(self):
        assert initial_bearing_deg(48.0, -5.0, 49.0, -5.0) == pytest.approx(0.0)

    def test_due_south(self):
        assert initial_bearing_deg(49.0, -5.0, 48.0, -5.0) == pytest.approx(180.0)

    def test_due_east_at_equator(self):
        assert initial_bearing_deg(0.0, 0.0, 0.0, 1.0) == pytest.approx(90.0)

    def test_due_west_at_equator(self):
        assert initial_bearing_deg(0.0, 1.0, 0.0, 0.0) == pytest.approx(270.0)

    def test_range(self):
        b = initial_bearing_deg(48.0, -5.0, 47.0, -6.0)
        assert 0.0 <= b < 360.0


class TestDestination:
    def test_roundtrip_distance(self):
        lat2, lon2 = destination_point(48.0, -5.0, 45.0, 50_000.0)
        assert haversine_m(48.0, -5.0, lat2, lon2) == pytest.approx(
            50_000.0, rel=1e-9
        )

    def test_roundtrip_bearing(self):
        lat2, lon2 = destination_point(48.0, -5.0, 45.0, 50_000.0)
        assert initial_bearing_deg(48.0, -5.0, lat2, lon2) == pytest.approx(
            45.0, abs=1e-6
        )

    def test_zero_distance(self):
        lat2, lon2 = destination_point(48.0, -5.0, 123.0, 0.0)
        assert (lat2, lon2) == pytest.approx((48.0, -5.0))

    def test_crosses_antimeridian(self):
        lat2, lon2 = destination_point(0.0, 179.9, 90.0, 50_000.0)
        assert lon2 < -179.0  # wrapped

    def test_north_moves_latitude_only(self):
        lat2, lon2 = destination_point(10.0, 20.0, 0.0, 111_195.0)
        assert lat2 == pytest.approx(11.0, rel=1e-3)
        assert lon2 == pytest.approx(20.0, abs=1e-9)


class TestCrossTrack:
    def test_point_on_track_is_zero(self):
        d = cross_track_distance_m(0.0, 0.5, 0.0, 0.0, 0.0, 1.0)
        assert abs(d) < 1.0

    def test_sign_convention(self):
        # Travelling east along the equator, a point to the south is to
        # the right (positive by our convention: asin of positive).
        south = cross_track_distance_m(-0.1, 0.5, 0.0, 0.0, 0.0, 1.0)
        north = cross_track_distance_m(0.1, 0.5, 0.0, 0.0, 0.0, 1.0)
        assert south > 0 > north

    def test_magnitude(self):
        d = cross_track_distance_m(0.1, 0.5, 0.0, 0.0, 0.0, 1.0)
        assert abs(d) == pytest.approx(111_195.0 * 0.1, rel=1e-3)

    def test_along_track(self):
        d = along_track_distance_m(0.0, 0.5, 0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(haversine_m(0.0, 0.0, 0.0, 0.5), rel=1e-6)

    def test_along_track_at_start(self):
        d = along_track_distance_m(0.0, 0.0, 0.0, 0.0, 0.0, 1.0)
        assert abs(d) < 1.0


class TestPairMidpoint:
    def test_plain_midpoint(self):
        from repro.geo import pair_midpoint

        assert pair_midpoint(48.0, -5.0, 50.0, -6.0) == (49.0, -5.5)

    def test_antimeridian_midpoint_on_seam(self):
        from repro.geo import pair_midpoint

        lat, lon = pair_midpoint(10.0, 179.9, 10.0, -179.9)
        assert lat == pytest.approx(10.0)
        assert abs(lon) == pytest.approx(180.0)

    def test_symmetric_up_to_wrap(self):
        from repro.geo import haversine_m, pair_midpoint

        ab = pair_midpoint(10.0, 179.9, 12.0, -179.9)
        ba = pair_midpoint(12.0, -179.9, 10.0, 179.9)
        assert haversine_m(*ab, *ba) == pytest.approx(0.0, abs=1e-6)
