"""Tests for the core stream abstraction."""

from repro.streaming import Record, Stream, merge_by_time


def records(*times, key="k"):
    return [Record(float(t), key, t) for t in times]


class TestTransforms:
    def test_map_values(self):
        out = Stream(records(1, 2, 3)).map_values(lambda v: v * 10).collect()
        assert [r.value for r in out] == [10, 20, 30]

    def test_filter(self):
        out = Stream(records(1, 2, 3, 4)).filter(lambda r: r.value % 2 == 0)
        assert [r.value for r in out.collect()] == [2, 4]

    def test_flat_map(self):
        out = Stream(records(1, 2)).flat_map(
            lambda r: [r, Record(r.t + 0.5, r.key, -r.value)]
        )
        assert [r.value for r in out.collect()] == [1, -1, 2, -2]

    def test_key_by(self):
        out = Stream(records(1, 2, 3)).key_by(lambda r: r.value % 2).collect()
        assert [r.key for r in out] == [1, 0, 1]

    def test_chaining_lazy(self):
        seen = []
        stream = Stream(records(1, 2, 3)).tap(lambda r: seen.append(r.value))
        assert seen == []  # nothing consumed yet
        stream.drain()
        assert seen == [1, 2, 3]

    def test_single_shot(self):
        stream = Stream(records(1, 2))
        assert stream.count() == 2
        assert stream.count() == 0  # already drained

    def test_from_values(self):
        stream = Stream.from_values(
            [{"t": 5.0, "id": "a"}], timestamp=lambda v: v["t"],
            key=lambda v: v["id"],
        )
        record = stream.collect()[0]
        assert record.t == 5.0 and record.key == "a"


class TestThrottle:
    def test_throttle_per_key(self):
        stream = Stream(records(0, 1, 2, 10, 11, 20))
        out = stream.throttle_per_key(5.0).collect()
        assert [r.t for r in out] == [0.0, 10.0, 20.0]

    def test_throttle_independent_keys(self):
        mixed = [
            Record(0.0, "a", 1), Record(1.0, "b", 2),
            Record(2.0, "a", 3), Record(6.0, "a", 4),
        ]
        out = Stream(iter(mixed)).throttle_per_key(5.0).collect()
        assert [(r.t, r.key) for r in out] == [
            (0.0, "a"), (1.0, "b"), (6.0, "a"),
        ]

    def test_throttle_state_bounded_on_high_cardinality_keys(self):
        """Regression: ``last_seen`` grew forever — one entry per key ever
        seen.  With age eviction the table tracks only the keys active
        inside the gap window, and the output is unchanged."""
        min_gap = 5.0
        n = 20_000

        def one_shot_keys():
            # Tens of thousands of distinct keys, one record each, plus a
            # chatty key that must still be throttled correctly throughout.
            for i in range(n):
                yield Record(float(i), f"k{i}", i)
                yield Record(float(i) + 0.5, "hot", i)

        throttled = iter(Stream(one_shot_keys()).throttle_per_key(min_gap))
        table_sizes = []
        kept_hot = 0
        for count, record in enumerate(throttled):
            if record.key == "hot":
                kept_hot += 1
            if count % 500 == 0 and throttled.gi_frame is not None:
                table_sizes.append(
                    len(throttled.gi_frame.f_locals["last_seen"])
                )
        # Bounded: only keys seen inside one gap window stay tracked
        # (~7 here), not one entry per key ever seen (~20k).
        assert max(table_sizes) <= 16
        # Correct: "hot" reports every second; one in five survives.
        assert kept_hot == n / 5

    def test_throttle_eviction_preserves_output(self):
        """Eviction must not change what a time-ordered stream emits."""
        records_in = [
            Record(float(t), f"k{t % 7}", t) for t in range(0, 300, 3)
        ]
        out = Stream(iter(records_in)).throttle_per_key(20.0).collect()
        # Reference: the unbounded-table semantics, computed naively.
        expected, last = [], {}
        for r in records_in:
            prev = last.get(r.key)
            if prev is not None and r.t - prev < 20.0:
                continue
            last[r.key] = r.t
            expected.append((r.t, r.key))
        assert [(r.t, r.key) for r in out] == expected


class TestMerge:
    def test_global_time_order(self):
        a = Stream(records(1, 4, 7))
        b = Stream(records(2, 5, 8, key="x"))
        c = Stream(records(3, 6, key="y"))
        merged = merge_by_time(a, b, c).collect()
        assert [r.t for r in merged] == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_empty_streams(self):
        merged = merge_by_time(Stream(iter([])), Stream(records(1))).collect()
        assert len(merged) == 1

    def test_record_ordering_ties(self):
        # Equal timestamps must not crash the heap merge.
        a = Stream([Record(1.0, "a", None), Record(1.0, "a", None)])
        b = Stream([Record(1.0, "b", None)])
        assert len(merge_by_time(a, b).collect()) == 3
