"""Tests for hard-soft fusion of human reports with tracks."""

import pytest

from repro.fusion import SoftReport, fuse_hard_soft
from repro.trajectory.points import TrackPoint, Trajectory


def track(mmsi, lat0, lon0, n=30, dt=60.0, dlat=0.001):
    return Trajectory(
        mmsi,
        [
            TrackPoint(i * dt, lat0 + i * dlat, lon0, 8.0, 0.0)
            for i in range(n)
        ],
    )


class TestSoftReport:
    def test_validation(self):
        with pytest.raises(ValueError):
            SoftReport(0.0, 48.0, -5.0, sigma_m=-1.0, sigma_t_s=60.0,
                       confidence=0.5)
        with pytest.raises(ValueError):
            SoftReport(0.0, 48.0, -5.0, sigma_m=100.0, sigma_t_s=60.0,
                       confidence=1.5)


class TestFusion:
    def test_nearby_track_ranks_first(self):
        near = track(1, 48.0, -5.0)
        far = track(2, 49.0, -4.0)
        report = SoftReport(
            t=900.0, lat=48.015, lon=-5.0, sigma_m=2000.0, sigma_t_s=600.0,
            confidence=0.8,
        )
        matches = fuse_hard_soft(report, [near, far])
        assert matches
        assert matches[0].mmsi == 1

    def test_no_candidate_when_nothing_near(self):
        report = SoftReport(
            t=900.0, lat=55.0, lon=10.0, sigma_m=1000.0, sigma_t_s=600.0,
            confidence=0.8,
        )
        assert fuse_hard_soft(report, [track(1, 48.0, -5.0)]) == []

    def test_time_window_respected(self):
        """A track that was there but hours earlier should not match a
        fresh sighting."""
        old = track(1, 48.0, -5.0, n=10)  # ends at t=540
        report = SoftReport(
            t=50_000.0, lat=48.005, lon=-5.0, sigma_m=1000.0,
            sigma_t_s=300.0, confidence=0.9,
        )
        assert fuse_hard_soft(report, [old]) == []

    def test_confidence_weights_ranking(self):
        near = track(1, 48.0, -5.0)
        report_confident = SoftReport(
            t=900.0, lat=48.015, lon=-5.0, sigma_m=2000.0, sigma_t_s=600.0,
            confidence=0.9,
        )
        report_vague = SoftReport(
            t=900.0, lat=48.015, lon=-5.0, sigma_m=2000.0, sigma_t_s=600.0,
            confidence=0.3,
        )
        strong = fuse_hard_soft(report_confident, [near])[0]
        weak = fuse_hard_soft(report_vague, [near])[0]
        assert strong.weight > weak.weight
        assert strong.consistency == pytest.approx(weak.consistency)

    def test_vaguer_report_matches_more(self):
        tracks = [track(i, 48.0 + i * 0.05, -5.0) for i in range(5)]
        tight = SoftReport(
            t=900.0, lat=48.0, lon=-5.0, sigma_m=500.0, sigma_t_s=300.0,
            confidence=0.8,
        )
        loose = SoftReport(
            t=900.0, lat=48.0, lon=-5.0, sigma_m=20_000.0, sigma_t_s=300.0,
            confidence=0.8,
        )
        assert len(fuse_hard_soft(loose, tracks)) >= len(
            fuse_hard_soft(tight, tracks)
        )
