"""The runtime ownership sanitizer (``REPRO_SANITIZE``) and the health
probe registry that surfaces its violations as alarms.

The stress tests run the real sharded pipeline with the sanitizer armed
in raise mode — any cross-shard or shard-to-barrier-table access would
throw — and assert exact product parity against the unsanitized
single-shard baseline, at every worker count the shard suite uses.
"""

import pytest

from repro.analysis.sanitize import (
    OwnershipSanitizer,
    OwnershipViolation,
    create_sanitizer,
    sanitize_mode,
)
from repro.core import MaritimePipeline, PipelineConfig
from repro.core.stages.health import HealthRegistry
from test_core_shards import assert_same_products, baseline, scenario_run


def fresh_state(workers: int = 2):
    return MaritimePipeline(PipelineConfig(workers=workers)) \
        .new_session(keep_products=False).state


class TestModeSelection:
    def test_disabled_values(self, monkeypatch):
        for value in ("", "0", "false", "off", "no"):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitize_mode() is None
            assert create_sanitizer() is None
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_mode() is None

    def test_enabled_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_mode() == "raise"
        monkeypatch.setenv("REPRO_SANITIZE", "report")
        assert create_sanitizer().mode == "report"

    def test_state_is_unwrapped_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        state = fresh_state()
        assert state.sanitizer is None
        assert type(state.shards[0]).__name__ == "ShardState"


class TestOwnershipWindows:
    def test_own_shard_allowed_other_shard_caught(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        state = fresh_state(workers=2)
        sanitizer = state.sanitizer
        with sanitizer.shard_task(0):
            assert state.shards[0].index == 0  # owner: fine
            with pytest.raises(OwnershipViolation, match="owned by shard 1"):
                state.shards[1].reconstructor

    def test_barrier_phase_sees_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        state = fresh_state(workers=2)
        # No task window bound: merge/flush territory.
        for shard in state.shards:
            assert shard.reconstructor is not None
        assert len(state.current) == 0
        assert 42 not in state.gap_heads

    def test_shared_tables_rejected_inside_windows(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        state = fresh_state(workers=2)
        with state.sanitizer.shard_task(1):
            with pytest.raises(OwnershipViolation, match="barrier-owned"):
                state.current.put(1, 0.0, None)
            with pytest.raises(OwnershipViolation, match="barrier-owned"):
                len(state.gap_heads)

    def test_windows_nest_and_restore(self):
        sanitizer = OwnershipSanitizer()
        assert sanitizer.current_shard() is None
        with sanitizer.shard_task(3):
            with sanitizer.shard_task(1):
                assert sanitizer.current_shard() == 1
            assert sanitizer.current_shard() == 3
        assert sanitizer.current_shard() is None

    def test_wrap_task_binds_only_during_call(self):
        sanitizer = OwnershipSanitizer()
        seen = []
        wrapped = sanitizer.wrap_task(
            2, lambda: seen.append(sanitizer.current_shard())
        )
        assert sanitizer.current_shard() is None
        wrapped()
        assert seen == [2]
        assert sanitizer.current_shard() is None

    def test_report_mode_records_instead_of_raising(self):
        sanitizer = OwnershipSanitizer(mode="report")
        guard = sanitizer.guard_table(object(), "current")
        with sanitizer.shard_task(0):
            repr(guard)  # no check: repr is explicit passthrough
            try:
                guard.missing_attribute
            except AttributeError:
                pass  # the *access check* recorded; the attr lookup fails
        violations = sanitizer.drain()
        assert len(violations) == 1
        assert violations[0].kind == "table"
        assert sanitizer.drain() == []  # drained
        assert len(sanitizer.violations) == 1  # full history kept

    def test_guard_is_isinstance_transparent(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.core.stages import ShardState

        state = fresh_state(workers=2)
        assert all(isinstance(s, ShardState) for s in state.shards)


class TestSanitizedParity:
    """The real pipeline, sanitizer armed in raise mode: any ownership
    breach throws, and products must equal the unsanitized baseline."""

    @pytest.mark.parametrize("name", ["regional", "seam"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_batch_parity_under_sanitizer(self, name, workers, monkeypatch):
        run = scenario_run(name)
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        batch = baseline(name)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        result = MaritimePipeline(
            PipelineConfig(workers=workers)
        ).process(run)
        assert_same_products(
            batch, result.events, result.complex_events,
            result.forecasts, result.cube,
        )


class TestHealthRegistry:
    def test_poll_merges_in_register_order(self):
        registry = HealthRegistry()
        registry.register("a", lambda t: ["alarm-a"])
        registry.register("b", lambda t: [])
        registry.register("c", lambda t: ["alarm-c1", "alarm-c2"])
        assert registry.poll(5.0) == ["alarm-a", "alarm-c1", "alarm-c2"]
        assert sorted(registry.names()) == ["a", "b", "c"]
        assert "b" in registry and len(registry) == 3

    def test_status_cache(self):
        registry = HealthRegistry()
        hits: list = []
        registry.register("probe", lambda t: hits)
        registry.poll(1.0)
        hits.append("boom")
        registry.poll(2.0)
        status = registry.report()["probe"]
        assert status.n_polls == 2
        assert status.last_polled_t == 2.0
        assert status.n_alarms_total == 1
        assert not status.healthy
        assert "probe" in status.describe()

    def test_replacement_keeps_history_unregister_stops_polling(self):
        registry = HealthRegistry()
        registry.register("probe", lambda t: ["x"])
        registry.poll(1.0)
        registry.register("probe", lambda t: [])  # replaced
        registry.poll(2.0)
        assert registry.report()["probe"].n_alarms_total == 1
        registry.unregister("probe")
        assert registry.poll(3.0) == []
        assert registry.report()["probe"].n_polls == 2


class TestSessionIntegration:
    def test_report_mode_registers_sanitizer_probe(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "report")
        session = MaritimePipeline(
            PipelineConfig(workers=2)
        ).new_session(keep_products=False)
        assert "ownership-sanitizer" in session.health
        state = session.state
        with state.sanitizer.shard_task(0):
            state.shards[1].teleports  # recorded, not raised
        alarms = session.health.poll(123.0)
        assert len(alarms) == 1
        assert "ownership sanitizer" in alarms[0].explanation
        assert alarms[0].t == 123.0
        # Drained: the same violation never alarms twice.
        assert session.health.poll(124.0) == []

    def test_raise_mode_needs_no_probe(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        session = MaritimePipeline(
            PipelineConfig(workers=2)
        ).new_session(keep_products=False)
        assert "ownership-sanitizer" not in session.health

    def test_monitor_report_exposes_health(self, monkeypatch):
        from repro.monitor import MaritimeMonitor
        from repro.sources import IterableSource

        monkeypatch.setenv("REPRO_SANITIZE", "report")
        run = scenario_run("regional")
        monitor = MaritimeMonitor(specs=run.specs, weather=run.weather)
        monitor.attach(IterableSource(run.observations))
        report = monitor.run(tick_s=900.0)
        assert "ownership-sanitizer" in report.health
        status = report.health["ownership-sanitizer"]
        assert status.n_polls > 0
        assert status.n_alarms_total == 0  # the runtime is clean
