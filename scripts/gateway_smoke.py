#!/usr/bin/env python3
"""End-to-end smoke test for the ``repro serve`` gateway, CI-friendly.

Exercises the full serving stack as a black box, the way an operator
would deploy it:

1. generate a small regional scenario and write it as a TAG-blocked
   NMEA feed file (``repro simulate --tagged``);
2. launch ``repro serve --nmea-file <feed> --port 0 --hold -1
   --allow-shutdown`` as a subprocess and parse the bound URL from its
   ``# serving on http://...`` stderr line;
3. poll ``GET /healthz`` until the replay has produced increments, then
   assert ``/positions`` and ``/events`` return folded state;
4. open one raw-socket WebSocket session on ``/stream``, verify the
   RFC 6455 handshake, and read the close frame the gateway sends on
   shutdown (the replay has already finished by the time the client
   connects, so live frames are not guaranteed — the in-process live
   delivery path is covered by tests/test_serve.py);
5. ``POST /shutdown`` and assert the process exits cleanly (code 0).

Run from the repo root:  PYTHONPATH=src python scripts/gateway_smoke.py
Exit status is 0 on success; any failure prints the server's stderr.
"""

from __future__ import annotations

import base64
import hashlib
import json
import re
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

DEADLINE_S = 90.0
POLL_S = 0.2
SERVE_RE = re.compile(r"# serving on (http://\S+)")
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class SmokeFailure(AssertionError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _python() -> list[str]:
    return [sys.executable, "-m", "repro"]


def _generate_feed(path: Path) -> None:
    """Write a small TAG-blocked NMEA feed via the public CLI."""
    result = subprocess.run(
        _python() + [
            "simulate", "--vessels", "8", "--hours", "0.5",
            "--seed", "42", "--tagged", "--output", str(path),
        ],
        capture_output=True, text=True, timeout=DEADLINE_S,
    )
    _check(result.returncode == 0, f"simulate failed:\n{result.stderr}")
    _check(path.stat().st_size > 0, "simulate wrote an empty feed")


class _Server:
    """The ``repro serve`` subprocess plus its captured stderr."""

    def __init__(self, feed: Path):
        self.proc = subprocess.Popen(
            _python() + [
                "serve", "--nmea-file", str(feed), "--port", "0",
                "--tick", "300", "--hold", "-1", "--allow-shutdown",
            ],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        )
        self.stderr_lines: list[str] = []
        self._url: str | None = None
        self._url_seen = threading.Event()
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self) -> None:
        assert self.proc.stderr is not None
        for line in self.proc.stderr:
            self.stderr_lines.append(line.rstrip())
            match = SERVE_RE.search(line)
            if match:
                self._url = match.group(1).rstrip("/")
                self._url_seen.set()
        self._url_seen.set()  # EOF: unblock waiters even on startup failure

    @property
    def url(self) -> str:
        self._url_seen.wait(DEADLINE_S)
        _check(
            self._url is not None,
            "server never announced its URL:\n" + "\n".join(self.stderr_lines),
        )
        assert self._url is not None
        return self._url

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def _get_json(url: str, path: str) -> dict:
    with urllib.request.urlopen(url + path, timeout=10) as response:
        _check(response.status == 200, f"GET {path} -> {response.status}")
        return json.loads(response.read())


def _wait_for_replay(url: str) -> dict:
    deadline = time.monotonic() + DEADLINE_S
    while time.monotonic() < deadline:
        health = _get_json(url, "/healthz")
        if health.get("n_increments", 0) >= 1 and health.get("n_vessels", 0):
            return health
        time.sleep(POLL_S)
    raise SmokeFailure("replay produced no increments before the deadline")


def _websocket_session(url: str) -> None:
    """Handshake on /stream and read the shutdown close frame later."""
    host, __, port = url.removeprefix("http://").partition(":")
    sock = socket.create_connection((host, int(port)), timeout=DEADLINE_S)
    key = base64.b64encode(b"gateway-smoke-16").decode("ascii")
    sock.sendall(
        f"GET /stream HTTP/1.1\r\nHost: {host}:{port}\r\n"
        f"Upgrade: websocket\r\nConnection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {key}\r\nSec-WebSocket-Version: 13\r\n\r\n"
        .encode("ascii")
    )
    rfile = sock.makefile("rb")
    status = rfile.readline()
    _check(b"101" in status, f"expected 101 on /stream, got {status!r}")
    headers = {}
    while True:
        line = rfile.readline().strip()
        if not line:
            break
        name, __, value = line.decode("latin-1").partition(":")
        headers[name.lower()] = value.strip()
    expected = base64.b64encode(
        hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    ).decode("ascii")
    _check(
        headers.get("sec-websocket-accept") == expected,
        "bad Sec-WebSocket-Accept in handshake",
    )
    # Keep the session parked; the gateway sends a 1001 close frame on
    # shutdown, which _expect_close reads after POST /shutdown below.
    _websocket_session.parked = (sock, rfile)  # type: ignore[attr-defined]


def _expect_close_frame() -> None:
    sock, rfile = _websocket_session.parked  # type: ignore[attr-defined]
    try:
        sock.settimeout(DEADLINE_S)
        first = rfile.read(1)
        # Frames queued before the close (if any replay increments raced
        # in) are text frames; skip them until the close arrives.
        while first:
            opcode = first[0] & 0x0F
            length = rfile.read(1)[0] & 0x7F
            if length == 126:
                (length,) = struct.unpack(">H", rfile.read(2))
            elif length == 127:
                (length,) = struct.unpack(">Q", rfile.read(8))
            payload = rfile.read(length)
            if opcode == 0x8:  # close
                (code,) = struct.unpack(">H", payload[:2])
                _check(code == 1001, f"close code {code}, expected 1001")
                return
            first = rfile.read(1)
        raise SmokeFailure("socket closed without a WebSocket close frame")
    finally:
        sock.close()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="gateway-smoke-") as tmp:
        feed = Path(tmp) / "feed.nmea"
        _generate_feed(feed)
        print(f"feed: {feed.stat().st_size} bytes", flush=True)

        server = _Server(feed)
        try:
            url = server.url
            print(f"serving on {url}", flush=True)

            health = _wait_for_replay(url)
            print(
                f"healthz: {health['n_increments']} increments, "
                f"{health['n_vessels']} vessels, "
                f"watermark {health['watermark']}", flush=True,
            )

            positions = _get_json(url, "/positions")["positions"]
            _check(len(positions) >= 1, "no positions after replay")
            _check(
                all("mmsi" in row and "lat" in row for row in positions),
                "malformed position rows",
            )
            track = _get_json(url, f"/tracks/{positions[0]['mmsi']}")
            _check(len(track["points"]) >= 1, "empty track for a live vessel")
            heat = _get_json(url, "/heatmap")
            _check(sum(heat["cells"].values()) >= 1, "empty heatmap")
            print(
                f"http: {len(positions)} positions, "
                f"{len(track['points'])} track points, "
                f"{len(heat['cells'])} heat cells", flush=True,
            )

            _websocket_session(url)
            print("websocket: handshake accepted", flush=True)

            request = urllib.request.Request(
                url + "/shutdown", data=b"", method="POST"
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                _check(response.status == 200, "shutdown not acknowledged")
            _expect_close_frame()
            print("websocket: clean 1001 close on shutdown", flush=True)

            code = server.proc.wait(timeout=DEADLINE_S)
            _check(code == 0, f"server exited {code}")
            print("shutdown: exit 0", flush=True)
        except BaseException:
            server.kill()
            print("--- server stderr ---", file=sys.stderr)
            print("\n".join(server.stderr_lines), file=sys.stderr)
            raise
    print("gateway smoke: PASS", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
