"""E7 — link discovery and contextual enrichment (§2.2, §2.5).

1. **Registry linkage** precision/recall as corruption grows — the
   cross-source integration primitive.  Shape: precision stays high under
   realistic (5%) corruption; recall falls gracefully as records diverge.

2. **Weather enrichment** cost and the multi-resolution quantisation
   error of §2.5 (km-scale, hourly products vs 10 m, seconds AIS).
"""

import pytest

from repro.ais.types import ShipType
from repro.semantics import build_registry, corrupt_registry
from repro.simulation import FleetBuilder
from repro.simulation.weather import WeatherProvider
from repro.storage import discover_links

CORRUPTION_RATES = [0.0, 0.05, 0.15, 0.30]


@pytest.fixture(scope="module")
def registries():
    builder = FleetBuilder(77)
    specs = [builder.build(ShipType.CARGO) for __ in range(120)]
    base = build_registry(specs, "MT")
    out = {}
    for rate in CORRUPTION_RATES:
        left = corrupt_registry(
            base, seed=int(rate * 100) + 1,
            typo_rate=rate, stale_flag_rate=rate, missing_imo_rate=rate,
        )
        right = corrupt_registry(
            build_registry(specs, "LL"), seed=int(rate * 100) + 2,
            typo_rate=rate, stale_flag_rate=rate, missing_imo_rate=rate,
        )
        out[rate] = (left, right, len(specs))
    return out


def test_e7_linkage_vs_corruption(registries, benchmark, report):
    def run_sweep():
        results = {}
        for rate, (left, right, n_truth) in registries.items():
            links = discover_links(
                [r.as_linkage_dict() for r in left],
                [r.as_linkage_dict() for r in right],
            )
            truth_left = {r.id: r.truth_mmsi for r in left}
            truth_right = {r.id: r.truth_mmsi for r in right}
            correct = sum(
                1 for link in links
                if truth_left[link.left_id] == truth_right[link.right_id]
            )
            precision = correct / len(links) if links else 1.0
            recall = correct / n_truth
            results[rate] = (len(links), precision, recall)
        return results

    results = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    report(
        "",
        "E7a — registry linkage vs corruption rate",
        f"  {'corruption':>11}{'links':>7}{'precision':>11}{'recall':>8}",
    )
    for rate, (n, precision, recall) in results.items():
        report(f"  {rate:>11.2f}{n:>7}{precision:>11.2f}{recall:>8.2f}")

    assert results[0.0][1] >= 0.99 and results[0.0][2] >= 0.95
    assert results[0.05][1] >= 0.95 and results[0.05][2] >= 0.85
    # Recall degrades with corruption but precision holds.
    assert results[0.30][2] <= results[0.0][2]
    assert results[0.30][1] >= 0.85


RESOLUTIONS = [0.05, 0.25, 1.0, 2.0]


def test_e7_weather_quantisation(benchmark, report):
    """§2.5's resolution mismatch, measured."""
    points = [
        (46.0 + i * 0.173, -7.0 + i * 0.211, i * 600.0) for i in range(200)
    ]

    def errors_for(resolution):
        provider = WeatherProvider(seed=5, grid_resolution_deg=resolution)
        errs = [provider.quantisation_error(*p) for p in points]
        return sum(errs) / len(errs)

    mean_errors = benchmark.pedantic(
        lambda: {r: errors_for(r) for r in RESOLUTIONS},
        iterations=1, rounds=1,
    )
    report(
        "",
        "E7b — weather product quantisation error (wind speed, m/s)",
        f"  {'grid (deg)':>11}{'mean error':>12}",
        *(
            f"  {resolution:>11.2f}{error:>12.3f}"
            for resolution, error in mean_errors.items()
        ),
    )
    ordered = [mean_errors[r] for r in RESOLUTIONS]
    # Coarser products misalign more (allowing small non-monotone noise).
    assert ordered[-1] > ordered[0]
