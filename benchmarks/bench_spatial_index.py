"""SPATIAL — indexed vs brute-force proximity screening, grid vs R-tree.

The tentpole claim of the shared spatial index: pair screening over live
vessel states drops from O(n²) haversine evaluations to a near-linear
indexed sweep, with *identical* results.  This benchmark measures both
implementations at 1k/5k/20k vessels, verifies that the indexed collision
and rendezvous detectors emit exactly the events their brute-force
references do (including across the antimeridian and at high latitude),
and compares the grid and STR R-tree backends on uniform vs skewed
(coastal-clustered) fleets, recording the numbers in
``BENCH_spatial.json``.

The 20k brute-force pass is extrapolated from a timed slice of outer-loop
rows (the per-pair cost is constant), unless ``REPRO_BENCH_FULL=1`` asks
for the full quadratic run.  ``REPRO_BENCH_SMOKE=1`` shrinks every fleet
so CI can run the whole file as a fast regression gate.
"""

import json
import math
import os
import random
import time

from benchutil import machine_calibration_s

from repro.events.collision import CollisionRiskConfig, detect_collision_risk
from repro.events.rendezvous import RendezvousConfig, detect_rendezvous
from repro.events.base import Event, EventKind
from repro.geo import cpa_tcpa, haversine_m, normalize_lon, pair_midpoint
from repro.spatial import GridIndex, STRTree, build_index, cell_occupancy_skew
from repro.trajectory.points import TrackPoint, Trajectory

#: CI smoke mode: tiny fleets, no perf assertions, same code paths.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SCREEN_M = 20_000.0
SIZES = (300, 800) if SMOKE else (1_000, 5_000, 20_000)
#: Target ratio from the issue's acceptance criteria.
MIN_SPEEDUP_AT_20K = 5.0
#: Fleet size for the backend comparison.
BACKEND_N = 1_200 if SMOKE else 6_000
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_spatial.json")


def make_fleet(n, seed, lat_c=45.0, lon_c=0.0):
    """Random live states over a theatre whose area scales with the fleet,
    keeping local density (hence true pair counts per vessel) constant."""
    rng = random.Random(seed)
    half_deg = 2.0 * math.sqrt(n / 1000.0)
    states = {}
    for mmsi in range(1, n + 1):
        lat = lat_c + rng.uniform(-half_deg, half_deg)
        lon = normalize_lon(lon_c + rng.uniform(-half_deg, half_deg))
        states[mmsi] = TrackPoint(
            0.0, lat, lon, rng.uniform(2.5, 20.0), rng.uniform(0.0, 360.0)
        )
    return states


def make_coastal_fleet(n, seed, n_hubs=12):
    """The Figure 1 distribution: most traffic packed into tight coastal
    hubs strung along an arc, a thin scatter over open ocean.  Uniform
    cells sized to the 20 km screen swallow whole hubs, which is exactly
    where the grid degenerates."""
    rng = random.Random(seed)
    hubs = [
        (36.0 + 9.0 * math.sin(k / 2.1), -8.0 + 4.5 * k)
        for k in range(n_hubs)
    ]
    points = []
    for i in range(n):
        if rng.random() < 0.9:
            lat_c, lon_c = hubs[rng.randrange(n_hubs)]
            points.append(
                (
                    i,
                    lat_c + rng.gauss(0.0, 0.03),
                    normalize_lon(lon_c + rng.gauss(0.0, 0.03)),
                )
            )
        else:
            points.append(
                (
                    i,
                    rng.uniform(25.0, 60.0),
                    normalize_lon(rng.uniform(-15.0, 50.0)),
                )
            )
    return points


def brute_screen(points, distance_m, max_rows=None):
    """The seed's O(n²) screen; returns (pair set, seconds, pairs scanned).

    With ``max_rows`` set, only the first rows of the outer loop run —
    per-pair cost is constant, so timing extrapolates linearly.
    """
    rows = len(points) if max_rows is None else min(max_rows, len(points))
    pairs = set()
    scanned = 0
    t0 = time.perf_counter()
    for i in range(rows):
        mmsi_a, lat_a, lon_a = points[i]
        for mmsi_b, lat_b, lon_b in points[i + 1 :]:
            scanned += 1
            if haversine_m(lat_a, lon_a, lat_b, lon_b) <= distance_m:
                pairs.add((mmsi_a, mmsi_b))
    return pairs, time.perf_counter() - t0, scanned


def indexed_screen(points, distance_m):
    """Index build + full pair sweep; returns (pair set, seconds)."""
    t0 = time.perf_counter()
    index = GridIndex.from_points(points, cell_size_m=distance_m)
    pairs = {(a, b) for a, b, __ in index.all_pairs_within(distance_m)}
    return pairs, time.perf_counter() - t0


def reference_detect_collision_risk(current_states, config=None):
    """The seed's detector verbatim, minus the index (brute screen)."""
    config = config or CollisionRiskConfig()
    vessels = [
        (mmsi, point)
        for mmsi, point in current_states.items()
        if point.sog_knots is not None
        and point.cog_deg is not None
        and point.sog_knots >= config.min_speed_knots
    ]
    events = []
    for i, (mmsi_a, a) in enumerate(vessels):
        for mmsi_b, b in vessels[i + 1 :]:
            if haversine_m(a.lat, a.lon, b.lat, b.lon) > config.screening_range_m:
                continue
            result = cpa_tcpa(
                a.lat, a.lon, a.sog_knots, a.cog_deg,
                b.lat, b.lon, b.sog_knots, b.cog_deg,
            )
            if (
                0.0 <= result.tcpa_s <= config.tcpa_horizon_s
                and result.dcpa_m <= config.dcpa_alarm_m
            ):
                risk = 1.0 - result.dcpa_m / config.dcpa_alarm_m
                urgency = 1.0 - result.tcpa_s / config.tcpa_horizon_s
                mid_lat, mid_lon = pair_midpoint(a.lat, a.lon, b.lat, b.lon)
                events.append(
                    Event(
                        kind=EventKind.COLLISION_RISK,
                        t_start=max(a.t, b.t),
                        t_end=max(a.t, b.t) + result.tcpa_s,
                        mmsis=(mmsi_a, mmsi_b),
                        lat=mid_lat,
                        lon=mid_lon,
                        confidence=min(1.0, 0.5 * (risk + urgency)),
                        details={
                            "dcpa_m": result.dcpa_m,
                            "tcpa_s": result.tcpa_s,
                            "range_m": result.range_m,
                        },
                    )
                )
    return events


def event_keys(events):
    return sorted(
        (e.kind.name, e.mmsis, round(e.t_start, 6), round(e.lat, 9),
         round(e.lon, 9))
        for e in events
    )


def test_spatial_screening_speedup(report):
    full = os.environ.get("REPRO_BENCH_FULL") == "1"
    lines = [
        "", "SPATIAL — indexed vs brute-force pair screening (20 km gate)",
        f"{'n':>8}{'brute_s':>12}{'indexed_s':>12}{'speedup':>10}"
        f"{'pairs':>10}",
    ]
    speedups = {}
    for n in SIZES:
        states = make_fleet(n, seed=7)
        points = [(m, p.lat, p.lon) for m, p in states.items()]
        indexed_pairs, indexed_s = indexed_screen(points, SCREEN_M)
        if n <= 5_000 or full:
            brute_pairs, brute_s, __ = brute_screen(points, SCREEN_M)
            # Identical screens, not just similar counts.
            assert brute_pairs == indexed_pairs
            note = ""
        else:
            # Time a slice of outer rows and extrapolate (constant
            # per-pair cost); correctness at this size is covered by the
            # index's own exhaustive property tests.
            rows = 500
            __, slice_s, scanned = brute_screen(points, SCREEN_M, max_rows=rows)
            total_pairs = n * (n - 1) // 2
            brute_s = slice_s * total_pairs / scanned
            note = f"  (extrapolated from {rows} rows)"
        speedups[n] = brute_s / indexed_s
        lines.append(
            f"{n:>8}{brute_s:>12.3f}{indexed_s:>12.3f}"
            f"{speedups[n]:>9.1f}x{len(indexed_pairs):>10}{note}"
        )
    report(*lines)
    if not SMOKE:
        assert speedups[SIZES[-1]] >= MIN_SPEEDUP_AT_20K


def test_collision_event_sets_identical(report):
    """Indexed detector == brute-force reference on regression fleets."""
    scenarios = {
        "regional": make_fleet(800, seed=11, lat_c=48.0, lon_c=-5.0),
        "antimeridian": make_fleet(800, seed=13, lat_c=0.0, lon_c=180.0),
        "high_latitude": make_fleet(800, seed=17, lat_c=78.0, lon_c=20.0),
    }
    lines = ["", "SPATIAL — collision event-set regression"]
    for name, states in scenarios.items():
        got = event_keys(detect_collision_risk(states))
        want = event_keys(reference_detect_collision_risk(states))
        assert got == want, f"{name}: event sets diverge"
        lines.append(f"  {name}: {len(got)} events, identical to brute force")
    report(*lines)


def test_rendezvous_event_sets_match_brute_contacts(report):
    """The indexed per-timestep sweep finds the same contact pairs a
    brute-force timestep scan does, event for event."""
    rng = random.Random(23)
    trajectories = []
    # 40 drifting vessels in three clusters, one hugging the seam and one
    # at high latitude.
    for k, (lat_c, lon_c) in enumerate(
        [(47.5, -6.5), (10.0, 179.995), (78.0, 5.0)]
    ):
        for v in range(14):
            mmsi = 1000 * (k + 1) + v
            lat0 = lat_c + rng.uniform(-0.02, 0.02)
            lon0 = lon_c + rng.uniform(-0.02, 0.02) / max(
                0.05, math.cos(math.radians(lat_c))
            )
            points = [
                TrackPoint(
                    t * 60.0,
                    lat0 + t * 1e-6 * rng.uniform(-1, 1),
                    normalize_lon(lon0 + t * 1e-6 * rng.uniform(-1, 1)),
                    rng.uniform(0.1, 1.5),
                    0.0,
                )
                for t in range(40)
            ]
            trajectories.append(Trajectory(mmsi, points))
    config = RendezvousConfig(min_duration_s=600.0)
    events = detect_rendezvous(trajectories, [], config)
    # Reference: brute-force pair scan at the same cadence.
    reference_pairs = set()
    for t in range(0, 40 * 60, int(config.step_s)):
        live = [
            (tr.mmsi, *tr.position_at(float(t)))
            for tr in trajectories
            if tr.t_start <= t <= tr.t_end
        ]
        for i in range(len(live)):
            for j in range(i + 1, len(live)):
                if (
                    haversine_m(live[i][1], live[i][2], live[j][1], live[j][2])
                    <= config.max_distance_m
                ):
                    reference_pairs.add(
                        tuple(sorted((live[i][0], live[j][0])))
                    )
    event_pairs = {tuple(sorted(e.mmsis)) for e in events}
    # Every detected pair is a true contact pair (durations filter the
    # reference down, so containment is the invariant).
    assert event_pairs <= reference_pairs
    assert events, "regression scenario produced no rendezvous"
    seam = [e for e in events if abs(abs(e.lon) - 180.0) < 0.5]
    high_lat = [e for e in events if e.lat > 70.0]
    assert seam and high_lat
    report(
        "",
        "SPATIAL — rendezvous regression: "
        f"{len(events)} events ({len(seam)} on the seam, "
        f"{len(high_lat)} above 70°N), all pairs confirmed by brute force",
    )


#: Association-style gate probed against the shared screening index.
GATE_M = 1_500.0


def _pair_sweep(index, distance_m):
    """Full pair sweep as an orientation-free set, plus elapsed seconds."""
    t0 = time.perf_counter()
    pairs = {
        (a, b) if a < b else (b, a)
        for a, b, __ in index.all_pairs_within(distance_m)
    }
    return pairs, time.perf_counter() - t0


def _radius_batch(index, queries, radius_m):
    """Contact-gating probes; returns (sorted hit lists, seconds)."""
    t0 = time.perf_counter()
    hits = [
        sorted(i for i, __ in index.radius_query(lat, lon, radius_m))
        for lat, lon in queries
    ]
    return hits, time.perf_counter() - t0


def test_backend_comparison_grid_vs_rtree(report):
    """Grid vs STR R-tree on uniform and coastal-skewed fleets.

    One shared index per backend serves the two workloads it faces in
    production: the 20 km collision pair sweep and a batch of 1.5 km
    association-gate probes.  Both backends must return identical result
    sets; the R-tree must beat the grid on the skewed fleet (the
    acceptance criterion — uniform 20 km cells swallow whole coastal
    hubs, so every fine-radius probe degenerates into a hub scan), and
    the auto factory must route each fleet to the winning backend.
    Results land in BENCH_spatial.json for the CI artifact.
    """
    uniform_states = make_fleet(BACKEND_N, seed=31)
    workloads = {
        "uniform": [(m, p.lat, p.lon) for m, p in uniform_states.items()],
        "skewed_coastal": make_coastal_fleet(BACKEND_N, seed=37),
    }
    results = {}
    lines = [
        "",
        f"SPATIAL — grid vs STR R-tree ({BACKEND_N} vessels; "
        f"{SCREEN_M / 1000:.0f} km pair sweep + "
        f"{GATE_M / 1000:.1f} km gate probes)",
        f"{'workload':>16}{'skew':>8}{'grid_s':>10}{'rtree_s':>10}"
        f"{'rtree_speedup':>15}{'pairs':>10}{'auto':>10}",
    ]
    for name, points in workloads.items():
        rng = random.Random(41)
        queries = [
            (lat + rng.uniform(-0.01, 0.01), lon + rng.uniform(-0.01, 0.01))
            for __, lat, lon in points[:: max(1, len(points) // 1000)]
        ]
        skew = cell_occupancy_skew(points, SCREEN_M)
        t0 = time.perf_counter()
        grid = GridIndex.from_points(points, cell_size_m=SCREEN_M)
        grid_build = time.perf_counter() - t0
        grid_pairs, grid_sweep = _pair_sweep(grid, SCREEN_M)
        grid_hits, grid_probe = _radius_batch(grid, queries, GATE_M)
        t0 = time.perf_counter()
        tree = STRTree(points)
        tree_build = time.perf_counter() - t0
        tree_pairs, tree_sweep = _pair_sweep(tree, SCREEN_M)
        tree_hits, tree_probe = _radius_batch(tree, queries, GATE_M)
        assert tree_pairs == grid_pairs, f"{name}: pair sweeps diverge"
        assert tree_hits == grid_hits, f"{name}: gate probes diverge"
        grid_s = grid_build + grid_sweep + grid_probe
        tree_s = tree_build + tree_sweep + tree_probe
        auto = type(build_index(points, SCREEN_M)).__name__
        results[name] = {
            "n": BACKEND_N,
            "screen_m": SCREEN_M,
            "gate_m": GATE_M,
            "n_probes": len(queries),
            "occupancy_skew": round(skew, 2),
            "grid": {
                "build_s": round(grid_build, 4),
                "sweep_s": round(grid_sweep, 4),
                "probe_s": round(grid_probe, 4),
                "total_s": round(grid_s, 4),
            },
            "rtree": {
                "build_s": round(tree_build, 4),
                "sweep_s": round(tree_sweep, 4),
                "probe_s": round(tree_probe, 4),
                "total_s": round(tree_s, 4),
            },
            "rtree_speedup": round(grid_s / tree_s, 2),
            "pairs": len(grid_pairs),
            "auto_backend": auto,
        }
        lines.append(
            f"{name:>16}{skew:>8.1f}{grid_s:>10.3f}{tree_s:>10.3f}"
            f"{grid_s / tree_s:>14.1f}x{len(grid_pairs):>10}{auto:>10}"
        )
    payload = {
        "benchmark": "spatial_backend_comparison",
        "smoke": SMOKE,
        #: Machine-speed normaliser so the CI trend check compares
        #: ``total_s / calibration_s`` across differently sized runners.
        "calibration_s": round(machine_calibration_s(), 5),
        "workloads": results,
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    lines.append(f"  written to {BENCH_JSON}")
    report(*lines)
    # The auto factory must route the skewed fleet to the R-tree.
    assert results["skewed_coastal"]["auto_backend"] == "STRTree"
    assert results["uniform"]["auto_backend"] == "GridIndex"
    if not SMOKE:
        # Acceptance criterion: the R-tree beats the grid where uniform
        # cells degenerate.
        assert results["skewed_coastal"]["rtree_speedup"] > 1.0
