"""SPATIAL — indexed vs brute-force proximity screening.

The tentpole claim of the shared spatial index: pair screening over live
vessel states drops from O(n²) haversine evaluations to a near-linear
grid sweep, with *identical* results.  This benchmark measures both
implementations at 1k/5k/20k vessels and verifies that the indexed
collision and rendezvous detectors emit exactly the events their
brute-force references do, including across the antimeridian and at high
latitude.

The 20k brute-force pass is extrapolated from a timed slice of outer-loop
rows (the per-pair cost is constant), unless ``REPRO_BENCH_FULL=1`` asks
for the full quadratic run.
"""

import math
import os
import random
import time

from repro.events.collision import CollisionRiskConfig, detect_collision_risk
from repro.events.rendezvous import RendezvousConfig, detect_rendezvous
from repro.events.base import Event, EventKind
from repro.geo import cpa_tcpa, haversine_m, normalize_lon, pair_midpoint
from repro.spatial import GridIndex
from repro.trajectory.points import TrackPoint, Trajectory

SCREEN_M = 20_000.0
SIZES = (1_000, 5_000, 20_000)
#: Target ratio from the issue's acceptance criteria.
MIN_SPEEDUP_AT_20K = 5.0


def make_fleet(n, seed, lat_c=45.0, lon_c=0.0):
    """Random live states over a theatre whose area scales with the fleet,
    keeping local density (hence true pair counts per vessel) constant."""
    rng = random.Random(seed)
    half_deg = 2.0 * math.sqrt(n / 1000.0)
    states = {}
    for mmsi in range(1, n + 1):
        lat = lat_c + rng.uniform(-half_deg, half_deg)
        lon = normalize_lon(lon_c + rng.uniform(-half_deg, half_deg))
        states[mmsi] = TrackPoint(
            0.0, lat, lon, rng.uniform(2.5, 20.0), rng.uniform(0.0, 360.0)
        )
    return states


def brute_screen(points, distance_m, max_rows=None):
    """The seed's O(n²) screen; returns (pair set, seconds, pairs scanned).

    With ``max_rows`` set, only the first rows of the outer loop run —
    per-pair cost is constant, so timing extrapolates linearly.
    """
    rows = len(points) if max_rows is None else min(max_rows, len(points))
    pairs = set()
    scanned = 0
    t0 = time.perf_counter()
    for i in range(rows):
        mmsi_a, lat_a, lon_a = points[i]
        for mmsi_b, lat_b, lon_b in points[i + 1 :]:
            scanned += 1
            if haversine_m(lat_a, lon_a, lat_b, lon_b) <= distance_m:
                pairs.add((mmsi_a, mmsi_b))
    return pairs, time.perf_counter() - t0, scanned


def indexed_screen(points, distance_m):
    """Index build + full pair sweep; returns (pair set, seconds)."""
    t0 = time.perf_counter()
    index = GridIndex.from_points(points, cell_size_m=distance_m)
    pairs = {(a, b) for a, b, __ in index.all_pairs_within(distance_m)}
    return pairs, time.perf_counter() - t0


def reference_detect_collision_risk(current_states, config=None):
    """The seed's detector verbatim, minus the index (brute screen)."""
    config = config or CollisionRiskConfig()
    vessels = [
        (mmsi, point)
        for mmsi, point in current_states.items()
        if point.sog_knots is not None
        and point.cog_deg is not None
        and point.sog_knots >= config.min_speed_knots
    ]
    events = []
    for i, (mmsi_a, a) in enumerate(vessels):
        for mmsi_b, b in vessels[i + 1 :]:
            if haversine_m(a.lat, a.lon, b.lat, b.lon) > config.screening_range_m:
                continue
            result = cpa_tcpa(
                a.lat, a.lon, a.sog_knots, a.cog_deg,
                b.lat, b.lon, b.sog_knots, b.cog_deg,
            )
            if (
                0.0 <= result.tcpa_s <= config.tcpa_horizon_s
                and result.dcpa_m <= config.dcpa_alarm_m
            ):
                risk = 1.0 - result.dcpa_m / config.dcpa_alarm_m
                urgency = 1.0 - result.tcpa_s / config.tcpa_horizon_s
                mid_lat, mid_lon = pair_midpoint(a.lat, a.lon, b.lat, b.lon)
                events.append(
                    Event(
                        kind=EventKind.COLLISION_RISK,
                        t_start=max(a.t, b.t),
                        t_end=max(a.t, b.t) + result.tcpa_s,
                        mmsis=(mmsi_a, mmsi_b),
                        lat=mid_lat,
                        lon=mid_lon,
                        confidence=min(1.0, 0.5 * (risk + urgency)),
                        details={
                            "dcpa_m": result.dcpa_m,
                            "tcpa_s": result.tcpa_s,
                            "range_m": result.range_m,
                        },
                    )
                )
    return events


def event_keys(events):
    return sorted(
        (e.kind.name, e.mmsis, round(e.t_start, 6), round(e.lat, 9),
         round(e.lon, 9))
        for e in events
    )


def test_spatial_screening_speedup(report):
    full = os.environ.get("REPRO_BENCH_FULL") == "1"
    lines = [
        "", "SPATIAL — indexed vs brute-force pair screening (20 km gate)",
        f"{'n':>8}{'brute_s':>12}{'indexed_s':>12}{'speedup':>10}"
        f"{'pairs':>10}",
    ]
    speedups = {}
    for n in SIZES:
        states = make_fleet(n, seed=7)
        points = [(m, p.lat, p.lon) for m, p in states.items()]
        indexed_pairs, indexed_s = indexed_screen(points, SCREEN_M)
        if n <= 5_000 or full:
            brute_pairs, brute_s, __ = brute_screen(points, SCREEN_M)
            # Identical screens, not just similar counts.
            assert brute_pairs == indexed_pairs
            note = ""
        else:
            # Time a slice of outer rows and extrapolate (constant
            # per-pair cost); correctness at this size is covered by the
            # index's own exhaustive property tests.
            rows = 500
            __, slice_s, scanned = brute_screen(points, SCREEN_M, max_rows=rows)
            total_pairs = n * (n - 1) // 2
            brute_s = slice_s * total_pairs / scanned
            note = f"  (extrapolated from {rows} rows)"
        speedups[n] = brute_s / indexed_s
        lines.append(
            f"{n:>8}{brute_s:>12.3f}{indexed_s:>12.3f}"
            f"{speedups[n]:>9.1f}x{len(indexed_pairs):>10}{note}"
        )
    report(*lines)
    assert speedups[20_000] >= MIN_SPEEDUP_AT_20K


def test_collision_event_sets_identical(report):
    """Indexed detector == brute-force reference on regression fleets."""
    scenarios = {
        "regional": make_fleet(800, seed=11, lat_c=48.0, lon_c=-5.0),
        "antimeridian": make_fleet(800, seed=13, lat_c=0.0, lon_c=180.0),
        "high_latitude": make_fleet(800, seed=17, lat_c=78.0, lon_c=20.0),
    }
    lines = ["", "SPATIAL — collision event-set regression"]
    for name, states in scenarios.items():
        got = event_keys(detect_collision_risk(states))
        want = event_keys(reference_detect_collision_risk(states))
        assert got == want, f"{name}: event sets diverge"
        lines.append(f"  {name}: {len(got)} events, identical to brute force")
    report(*lines)


def test_rendezvous_event_sets_match_brute_contacts(report):
    """The indexed per-timestep sweep finds the same contact pairs a
    brute-force timestep scan does, event for event."""
    rng = random.Random(23)
    trajectories = []
    # 40 drifting vessels in three clusters, one hugging the seam and one
    # at high latitude.
    for k, (lat_c, lon_c) in enumerate(
        [(47.5, -6.5), (10.0, 179.995), (78.0, 5.0)]
    ):
        for v in range(14):
            mmsi = 1000 * (k + 1) + v
            lat0 = lat_c + rng.uniform(-0.02, 0.02)
            lon0 = lon_c + rng.uniform(-0.02, 0.02) / max(
                0.05, math.cos(math.radians(lat_c))
            )
            points = [
                TrackPoint(
                    t * 60.0,
                    lat0 + t * 1e-6 * rng.uniform(-1, 1),
                    normalize_lon(lon0 + t * 1e-6 * rng.uniform(-1, 1)),
                    rng.uniform(0.1, 1.5),
                    0.0,
                )
                for t in range(40)
            ]
            trajectories.append(Trajectory(mmsi, points))
    config = RendezvousConfig(min_duration_s=600.0)
    events = detect_rendezvous(trajectories, [], config)
    # Reference: brute-force pair scan at the same cadence.
    reference_pairs = set()
    for t in range(0, 40 * 60, int(config.step_s)):
        live = [
            (tr.mmsi, *tr.position_at(float(t)))
            for tr in trajectories
            if tr.t_start <= t <= tr.t_end
        ]
        for i in range(len(live)):
            for j in range(i + 1, len(live)):
                if (
                    haversine_m(live[i][1], live[i][2], live[j][1], live[j][2])
                    <= config.max_distance_m
                ):
                    reference_pairs.add(
                        tuple(sorted((live[i][0], live[j][0])))
                    )
    event_pairs = {tuple(sorted(e.mmsis)) for e in events}
    # Every detected pair is a true contact pair (durations filter the
    # reference down, so containment is the invariant).
    assert event_pairs <= reference_pairs
    assert events, "regression scenario produced no rendezvous"
    seam = [e for e in events if abs(abs(e.lon) - 180.0) < 0.5]
    high_lat = [e for e in events if e.lat > 70.0]
    assert seam and high_lat
    report(
        "",
        "SPATIAL — rendezvous regression: "
        f"{len(events)} events ({len(seam)} on the seam, "
        f"{len(high_lat)} above 70°N), all pairs confirmed by brute force",
    )
