"""FIG1 — regenerate Figure 1: worldwide AIS positions from satellites.

Paper anchor: Figure 1 ("Worldwide AIS positions acquired by satellites,
ORBCOMM") and §1's 18M positions/day scale.  Shape to reproduce: traffic
concentrates on the Europe-Asia corridor and coastal approaches; satellite
coverage of the open ocean is partial (revisit gaps, collisions).
"""

from repro.ais.decoder import AisDecoder
from repro.ais.types import ClassBPositionReport, PositionReport
from repro.geo import BoundingBox
from repro.visual import DensityMap, render_ascii_map
from repro.simulation.world import WORLD_PORTS


def decode_positions(run):
    decoder = AisDecoder()
    lats, lons = [], []
    for obs in run.observations:
        message = decoder.feed(obs.sentence)
        if (
            isinstance(message, (PositionReport, ClassBPositionReport))
            and message.has_position
        ):
            lats.append(message.lat)
            lons.append(message.lon)
    return lats, lons


def build_density(lats, lons):
    density = DensityMap(
        BoundingBox(-65.0, 75.0, -180.0, 180.0), n_lat_bins=32, n_lon_bins=100
    )
    density.add_positions(lats, lons)
    return density


def test_fig1_density_map(global_run, benchmark, report):
    lats, lons = decode_positions(global_run)
    density = benchmark(build_density, lats, lons)

    coverage = len(lats) / max(1, len(global_run.transmissions))
    report(
        "",
        "FIG1 — worldwide satellite AIS picture",
        f"  transmissions: {len(global_run.transmissions)}",
        f"  received positions: {len(lats)} ({coverage:.0%} coverage)",
        f"  occupied map cells: {density.occupied_cells}"
        f" ({density.occupancy_fraction():.1%} of the box)",
        "",
        render_ascii_map(
            density, markers={(p.lat, p.lon): "o" for p in WORLD_PORTS}
        ),
        "",
        "  densest cells (lat, lon, count):",
        *(
            f"    ({lat:6.1f}, {lon:7.1f}): {count}"
            for lat, lon, count in density.top_cells(5)
        ),
    )

    # Shape assertions: partial open-ocean coverage, concentrated traffic.
    assert 0.02 < coverage < 0.7
    assert density.total > 10_000
    # Traffic concentrates: the top 10% of occupied cells hold much more
    # than their uniform share (10%) of the received positions.
    counts = sorted(density.cell_counts().values(), reverse=True)
    top_decile = counts[: max(1, len(counts) // 10)]
    assert sum(top_decile) > 0.2 * sum(counts)
