"""E5 — multi-source fusion: completeness and conflict resolution (§2.4, §4).

Two sub-experiments:

1. **Track completeness.**  Fuse AIS + coastal radar + LRIT and measure
   surveillance coverage of *dark* vessels inside radar range.  Shape:
   the fused picture covers dark episodes that AIS alone misses entirely.

2. **Registry conflict resolution.**  Two corrupted registries
   (MarineTraffic/Lloyd's stand-ins, 5% error rate per [44]) plus one
   heavily degraded third source; compare majority, reliability-weighted
   and most-recent strategies.  Shape: reliability weighting beats
   majority when sources share correlated staleness.
"""

import random

import pytest

from repro.ais.types import ShipType
from repro.fusion import (
    MultiSourceTracker,
    detect_conflicts,
    resolve_majority,
    resolve_weighted,
)
from repro.geo import haversine_m
from repro.semantics import build_registry, corrupt_registry
from repro.simulation import FleetBuilder
from repro.trajectory.points import TrackPoint


@pytest.fixture(scope="module")
def fusion_picture(regional_run, regional_result):
    tracker = MultiSourceTracker()
    for trajectory in regional_result.trajectories:
        for point in trajectory:
            tracker.add_ais_fix(trajectory.mmsi, point)
    for lrit in regional_run.lrit_reports:
        tracker.add_lrit(
            lrit.mmsi, TrackPoint(lrit.t, lrit.lat, lrit.lon, source="lrit")
        )
    assignments = tracker.add_radar_contacts(regional_run.radar_contacts)
    return tracker, assignments


def _coverage_of_dark_episodes(run, points_by_mmsi, radar_sites):
    """Fraction of in-radar-range dark time covered by a track point
    within 5 minutes."""
    covered = 0
    total = 0
    for event in run.truth_events:
        if event.kind != "dark":
            continue
        mmsi = event.mmsis[0]
        plan = run.plans[mmsi]
        t = event.t_start
        while t < event.t_end:
            lat, lon = plan.position_at(t)
            in_range = any(
                haversine_m(site.lat, site.lon, lat, lon) <= site.range_m
                for site in radar_sites
            )
            if in_range:
                total += 1
                times = points_by_mmsi.get(mmsi, [])
                if any(abs(pt - t) <= 300.0 for pt in times):
                    covered += 1
            t += 300.0
    return covered, total


def test_e5_fused_coverage_of_dark_vessels(
    regional_run, regional_result, fusion_picture, benchmark, report
):
    tracker, assignments = fusion_picture
    benchmark.pedantic(
        lambda: MultiSourceTracker().add_radar_contacts(
            regional_run.radar_contacts[:2000]
        ),
        iterations=1, rounds=2,
    )
    from repro.simulation.world import REGIONAL_PORTS  # noqa: F401

    radar_sites = [
        type("Site", (), {"lat": 48.38, "lon": -4.49, "range_m": 44_448.0})(),
        type("Site", (), {"lat": 49.65, "lon": -1.62, "range_m": 44_448.0})(),
    ]
    # AIS-only timeline per vessel.
    ais_times = {
        mmsi: [
            p.t
            for tr in regional_result.trajectories if tr.mmsi == mmsi
            for p in tr
        ]
        for mmsi in regional_run.specs
    }
    # Fused timeline: AIS + radar (via truth_mmsi only for *scoring*).
    fused_times = {mmsi: list(times) for mmsi, times in ais_times.items()}
    for contact in regional_run.radar_contacts:
        fused_times.setdefault(contact.truth_mmsi, []).append(contact.t)

    ais_cov, ais_total = _coverage_of_dark_episodes(
        regional_run, ais_times, radar_sites
    )
    fused_cov, fused_total = _coverage_of_dark_episodes(
        regional_run, fused_times, radar_sites
    )
    uncorrelated = sum(1 for a in assignments if a.mmsi is None)
    report(
        "",
        "E5a — surveillance of dark vessels inside radar range",
        f"  radar contacts: {len(assignments)} "
        f"({uncorrelated} uncorrelated → {len(tracker.anonymous_tracks)} "
        "anonymous tracks)",
        f"  dark-time coverage, AIS only : {ais_cov}/{ais_total}",
        f"  dark-time coverage, fused    : {fused_cov}/{fused_total}",
    )
    if fused_total:
        assert fused_cov >= ais_cov
        assert fused_cov / fused_total >= 0.5


@pytest.fixture(scope="module")
def conflicting_registries():
    builder = FleetBuilder(55)
    specs = [builder.build(ShipType.CARGO) for __ in range(120)]
    clean = {r.truth_mmsi: r for r in build_registry(specs, "truth")}
    good = corrupt_registry(
        build_registry(specs, "MT", updated_at=100.0), seed=1,
        typo_rate=0.02, stale_flag_rate=0.03,
    )
    ok = corrupt_registry(
        build_registry(specs, "LL", updated_at=90.0), seed=2,
        typo_rate=0.05, stale_flag_rate=0.05,
    )
    # A degraded aggregator that copied many stale flags.
    bad = corrupt_registry(
        build_registry(specs, "AGG", updated_at=95.0), seed=3,
        typo_rate=0.10, stale_flag_rate=0.40,
    )
    records_by_source = {
        "MT": {r.truth_mmsi: {"flag": r.flag} for r in good},
        "LL": {r.truth_mmsi: {"flag": r.flag} for r in ok},
        "AGG": {r.truth_mmsi: {"flag": r.flag} for r in bad},
    }
    return clean, records_by_source


def test_e5_conflict_resolution(conflicting_registries, benchmark, report):
    clean, records_by_source = conflicting_registries
    conflicts = benchmark.pedantic(
        detect_conflicts, args=(records_by_source, ["flag"]),
        iterations=1, rounds=3,
    )
    reliability = {"MT": 0.95, "LL": 0.9, "AGG": 0.4}

    def accuracy(strategy):
        correct = 0
        for conflict in conflicts:
            resolved = strategy(conflict)
            if resolved == clean[conflict.entity_id].flag:
                correct += 1
        return correct / len(conflicts) if conflicts else 1.0

    majority_acc = accuracy(resolve_majority)
    weighted_acc = accuracy(
        lambda c: resolve_weighted(c, reliability)
    )
    report(
        "",
        "E5b — registry flag-conflict resolution "
        f"({len(conflicts)} conflicts over {len(clean)} vessels)",
        f"  majority vote        : {majority_acc:.2f}",
        f"  reliability-weighted : {weighted_acc:.2f}",
    )
    assert conflicts
    assert weighted_acc >= majority_acc
    assert weighted_acc >= 0.8
