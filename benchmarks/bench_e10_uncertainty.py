"""E10 — uncertainty frameworks for anomaly decisions (§4).

The paper argues the choice of uncertainty framework should follow the
nature of the sources, and that source quality must enter the fusion.
Synthetic decision experiment: three "detectors" (sources) vote on
whether each of N candidate events is a real anomaly; one source degrades
progressively.  Strategies compared:

- naive probability averaging (ignores source quality);
- Dempster-Shafer with reliability discounting + pignistic decision;
- possibility-theory min-combination with necessity decision.

Shape: with honest sources all strategies agree; as one source degrades,
the reliability-discounted evidential strategy dominates naive averaging.
"""

import random

import pytest

from repro.uncertainty import (
    MassFunction,
    PossibilityDistribution,
    combine_dempster,
    combine_yager,
    discount,
)

FRAME = frozenset({"anomaly", "normal"})
DEGRADATIONS = [0.0, 0.3, 0.6]
N_EVENTS = 400


def simulate_votes(degradation, seed=7):
    """Ground truth + three sources' confidence that each event is real.

    Sources A and B are decent; source C is *compromised*: with
    probability ``degradation`` it reports the opposite of the truth —
    the deliberate-deception mode §2.4 warns about (spoofed feeds,
    manipulated reports), not mere noise.
    """
    rng = random.Random(seed + int(degradation * 100))
    cases = []
    for __ in range(N_EVENTS):
        is_real = rng.random() < 0.4

        def honest_vote(noise=0.22):
            base = 0.75 if is_real else 0.25
            return min(0.99, max(0.01, base + rng.gauss(0.0, noise)))

        def compromised_vote():
            if rng.random() < degradation:
                base = 0.15 if is_real else 0.85  # actively misleading
                return min(0.99, max(0.01, base + rng.gauss(0.0, 0.1)))
            return honest_vote(noise=0.1)

        cases.append(
            (is_real, honest_vote(), honest_vote(), compromised_vote())
        )
    return cases


def decide_average(votes, reliability):
    del reliability  # the naive strategy ignores source quality
    return sum(votes) / len(votes) > 0.5


def decide_evidential(votes, reliability):
    combined = MassFunction.vacuous(FRAME)
    for vote, rel in zip(votes, reliability):
        source = MassFunction(
            {
                frozenset({"anomaly"}): vote * 0.9,
                frozenset({"normal"}): (1.0 - vote) * 0.9,
                FRAME: 0.1,
            },
            FRAME,
        )
        combined = combine_dempster(combined, discount(source, rel))
    return combined.pignistic()["anomaly"] > 0.5


def decide_possibilistic(votes, reliability):
    combined = None
    for vote, rel in zip(votes, reliability):
        # Reliability inflates the possibility of the opposite hypothesis
        # (an unreliable source cannot rule anything out).
        pd = PossibilityDistribution(
            {
                "anomaly": max(vote, 1.0 - rel),
                "normal": max(1.0 - vote, 1.0 - rel),
            }
        )
        try:
            combined = pd if combined is None else combined.combine_min(pd)
        except ValueError:
            combined = pd  # fully conflicting: restart from this source
    return combined.necessity({"anomaly"}) > 0.2


STRATEGIES = {
    "naive-average": decide_average,
    "DS-discounted": decide_evidential,
    "possibilistic": decide_possibilistic,
}


@pytest.fixture(scope="module")
def accuracy_table():
    table = {}
    for degradation in DEGRADATIONS:
        cases = simulate_votes(degradation)
        reliability = (0.9, 0.85, max(0.05, 1.0 - degradation))
        for name, strategy in STRATEGIES.items():
            correct = sum(
                1 for is_real, *votes in cases
                if strategy(votes, reliability) == is_real
            )
            table[(name, degradation)] = correct / len(cases)
    return table


def test_e10_framework_comparison(accuracy_table, benchmark, report):
    benchmark.pedantic(
        lambda: dict(accuracy_table), iterations=1, rounds=1
    )
    report(
        "",
        "E10 — anomaly decision accuracy by uncertainty framework",
        "  " + f"{'strategy':<16}" + "".join(
            f"degr={d:<6.1f}" for d in DEGRADATIONS
        ),
    )
    for name in STRATEGIES:
        row = f"  {name:<16}"
        for degradation in DEGRADATIONS:
            row += f"{accuracy_table[(name, degradation)]:<11.2f}"
        report(row)

    # All strategies work with honest sources.
    for name in STRATEGIES:
        assert accuracy_table[(name, 0.0)] > 0.75
    # Under deception, quality-aware evidence beats the naive average.
    assert (
        accuracy_table[("DS-discounted", 0.6)]
        > accuracy_table[("naive-average", 0.6)]
    )
    # And the naive strategy visibly degrades as the source turns.
    assert (
        accuracy_table[("naive-average", 0.6)]
        < accuracy_table[("naive-average", 0.0)]
    )


def test_e10_combination_speed(benchmark):
    a = MassFunction.simple({"anomaly"}, 0.7, FRAME)
    b = MassFunction.simple({"normal"}, 0.4, FRAME)

    def combine_chain():
        m = MassFunction.vacuous(FRAME)
        for __ in range(50):
            m = combine_yager(combine_dempster(m, a), b)
        return m

    result = benchmark(combine_chain)
    assert abs(sum(result.masses.values()) - 1.0) < 1e-9
