"""A4 (ablation) — unsupervised pattern mining: routes and anchorages.

§3.1's "machine learning methods supporting the identification and the
formalization of ... patterns".  Two tasks with ground truth:

- cluster a mixed bag of tracks from three lanes back into the lanes
  (k-medoids under DTW); shape: near-perfect purity;
- rediscover the scenario's ports as anchorages from stop centroids.
"""

import random

import pytest

from repro.geo import haversine_m
from repro.simulation.behaviours import plan_transit
from repro.simulation.world import REGIONAL_PORTS
from repro.trajectory import cluster_routes, detect_stops, discover_anchorages
from repro.trajectory.points import TrackPoint, Trajectory

LANES = [
    ((48.38, -4.49), (49.65, -1.62)),  # Brest → Cherbourg
    ((48.38, -4.49), (43.35, -3.03)),  # Brest → Bilbao
    ((51.85, -8.29), (49.48, 0.11)),   # Cork → Le Havre
]


@pytest.fixture(scope="module")
def lane_tracks():
    tracks = []
    labels = []
    for lane_index, (origin, dest) in enumerate(LANES):
        for k in range(6):
            rng = random.Random(lane_index * 100 + k)
            plan = plan_transit(0.0, 10 * 3600.0, origin, dest, 13.0, rng)
            points = [
                TrackPoint(s.t, s.lat, s.lon, s.sog_knots, s.cog_deg)
                for s in plan.sample(300.0)
            ]
            tracks.append(Trajectory(1000 * lane_index + k, points))
            labels.append(lane_index)
    return tracks, labels


def test_a4_route_clustering_purity(lane_tracks, benchmark, report):
    tracks, labels = lane_tracks
    clusters = benchmark.pedantic(
        cluster_routes, args=(tracks, 3),
        kwargs=dict(resample_step_s=1200.0, seed=3),
        iterations=1, rounds=1,
    )
    total = 0
    majority = 0
    purities = []
    for cluster in clusters:
        member_labels = [labels[i] for i in cluster.member_indices]
        if not member_labels:
            continue
        dominant = max(set(member_labels), key=member_labels.count)
        majority += member_labels.count(dominant)
        total += len(member_labels)
        purities.append(member_labels.count(dominant) / len(member_labels))
    purity = majority / total
    report(
        "",
        "A4a — route clustering (3 lanes, 18 tracks, k-medoids + DTW)",
        f"  clusters: {[len(c.member_indices) for c in clusters]}",
        f"  purity: {purity:.2f}",
    )
    assert purity >= 0.9


@pytest.fixture(scope="module")
def ferry_stops():
    """Short-route ferry world: Brest↔Roscoff shuttles whose turnaround
    dwells reveal both terminals."""
    from repro.simulation.behaviours import plan_ferry
    from repro.simulation.world import port_by_name

    brest = port_by_name("BREST").position
    roscoff = port_by_name("ROSCOFF").position
    stops = []
    for k in range(8):
        rng = random.Random(500 + k)
        plan = plan_ferry(
            0.0, 10 * 3600.0, brest, roscoff, 16.0, rng,
            turnaround_s=2400.0,
        )
        points = [
            TrackPoint(s.t, s.lat, s.lon, s.sog_knots, s.cog_deg)
            for s in plan.sample(120.0)
        ]
        stops.extend(
            detect_stops(Trajectory(800 + k, points), min_duration_s=1200.0)
        )
    return stops


def test_a4_anchorage_discovery(ferry_stops, benchmark, report):
    anchorages = benchmark.pedantic(
        discover_anchorages, args=(ferry_stops,),
        kwargs=dict(merge_radius_m=5_000.0, min_stops=3),
        iterations=1, rounds=3,
    )
    at_port = sum(
        1 for anchorage in anchorages
        if any(
            haversine_m(anchorage.lat, anchorage.lon, port.lat, port.lon)
            < 10_000.0
            for port in REGIONAL_PORTS
        )
    )
    report(
        "",
        "A4b — anchorage discovery from ferry turnaround stops",
        f"  stops: {len(ferry_stops)}, anchorages: {len(anchorages)}, "
        f"at catalogued ports: {at_port}",
        *(
            f"    ({a.lat:.3f}, {a.lon:.3f}) "
            f"{a.n_stops} stops / {a.n_vessels} vessels"
            for a in anchorages[:5]
        ),
    )
    # Both terminals rediscovered, and every anchorage is a real port.
    assert len(anchorages) >= 2
    assert at_port == len(anchorages)
