"""Shared fixtures for the benchmark/experiment harness.

Each ``bench_*.py`` regenerates one figure or experiment from
EXPERIMENTS.md.  Scenarios are session-scoped (building them dominates
runtime); the ``report`` fixture prints experiment tables to the real
stdout so they land in ``bench_output.txt`` even under pytest capture.
"""

import pytest

from repro.core import MaritimePipeline
from repro.simulation import global_scenario, regional_scenario


@pytest.fixture(scope="session")
def regional_run():
    """The standard surveillance-theatre workload (E2, E3, E5, E8, FIG2)."""
    return regional_scenario(n_vessels=30, duration_s=3 * 3600.0, seed=101).run()


@pytest.fixture(scope="session")
def regional_result(regional_run):
    return MaritimePipeline().process(regional_run)


@pytest.fixture(scope="session")
def global_run():
    """The worldwide satellite workload (FIG1)."""
    return global_scenario(n_vessels=150, duration_s=6 * 3600.0, seed=101).run()


@pytest.fixture
def report(capsys):
    """Print experiment tables past pytest's capture."""

    def _print(*lines: str) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)

    return _print
