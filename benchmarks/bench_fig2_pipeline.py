"""FIG2 — the integrated maritime information infrastructure end to end.

Paper anchor: Figure 2 ("Towards an integrated maritime information
infrastructure").  The benchmark runs the complete pipeline over the
regional feed and reports per-stage throughput — the quantitative face of
the architecture diagram.
"""

from repro.core import MaritimePipeline
from repro.events import EventKind


def test_fig2_full_pipeline(regional_run, benchmark, report):
    pipeline = MaritimePipeline()
    result = benchmark.pedantic(
        pipeline.process, args=(regional_run,), iterations=1, rounds=3
    )

    report(
        "",
        "FIG2 — integrated pipeline stage report",
        "  " + "\n  ".join(result.summary().split("\n")),
        f"  synopsis compression: "
        f"{pipeline.mean_compression_ratio(result):.1%}",
        f"  decoder stats: decoded={result.decoder_stats.get('decoded', 0)}",
    )

    names = [s.name for s in result.stages]
    assert names == [
        "decode", "reorder", "reconstruct", "synopses",
        "integrate", "fuse", "detect", "forecast", "overview",
    ]
    # Every component of Figure 2 produced output.
    assert result.trajectories
    assert result.events
    assert result.forecasts
    assert len(result.triples) > 0
    assert result.cube.total > 0
    assert result.overview is not None
    # The ingest stage sustains far more than the worldwide average rate
    # (208 msg/s, §1) — the premise that one node can host the pipeline.
    assert result.stage("decode").throughput_per_s > 2_000.0
