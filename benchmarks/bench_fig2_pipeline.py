"""FIG2 — the integrated maritime information infrastructure end to end.

Paper anchor: Figure 2 ("Towards an integrated maritime information
infrastructure").  The benchmark runs the complete pipeline over the
regional feed six ways — a one-shot batch replay, a live stream of
micro-batches through the same stage runtime, the sharded per-vessel
phase at workers 1/2/4, the ingest path through the source layer
(in-process iterable vs NMEA-file replay via the monitor façade), the
sink-dispatch path (a deliberately slow subscriber on the sync vs
async dispatcher), and the decode-only axis (scalar loop vs the
vectorised micro-batch decoder over identical assembled payloads, with
the columnar-vs-object fix materialisation comparison) — reports
per-stage throughput plus per-increment latency, verifies all paths
agree on the event set, and records everything in
``BENCH_pipeline.json`` for the CI artifact upload
(``check_bench_trend.py --pipeline`` guards the dispatch,
worker-scaling and decode-speedup invariants).
"""

import json
import os
import sys
import time
from collections import Counter

from benchutil import machine_calibration_s

from repro.ais import AisDecoder, ClassBPositionReport, PositionReport
from repro.ais import batch as ais_batch
from repro.ais.batch import FixBatch
from repro.core import MaritimePipeline, PipelineConfig
from repro.events.cep import event_key
from repro.monitor import MaritimeMonitor
from repro.persist import SqliteTrackStore, latest_checkpoint, read_manifest
from repro.sources import IterableSource, NmeaFileSource, write_nmea_file
from repro.trajectory.points import TrackPoint

BENCH_JSON = os.environ.get("REPRO_BENCH_PIPELINE_JSON", "BENCH_pipeline.json")
LIVE_TICK_S = 300.0

#: Results shared between the two tests so the JSON carries both paths.
_RESULTS: dict = {}


def _write_json() -> None:
    payload = {
        "benchmark": "fig2_pipeline",
        "smoke": os.environ.get("REPRO_BENCH_SMOKE") == "1",
        "calibration_s": round(machine_calibration_s(), 5),
        **_RESULTS,
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def test_fig2_full_pipeline(regional_run, benchmark, report):
    pipeline = MaritimePipeline()
    result = benchmark.pedantic(
        pipeline.process, args=(regional_run,), iterations=1, rounds=3
    )
    # The JSON records per-stage walls from one run; re-run a couple of
    # rounds and keep the quietest one (min-of-N, the same convention
    # as the benchmark table's Min column) so a scheduler hiccup in a
    # single round does not land in the committed trend baseline.
    for _ in range(2):
        candidate = pipeline.process(regional_run)
        if (
            sum(s.seconds for s in candidate.stages)
            < sum(s.seconds for s in result.stages)
        ):
            result = candidate

    report(
        "",
        "FIG2 — integrated pipeline stage report (batch replay)",
        "  " + "\n  ".join(result.summary().split("\n")),
        f"  synopsis compression: "
        f"{pipeline.mean_compression_ratio(result):.1%}",
        f"  decoder stats: decoded={result.decoder_stats.get('decoded', 0)}",
    )

    names = [s.name for s in result.stages]
    assert names == [
        "decode", "reorder", "reconstruct", "synopses",
        "integrate", "fuse", "detect", "forecast", "overview",
    ]
    # Every component of Figure 2 produced output.
    assert result.trajectories
    assert result.events
    assert result.forecasts
    assert len(result.triples) > 0
    assert result.cube.total > 0
    assert result.overview is not None
    # The ingest stage sustains far more than the worldwide average rate
    # (208 msg/s, §1) — the premise that one node can host the pipeline.
    assert result.stage("decode").throughput_per_s > 2_000.0

    wall = sum(s.seconds for s in result.stages)
    _RESULTS["batch"] = {
        "n_observations": len(regional_run.observations),
        "wall_s": round(wall, 4),
        "records_per_s": (
            round(len(regional_run.observations) / wall, 1) if wall > 0 else 0.0
        ),
        "n_events": len(result.events),
        "stages": [
            {
                "name": s.name,
                "n_in": s.n_in,
                "n_out": s.n_out,
                "seconds": round(s.seconds, 4),
                "throughput_per_s": round(s.throughput_per_s, 1),
            }
            for s in result.stages
        ],
    }
    _write_json()


def test_fig2_incremental_pipeline(regional_run, report):
    """The same feed through ``run_live`` micro-batches: per-increment
    latency, sustained throughput, and batch equivalence."""
    batch_events = {
        event_key(e)
        for e in MaritimePipeline().process(regional_run).events
    }

    pipeline = MaritimePipeline()
    increments = list(
        pipeline.replay_live(regional_run, tick_s=LIVE_TICK_S)
    )
    live_events = [e for inc in increments for e in inc.new_events]

    # Equivalence: the live path discovers exactly the batch event set.
    assert {event_key(e) for e in live_events} == batch_events

    # The flush increment closes every open segment at once; report the
    # steady-state ticks and the flush separately.
    ticks, flush = increments[:-1], increments[-1]
    latencies = sorted(inc.seconds for inc in ticks)
    n_records = sum(inc.n_records for inc in increments)
    wall = sum(inc.seconds for inc in increments)
    mean_ms = 1000.0 * sum(latencies) / len(latencies) if latencies else 0.0
    p95_ms = 1000.0 * latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0
    max_ms = 1000.0 * latencies[-1] if latencies else 0.0

    report(
        "",
        f"FIG2 — incremental pipeline ({LIVE_TICK_S:.0f} s ticks)",
        f"  increments: {len(ticks)} + flush, {n_records} records",
        f"  per-increment latency: mean {mean_ms:.1f} ms, "
        f"p95 {p95_ms:.1f} ms, max {max_ms:.1f} ms, "
        f"flush {flush.seconds * 1000:.1f} ms",
        f"  sustained: {n_records / wall:,.0f} records/s"
        if wall > 0 else "  sustained: n/a",
        f"  events: {len(live_events)} (equal to batch set)",
    )

    _RESULTS["incremental"] = {
        "tick_s": LIVE_TICK_S,
        "n_increments": len(ticks),
        "n_records": n_records,
        "wall_s": round(wall, 4),
        "records_per_s": round(n_records / wall, 1) if wall > 0 else 0.0,
        "latency_mean_ms": round(mean_ms, 2),
        "latency_p95_ms": round(p95_ms, 2),
        "latency_max_ms": round(max_ms, 2),
        "flush_ms": round(flush.seconds * 1000.0, 2),
        "n_events": len(live_events),
        "events_equal_batch": True,
    }
    _write_json()


def test_fig2_ingest_sources(regional_run, tmp_path, report):
    """The ingest path through the source layer: the same feed consumed
    in-process and replayed from an NMEA file (TAG-block timestamps,
    decode included), both through the ``MaritimeMonitor`` façade."""
    feed_path = str(tmp_path / "feed.nmea")
    write_nmea_file(regional_run.observations, feed_path)

    results: dict = {}
    for name, make_source in (
        ("iterable", lambda: IterableSource(regional_run.observations)),
        ("nmea_file", lambda: NmeaFileSource(feed_path)),
    ):
        monitor = MaritimeMonitor(
            specs=regional_run.specs, weather=regional_run.weather
        ).attach(make_source())
        t0 = time.perf_counter()
        outcome = monitor.run(tick_s=LIVE_TICK_S)
        total_s = time.perf_counter() - t0
        results[name] = {
            "n_records": outcome.n_records,
            "n_events": outcome.n_events,
            # total includes source parse/decode; feed is pipeline-only.
            "total_s": round(total_s, 4),
            "feed_s": round(outcome.wall_s, 4),
            "records_per_s": (
                round(outcome.n_records / total_s, 1) if total_s > 0 else 0.0
            ),
            "latency_p95_ms": round(
                outcome.latency_quantile_s(0.95) * 1000.0, 2
            ),
        }

    # Same feed, same products, whatever the transport.
    assert results["iterable"]["n_events"] == results["nmea_file"]["n_events"]
    assert results["iterable"]["n_records"] == results["nmea_file"]["n_records"]

    report(
        "",
        f"FIG2 — ingest path via sources ({LIVE_TICK_S:.0f} s ticks)",
        *(
            f"  {name:>10}: {r['records_per_s']:>9,.0f} rec/s end-to-end, "
            f"p95 tick {r['latency_p95_ms']:.1f} ms "
            f"(feed {r['feed_s']:.2f} s of {r['total_s']:.2f} s total)"
            for name, r in results.items()
        ),
    )
    _RESULTS["ingest"] = {"tick_s": LIVE_TICK_S, **results}
    _write_json()


#: Worker counts for the sharded per-vessel phase scaling axis.
WORKER_COUNTS = (1, 2, 4)

#: Required workers=4 vs workers=1 speedup where threads can actually
#: run in parallel (>= 4 cores, free-threaded interpreter).  On GIL
#: builds or small runners the guard degrades to an overhead floor —
#: sharding must not *cost* more than ~35% — because pure-Python shard
#: tasks cannot overlap under the GIL.
EXPECTED_MIN_SPEEDUP = 1.8
OVERHEAD_FLOOR = 0.65


def _gil_enabled() -> bool:
    probe = getattr(sys, "_is_gil_enabled", None)
    return True if probe is None else bool(probe())


def test_fig2_worker_scaling(regional_run, report):
    """The sharded runtime's scaling axis: the same batch replay at
    workers 1/2/4, with exact product parity asserted per count and the
    hardware context recorded so the CI guard can judge the ratios."""
    runs: dict = {}
    baseline_events = None
    baseline_cells = None
    for workers in WORKER_COUNTS:
        pipeline = MaritimePipeline(PipelineConfig(workers=workers))
        t0 = time.perf_counter()
        result = pipeline.process(regional_run)
        wall = time.perf_counter() - t0
        events = {event_key(e) for e in result.events}
        cells = result.cube.cell_counts()
        if workers == 1:
            baseline_events, baseline_cells = events, cells
        parity = events == baseline_events and cells == baseline_cells
        assert parity, f"workers={workers} diverged from workers=1"
        runs[str(workers)] = {
            "wall_s": round(wall, 4),
            "records_per_s": round(
                len(regional_run.observations) / wall, 1
            ) if wall > 0 else 0.0,
            "n_events": len(result.events),
            "events_equal_workers1": events == baseline_events,
            "cube_equal_workers1": cells == baseline_cells,
        }

    wall_1 = runs["1"]["wall_s"]
    for workers in WORKER_COUNTS[1:]:
        wall_n = runs[str(workers)]["wall_s"]
        runs[str(workers)]["speedup_vs_workers1"] = round(
            wall_1 / wall_n, 3
        ) if wall_n > 0 else 0.0

    cpu_count = os.cpu_count() or 1
    gil = _gil_enabled()
    parallel_capable = cpu_count >= 4 and not gil
    report(
        "",
        "FIG2 — sharded per-vessel phase (workers axis)",
        *(
            f"  workers={w}: {runs[str(w)]['records_per_s']:>9,.0f} rec/s"
            + (
                f" ({runs[str(w)]['speedup_vs_workers1']:.2f}x vs 1)"
                if w > 1 else ""
            )
            for w in WORKER_COUNTS
        ),
        f"  hardware: {cpu_count} cores, GIL {'on' if gil else 'off'} — "
        + (
            f"guard requires >= {EXPECTED_MIN_SPEEDUP}x at workers=4"
            if parallel_capable
            else f"guard requires overhead floor >= {OVERHEAD_FLOOR}x only"
        ),
    )
    _RESULTS["workers"] = {
        "counts": list(WORKER_COUNTS),
        "cpu_count": cpu_count,
        "gil_enabled": gil,
        "parallel_capable": parallel_capable,
        "expected_min_speedup": EXPECTED_MIN_SPEEDUP,
        "overhead_floor": OVERHEAD_FLOOR,
        "runs": runs,
    }
    _write_json()


#: Required vectorised-vs-scalar decode speedup, recorded in the JSON
#: for ``check_bench_trend.py --pipeline``.  Measured ~6.5x on 1-core
#: CI-class hardware; the floor leaves room for runner noise while
#: still failing loudly if the hot types fall off the vector path.
DECODE_MIN_SPEEDUP = 3.5

#: Decode timing repetitions (best-of, to shed warmup and GC noise).
DECODE_ROUNDS = 3


def test_fig2_decode_axis(regional_run, report):
    """The decode-only axis: scalar loop vs vectorised micro-batch over
    the *same* assembled payloads (multipart assembly runs once, up
    front, exactly as in ``DecodeStage``), plus the columnar
    :class:`FixBatch` vs per-message object materialisation of track
    points.  Decoded messages and stats must match pair-for-pair —
    the speedup is only meaningful if the outputs are identical."""
    decoder = AisDecoder()
    staged = []
    for obs in regional_run.observations:
        ready = decoder.assemble(obs.sentence)
        if ready is not None:
            staged.append(
                (obs.t_transmitted, ready[0], ready[1], obs.t_received)
            )

    def time_decode(force_scalar):
        best, decoded, stats = float("inf"), None, None
        for _ in range(DECODE_ROUNDS):
            stats = Counter()
            t0 = time.perf_counter()
            decoded = ais_batch.decode_staged(
                staged, stats, force_scalar=force_scalar
            )
            best = min(best, time.perf_counter() - t0)
        return best, decoded, stats

    scalar_s, scalar_decoded, scalar_stats = time_decode(True)
    batch_s, batch_decoded, batch_stats = time_decode(False)
    assert batch_decoded == scalar_decoded
    assert batch_stats == scalar_stats

    # Columnar vs object materialisation of the accepted fixes: the
    # object path builds every message then one TrackPoint per position
    # report (what the per-vessel phase does); the columnar path reads
    # the FixBatch columns the decode pass filled.
    t0 = time.perf_counter()
    object_points = [
        TrackPoint(t, m.lat, m.lon, m.sog_knots, m.cog_deg)
        for t, m in scalar_decoded
        if isinstance(m, (PositionReport, ClassBPositionReport))
    ]
    object_s = time.perf_counter() - t0
    fixes = FixBatch()
    ais_batch.decode_staged(staged, Counter(), fixes=fixes)
    t0 = time.perf_counter()
    columnar_points = fixes.trackpoints()
    columnar_s = time.perf_counter() - t0
    assert len(columnar_points) == len(object_points)

    speedup = scalar_s / batch_s if batch_s > 0 else 0.0
    if ais_batch.available():
        # The hard floor lives in check_bench_trend.py; here just catch
        # a vector path that stopped being one.
        assert speedup > 1.0

    report(
        "",
        f"FIG2 — decode axis ({len(staged)} assembled payloads, "
        f"best of {DECODE_ROUNDS})",
        f"  scalar: {scalar_s:.4f} s "
        f"({len(staged) / scalar_s:>9,.0f} sentences/s)",
        f"  batch:  {batch_s:.4f} s "
        f"({len(staged) / batch_s:>9,.0f} sentences/s)  "
        f"{speedup:.2f}x"
        + ("" if ais_batch.available() else "  [numpy unavailable]"),
        f"  fix materialisation: objects {object_s * 1000:.1f} ms vs "
        f"columnar {columnar_s * 1000:.1f} ms "
        f"({len(columnar_points)} track points)",
    )
    _RESULTS["decode"] = {
        "n_staged": len(staged),
        "vectorised": ais_batch.available(),
        "min_speedup": DECODE_MIN_SPEEDUP,
        "rounds": DECODE_ROUNDS,
        "scalar": {
            "seconds": round(scalar_s, 4),
            "sentences_per_s": round(len(staged) / scalar_s, 1),
        },
        "batch": {
            "seconds": round(batch_s, 4),
            "sentences_per_s": round(len(staged) / batch_s, 1),
        },
        "speedup": round(speedup, 3),
        "materialise": {
            "n_points": len(columnar_points),
            "object_s": round(object_s, 4),
            "columnar_s": round(columnar_s, 4),
        },
    }
    _write_json()


#: Per-increment sleep of the deliberately slow subscriber — roughly
#: 100x a healthy tick's feed latency on this workload.
SLOW_SINK_SLEEP_S = 0.02


def test_fig2_sink_dispatch(regional_run, report):
    """The dispatch path under a slow consumer: ingest throughput with
    no subscriber, with the slow sink on the synchronous hub, and with
    the same sink behind the bounded async dispatcher — plus the
    delivered/dropped reconciliation the async path promises."""

    def slow_sink(increment):
        time.sleep(SLOW_SINK_SLEEP_S)

    def run_once(subscribe=None):
        monitor = MaritimeMonitor(
            specs=regional_run.specs, weather=regional_run.weather
        )
        if subscribe is not None:
            subscribe(monitor)
        monitor.attach(IterableSource(regional_run.observations))
        t0 = time.perf_counter()
        outcome = monitor.run(tick_s=LIVE_TICK_S)
        return outcome, time.perf_counter() - t0

    baseline, baseline_s = run_once()
    sync_outcome, sync_s = run_once(
        lambda m: m.subscribe(on_increment=slow_sink)
    )
    async_outcome, async_s = run_once(
        lambda m: m.subscribe(
            on_increment=slow_sink, async_dispatch=True, max_queue=2
        )
    )

    def rate(outcome, seconds):
        return round(outcome.n_records / seconds, 1) if seconds > 0 else 0.0

    (async_sub,) = async_outcome.subscriptions
    results = {
        "tick_s": LIVE_TICK_S,
        "slow_sink_sleep_s": SLOW_SINK_SLEEP_S,
        "n_increments": baseline.n_increments,
        "baseline": {
            "total_s": round(baseline_s, 4),
            "records_per_s": rate(baseline, baseline_s),
        },
        "sync": {
            "total_s": round(sync_s, 4),
            "records_per_s": rate(sync_outcome, sync_s),
        },
        "async": {
            "total_s": round(async_s, 4),
            "records_per_s": rate(async_outcome, async_s),
            "n_submitted": async_sub.n_submitted,
            "n_delivered": async_sub.n_delivered,
            "n_dropped": async_sub.n_dropped,
        },
        # within-10%-of-baseline is the acceptance target; record the
        # measured ratio so the trend gate can judge it.
        "async_vs_baseline": round(async_s / baseline_s, 3)
        if baseline_s > 0 else 0.0,
        "sync_vs_baseline": round(sync_s / baseline_s, 3)
        if baseline_s > 0 else 0.0,
    }

    # Invariants (mirrored by check_bench_trend.py --pipeline): the
    # accounting reconciles exactly and the async path beats sync.
    assert async_sub.n_submitted == async_outcome.n_increments
    assert async_sub.n_submitted == (
        async_sub.n_delivered + async_sub.n_dropped
    )
    assert async_s < sync_s
    # Same feed, same products, whatever the dispatch mode.
    assert sync_outcome.n_events == baseline.n_events
    assert async_outcome.n_events == baseline.n_events

    report(
        "",
        f"FIG2 — sink dispatch under a {SLOW_SINK_SLEEP_S * 1000:.0f} ms/"
        f"increment subscriber ({baseline.n_increments} increments)",
        f"  no subscriber: {results['baseline']['records_per_s']:>9,.0f} rec/s",
        f"     sync hub:   {results['sync']['records_per_s']:>9,.0f} rec/s "
        f"({results['sync_vs_baseline']:.2f}x baseline wall)",
        f"     async hub:  {results['async']['records_per_s']:>9,.0f} rec/s "
        f"({results['async_vs_baseline']:.2f}x baseline wall; "
        f"{async_sub.n_delivered} delivered + {async_sub.n_dropped} dropped "
        f"= {async_sub.n_submitted} submitted)",
    )
    _RESULTS["dispatch"] = results
    _write_json()


#: Allowed wall-clock overhead of archiving every increment into the
#: SQLite track store (async dispatch, ``overflow="block"``) vs the
#: bare pipeline.  Enforced by ``check_bench_trend.py --pipeline``.
STORE_MAX_OVERHEAD = 1.5

#: Allowed overhead of writing a full-state checkpoint at *every*
#: micro-batch barrier — the densest (worst-case) cadence; production
#: runs thin it with ``checkpoint_every``.  Measured ~2.8x on CI-class
#: hardware; the ceiling leaves room for runner noise.
CHECKPOINT_MAX_OVERHEAD = 3.5


def test_fig2_durability(regional_run, tmp_path, report):
    """The durable-state axis: checkpoint write/restore latency vs state
    size, track-store insert throughput, and the end-to-end overhead of
    running with the store and with per-tick checkpoints enabled."""

    def run_once(checkpoint_dir=None, store=None, collect=None):
        monitor = MaritimeMonitor(
            specs=regional_run.specs, weather=regional_run.weather
        )
        if store is not None:
            store.attach(monitor)
        if collect is not None:
            monitor.subscribe(on_increment=collect.append)
        monitor.attach(IterableSource(regional_run.observations))
        t0 = time.perf_counter()
        outcome = monitor.run(
            tick_s=LIVE_TICK_S, checkpoint_dir=checkpoint_dir
        )
        return monitor, outcome, time.perf_counter() - t0

    increments: list = []
    __, baseline, baseline_s = run_once(collect=increments)

    # Store axis: archive every increment off the hot path, then replay
    # the same increments synchronously to time the inserts themselves.
    store_db = str(tmp_path / "tracks.db")
    store = SqliteTrackStore(store_db)
    __, store_outcome, store_s = run_once(store=store)
    summary = store.summary()
    store.close()
    rows = (
        summary["vessel_positions"] + summary["track_segments"]
        + summary["events"] + summary["alarms"]
    )
    direct = SqliteTrackStore(str(tmp_path / "direct.db"))
    t0 = time.perf_counter()
    for increment in increments:
        direct.write_increment(increment)
    insert_s = time.perf_counter() - t0
    direct.close()

    # Checkpoint axis: full-state snapshot at every barrier, then one
    # timed restore of the last snapshot.
    ckpt_dir = str(tmp_path / "ckpts")
    monitor, ckpt_outcome, ckpt_s = run_once(checkpoint_dir=ckpt_dir)
    checkpoints = sorted(os.listdir(ckpt_dir))
    last = latest_checkpoint(ckpt_dir)
    snapshot_bytes = os.path.getsize(last)
    t0 = time.perf_counter()
    restored, manifest = monitor.pipeline.restore_session(last)
    restore_s = time.perf_counter() - t0
    assert manifest.watermark == read_manifest(last).watermark
    assert restored.state.watermark == manifest.watermark

    # Same feed, same products, whatever rides along.
    assert store_outcome.n_events == baseline.n_events
    assert ckpt_outcome.n_events == baseline.n_events
    assert summary["events"] == baseline.n_events + baseline.n_complex_events

    store_ratio = store_s / baseline_s if baseline_s > 0 else 0.0
    ckpt_ratio = ckpt_s / baseline_s if baseline_s > 0 else 0.0
    write_ms = (
        1000.0 * (ckpt_s - baseline_s) / len(checkpoints)
        if checkpoints else 0.0
    )
    report(
        "",
        f"FIG2 — durability axis ({LIVE_TICK_S:.0f} s ticks)",
        f"  bare pipeline: {baseline_s:.3f} s "
        f"({baseline.n_records / baseline_s:,.0f} rec/s)",
        f"  with store:    {store_s:.3f} s ({store_ratio:.2f}x; "
        f"{rows} rows, direct insert {rows / insert_s:,.0f} rows/s)",
        f"  with ckpts:    {ckpt_s:.3f} s ({ckpt_ratio:.2f}x; "
        f"{len(checkpoints)} snapshots of {snapshot_bytes / 1024:.0f} KiB, "
        f"~{write_ms:.1f} ms each, restore {restore_s * 1000:.1f} ms)",
    )
    _RESULTS["durability"] = {
        "tick_s": LIVE_TICK_S,
        "baseline_s": round(baseline_s, 4),
        "store": {
            "total_s": round(store_s, 4),
            "overhead_vs_baseline": round(store_ratio, 3),
            "max_overhead": STORE_MAX_OVERHEAD,
            "rows": rows,
            "insert_s": round(insert_s, 4),
            "insert_rows_per_s": (
                round(rows / insert_s, 1) if insert_s > 0 else 0.0
            ),
            "db_bytes": os.path.getsize(store_db),
            "events_equal_baseline": (
                store_outcome.n_events == baseline.n_events
            ),
        },
        "checkpoint": {
            "total_s": round(ckpt_s, 4),
            "overhead_vs_baseline": round(ckpt_ratio, 3),
            "max_overhead": CHECKPOINT_MAX_OVERHEAD,
            "n_checkpoints": len(checkpoints),
            "snapshot_bytes": snapshot_bytes,
            "write_ms_each": round(write_ms, 2),
            "restore_s": round(restore_s, 4),
            "events_equal_baseline": (
                ckpt_outcome.n_events == baseline.n_events
            ),
        },
    }
    _write_json()


#: Subscriber-count axis for the fan-out benchmark (smoke shrinks it).
FANOUT_SUBSCRIBERS = (100, 1_000, 10_000)
FANOUT_SMOKE_SUBSCRIBERS = (50, 200, 1_000)
#: Indexed dispatch must beat the full-scan hub by this factor at the
#: largest subscriber count (the acceptance target; enforced by
#: ``check_bench_trend.py --pipeline``).  Smoke fleets are too small to
#: amortise the index probe, so the floor drops accordingly.
FANOUT_MIN_SPEEDUP = 10.0
FANOUT_SMOKE_MIN_SPEEDUP = 2.0
FANOUT_TICKS = 48
FANOUT_FLEET = 800
FANOUT_EVENTS_PER_TICK = 3


def _fanout_sink(__) -> None:
    """Cheapest possible consumer: the bench times dispatch, not sinks."""


def _fanout_increments(n_ticks: int):
    """Synthetic increments with events scattered over a 10°x10° box."""
    import random

    from repro.core.stages import BackpressureMetrics, PipelineIncrement
    from repro.events.base import Event, EventKind

    rng = random.Random(1789)
    kinds = (
        EventKind.GAP, EventKind.GAP, EventKind.SPEED_ANOMALY,
        EventKind.LOITERING,
    )
    increments = []
    for tick in range(n_ticks):
        events = []
        for i in range(FANOUT_EVENTS_PER_TICK):
            t = 60.0 * (tick + 1)
            events.append(Event(
                kind=kinds[(tick + i) % len(kinds)],
                t_start=t, t_end=t + 60.0,
                mmsis=(rng.randrange(1, FANOUT_FLEET + 1),),
                lat=rng.uniform(45.0, 55.0), lon=rng.uniform(-10.0, 0.0),
                confidence=0.9, details={},
            ))
        increments.append(PipelineIncrement(
            t_watermark=60.0 * (tick + 1),
            n_observations=FANOUT_EVENTS_PER_TICK,
            n_records=FANOUT_EVENTS_PER_TICK,
            new_events=events,
            new_complex_events=[],
            new_alarms=[],
            updated_forecasts={},
            backpressure=BackpressureMetrics(
                feed_latency_s=0.0, records_deferred=0, queue_depths={},
            ),
        ))
    return increments


def _fanout_subscribe(hub, n: int) -> None:
    """A realistic watch mix: mostly per-vessel, some regional, a few
    kind-wide and firehose consumers.  Deterministic, so the indexed and
    scan hubs carry identical subscriber populations."""
    import random

    from repro.events.base import EventKind
    from repro.geo import CircleRegion

    rng = random.Random(7)
    for i in range(n):
        roll = i % 100
        if roll < 80:
            hub.subscribe(
                on_event=_fanout_sink,
                mmsis=rng.sample(range(1, FANOUT_FLEET + 1), 2),
            )
        elif roll < 98:
            hub.subscribe(
                on_event=_fanout_sink,
                region=CircleRegion(
                    rng.uniform(45.5, 54.5), rng.uniform(-9.5, -0.5),
                    30_000.0,
                ),
            )
        elif roll == 98:
            hub.subscribe(on_event=_fanout_sink,
                          kinds=[EventKind.LOITERING])
        else:
            hub.subscribe(on_increment=_fanout_sink)


def test_fig2_fanout(report):
    """The fan-out axis: indexed candidate routing vs the full scan at
    100/1k/10k subscribers, plus thread-count independence of the shared
    dispatch pool."""
    import threading

    from repro.sinks import SubscriptionHub
    from repro.sinks.dispatch import default_pool_workers

    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    counts = FANOUT_SMOKE_SUBSCRIBERS if smoke else FANOUT_SUBSCRIBERS
    min_speedup = FANOUT_SMOKE_MIN_SPEEDUP if smoke else FANOUT_MIN_SPEEDUP
    increments = _fanout_increments(FANOUT_TICKS)

    def run_once(n: int, indexed: bool):
        hub = SubscriptionHub(indexed=indexed)
        _fanout_subscribe(hub, n)
        t0 = time.perf_counter()
        for increment in increments:
            hub.dispatch(increment)
        seconds = time.perf_counter() - t0
        delivered = sum(
            sum(s.delivered.values()) for s in hub.registry
        )
        return seconds, delivered

    runs = []
    lines = [
        "",
        f"FIG2 — subscription fan-out ({FANOUT_TICKS} increments, "
        f"{FANOUT_EVENTS_PER_TICK} events each, fleet {FANOUT_FLEET})",
    ]
    for n in counts:
        scan_s, scan_delivered = run_once(n, indexed=False)
        indexed_s, indexed_delivered = run_once(n, indexed=True)
        speedup = scan_s / indexed_s if indexed_s > 0 else 0.0

        # Thread-count independence: async lanes ride the shared pool,
        # so subscriber count must not move the thread count.
        before = threading.active_count()
        pooled = SubscriptionHub()
        for __ in range(n):
            pooled.subscribe(on_increment=_fanout_sink,
                             async_dispatch=True)
        threads_added = threading.active_count() - before
        pooled.close()
        assert threads_added <= default_pool_workers()

        # The index only over-selects; exact filters still run, so the
        # two hubs must deliver identically.
        assert indexed_delivered == scan_delivered
        runs.append({
            "subscribers": n,
            "scan_s": round(scan_s, 4),
            "indexed_s": round(indexed_s, 4),
            "speedup": round(speedup, 2),
            "scan_increments_per_s": round(FANOUT_TICKS / scan_s, 1)
            if scan_s > 0 else 0.0,
            "indexed_increments_per_s": round(FANOUT_TICKS / indexed_s, 1)
            if indexed_s > 0 else 0.0,
            "delivered": indexed_delivered,
            "events_equal": indexed_delivered == scan_delivered,
            "threads_added": threads_added,
        })
        lines.append(
            f"  {n:>6,} subscribers: scan {scan_s:.3f}s, indexed "
            f"{indexed_s:.3f}s ({speedup:.1f}x; {threads_added} pool "
            f"threads)"
        )

    largest = runs[-1]
    assert largest["speedup"] >= min_speedup, (
        f"indexed dispatch only {largest['speedup']:.1f}x the scan at "
        f"{largest['subscribers']} subscribers (floor {min_speedup}x)"
    )
    assert len({r["threads_added"] for r in runs}) == 1

    report(*lines)
    _RESULTS["fanout"] = {
        "ticks": FANOUT_TICKS,
        "events_per_tick": FANOUT_EVENTS_PER_TICK,
        "fleet": FANOUT_FLEET,
        "min_speedup": min_speedup,
        "pool_workers": default_pool_workers(),
        "runs": runs,
    }
    _write_json()
