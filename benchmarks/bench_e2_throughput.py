"""E2 — ingest throughput vs the 18M positions/day worldwide feed (§1).

The paper quotes ~18 million positions per day worldwide ([16]), i.e. an
*average* of ~208 messages/second.  This benchmark measures the pure-
Python decode and decode+reconstruct rates and reports the headroom —
the feasibility premise behind a single-node integrated pipeline.
"""

import pytest

from repro.ais.decoder import AisDecoder
from repro.ais.types import ClassBPositionReport, PositionReport
from repro.trajectory.reconstruction import TrackReconstructor

WORLDWIDE_AVG_MSG_PER_S = 18_000_000 / 86_400.0  # ≈208


@pytest.fixture(scope="module")
def sentences(regional_run):
    return regional_run.sentences[:40_000]


def decode_all(sentences):
    decoder = AisDecoder()
    count = 0
    for sentence in sentences:
        if decoder.feed(sentence) is not None:
            count += 1
    return count


def decode_and_reconstruct(sentences):
    decoder = AisDecoder()
    reconstructor = TrackReconstructor()
    t = 0.0
    for sentence in sentences:
        message = decoder.feed(sentence)
        if isinstance(message, (PositionReport, ClassBPositionReport)):
            t += 0.1
            reconstructor.add(message, t)
    return reconstructor


def test_e2_decode_throughput(sentences, benchmark, report):
    count = benchmark(decode_all, sentences)
    seconds = benchmark.stats.stats.mean
    rate = len(sentences) / seconds
    report(
        "",
        "E2 — ingest throughput",
        f"  decoded {count}/{len(sentences)} sentences",
        f"  decode rate: {rate:,.0f} msg/s",
        f"  worldwide average feed: {WORLDWIDE_AVG_MSG_PER_S:,.0f} msg/s",
        f"  headroom: {rate / WORLDWIDE_AVG_MSG_PER_S:,.0f}x",
    )
    assert rate > 10 * WORLDWIDE_AVG_MSG_PER_S


def test_e2_decode_reconstruct_throughput(sentences, benchmark, report):
    reconstructor = benchmark(decode_and_reconstruct, sentences)
    seconds = benchmark.stats.stats.mean
    rate = len(sentences) / seconds
    report(
        f"  decode+reconstruct rate: {rate:,.0f} msg/s "
        f"({rate / WORLDWIDE_AVG_MSG_PER_S:,.0f}x the worldwide average)",
    )
    assert rate > 5 * WORLDWIDE_AVG_MSG_PER_S
    assert reconstructor.stats.accepted > 0
