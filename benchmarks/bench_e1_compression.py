"""E1 — trajectory synopses: the 95% compression claim (§2.1, [29]).

Sweeps the three synopsis algorithms over error tolerances on
reconstructed regional traffic and reports compression ratio vs
time-synchronised deviation.  Shape to reproduce: ≥95% compression at
navigation-grade error (~100 m) on lane traffic; the *online*
dead-reckoning synopsis reaches it too, which is what makes in-situ
placement (§2.1) viable.
"""

import pytest

from repro.trajectory import (
    compression_ratio,
    dead_reckoning_compress,
    douglas_peucker,
    max_sed_error_m,
    mean_sed_error_m,
    squish_e,
)

ALGORITHMS = {
    "douglas-peucker": douglas_peucker,
    "dead-reckoning": dead_reckoning_compress,
    "squish-e": squish_e,
}
TOLERANCES_M = [25.0, 50.0, 100.0, 200.0]


@pytest.fixture(scope="module")
def tracks(regional_result):
    return [tr for tr in regional_result.trajectories if len(tr) >= 100]


def sweep(tracks, algorithm, tolerance):
    ratios, max_errors, mean_errors = [], [], []
    for track in tracks:
        synopsis = algorithm(track, tolerance)
        ratios.append(compression_ratio(track, synopsis))
        max_errors.append(max_sed_error_m(track, synopsis))
        mean_errors.append(mean_sed_error_m(track, synopsis))
    n = len(tracks)
    return (
        sum(ratios) / n,
        sum(max_errors) / n,
        sum(mean_errors) / n,
    )


def test_e1_compression_sweep(tracks, benchmark, report):
    assert len(tracks) >= 5

    def run_sweep():
        out = {}
        for name, algorithm in ALGORITHMS.items():
            for tolerance in TOLERANCES_M:
                out[(name, tolerance)] = sweep(tracks, algorithm, tolerance)
        return out

    full = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    report(
        "",
        "E1 — synopsis compression sweep "
        f"({len(tracks)} tracks, {sum(len(t) for t in tracks)} fixes)",
        f"  {'algorithm':<16}{'tol (m)':>8}{'ratio':>9}"
        f"{'max SED (m)':>13}{'mean SED (m)':>14}",
    )
    results = {}
    for (name, tolerance), (ratio, max_err, mean_err) in full.items():
        results[(name, tolerance)] = (ratio, max_err)
        report(
            f"  {name:<16}{tolerance:>8.0f}{ratio:>9.1%}"
            f"{max_err:>13.0f}{mean_err:>14.1f}"
        )

    # The paper's anchor: ≥95% compression at ~100 m tolerance.
    for name in ALGORITHMS:
        ratio, __ = results[(name, 100.0)]
        assert ratio >= 0.90, f"{name} only reached {ratio:.1%}"
    assert results[("dead-reckoning", 100.0)][0] >= 0.95
    # Ratios must not decrease with tolerance (monotone trade-off).
    for name in ALGORITHMS:
        ratios = [results[(name, tol)][0] for tol in TOLERANCES_M]
        assert all(b >= a - 0.02 for a, b in zip(ratios, ratios[1:]))


def test_e1_online_synopsis_speed(tracks, benchmark):
    """The dead-reckoning synopsis must be cheap enough for in-situ use."""
    track = max(tracks, key=len)
    result = benchmark(dead_reckoning_compress, track, 100.0)
    assert compression_ratio(track, result) > 0.5
