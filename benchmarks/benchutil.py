"""Shared helpers for the benchmark harness (not collected by pytest)."""

import math
import time


def machine_calibration_s(n: int = 200_000, repeats: int = 3) -> float:
    """Seconds this machine takes for a fixed pure-python workload.

    Benchmark JSONs record it so CI trend checks can compare *normalised*
    times (``total_s / calibration_s``) across runners of different
    speeds instead of failing on hardware variance.
    """
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        acc = 0.0
        for i in range(n):
            acc += math.sqrt((i % 997) + 1.5)
        best = min(best, time.perf_counter() - t0)
    # ``acc`` keeps the loop from being optimised away by exotic runtimes.
    return best + (0.0 * acc)
