"""A2 (ablation) — in-situ synopsis placement vs centralised processing.

§2.1: in-situ frameworks "have to become communication efficient".  The
placement model runs the same decode→synopsise→detect pipeline with the
synopsis stage at the edge (receiver site) vs everything at the fusion
centre, and accounts the bytes crossing the uplink.  Shape: placing the
synopsis operator in-situ removes ~(compression ratio) of the traffic.
"""

import pytest

from repro.streaming import (
    ProcessingNode,
    Record,
    Stream,
    compare_placements,
)
from repro.streaming.insitu import Stage


@pytest.fixture(scope="module")
def edge_feed(regional_result):
    """The raw per-fix stream one receiver would forward."""
    records = []
    for trajectory in regional_result.trajectories:
        for point in trajectory:
            records.append(
                Record(point.t, trajectory.mmsi, (point.lat, point.lon,
                                                  point.sog_knots))
            )
    records.sort(key=lambda r: r.t)
    return records


def test_a2_in_situ_savings(edge_feed, benchmark, report):
    edge = ProcessingNode("receiver-site", uplink_bytes_per_s=125_000.0)
    centre = ProcessingNode("fusion-centre")

    #: The synopsis stage: per-vessel throttling to one fix per 2 min —
    #: the cheapest online synopsis, standing in for dead-reckoning.
    stages = [
        Stage(
            name="synopsise",
            transform=lambda s: s.throttle_per_key(120.0),
            output_record_bytes=48,
        ),
        Stage(
            name="detect",
            transform=lambda s: s.filter(
                lambda r: r.value[2] is not None and r.value[2] < 1.0
            ),
            output_record_bytes=96,
        ),
    ]

    comparison = benchmark.pedantic(
        compare_placements,
        kwargs=dict(
            make_source=lambda: Stream(iter(list(edge_feed))),
            stages=stages,
            edge=edge,
            centre=centre,
            in_situ_stages={"synopsise", "detect"},
        ),
        iterations=1, rounds=3,
    )
    uplink_seconds_central = comparison["central_bytes"] / edge.uplink_bytes_per_s
    uplink_seconds_insitu = comparison["in_situ_bytes"] / edge.uplink_bytes_per_s
    report(
        "",
        "A2 — uplink traffic: centralised vs in-situ synopsis placement",
        f"  raw records at the edge : {len(edge_feed)}",
        f"  centralised uplink      : {comparison['central_bytes']:,.0f} B "
        f"({uplink_seconds_central:.1f} s at 1 Mbit/s)",
        f"  in-situ uplink          : {comparison['in_situ_bytes']:,.0f} B "
        f"({uplink_seconds_insitu:.1f} s)",
        f"  saving                  : {comparison['savings_ratio']:.1%}",
    )
    assert comparison["savings_ratio"] > 0.5


def test_a3_watermark_lateness_ablation(regional_run, benchmark, report):
    """A3 — reorder buffer bound vs data loss (§1 latency).

    Satellite messages arrive minutes late; the watermark bound trades
    completeness against reordering delay.  Shape: drops fall to ~zero
    once the bound covers the satellite latency (~300-400 s).
    """
    from repro.ais.decoder import AisDecoder
    from repro.streaming.watermarks import (
        ReorderStats,
        reorder_with_watermark,
    )

    decoder = AisDecoder()
    arrivals = []
    for obs in regional_run.observations:
        message = decoder.feed(obs.sentence)
        if message is not None:
            arrivals.append((obs.t_received, obs.t_transmitted))

    def drops_with_bound(bound):
        stats = ReorderStats()
        stream = Stream(
            Record(event_t, None, None) for __, event_t in arrivals
        )
        reorder_with_watermark(stream, bound, stats=stats).drain()
        return stats.late / max(1, len(arrivals))

    bounds = [0.0, 60.0, 200.0, 400.0, 800.0]
    drop_rates = benchmark.pedantic(
        lambda: {b: drops_with_bound(b) for b in bounds},
        iterations=1, rounds=1,
    )
    report(
        "",
        "A3 — watermark lateness bound vs late-drop rate",
        f"  {'bound (s)':>10}{'drop rate':>11}",
        *(f"  {b:>10.0f}{rate:>11.2%}" for b, rate in drop_rates.items()),
    )
    rates = [drop_rates[b] for b in bounds]
    assert all(b <= a + 1e-9 for a, b in zip(rates, rates[1:]))
    assert drop_rates[800.0] < 0.01
    assert drop_rates[0.0] > drop_rates[800.0]
