"""E9 — visual analytics: multi-scale aggregation and monitoring (§3.2).

Measures the aggregation-cube operations behind "drill-down / zoom-in on
user-defined spatio-temporal regions" and checks cross-scale consistency
(roll-ups preserve totals), plus the situation monitor's alarm quality on
traffic that deviates from the learned pattern of life.
"""

import pytest

from repro.geo import BoundingBox
from repro.trajectory.points import TrackPoint
from repro.visual import CubeQuery, SituationMonitor, SpatioTemporalCube


@pytest.fixture(scope="module")
def cube(regional_run, regional_result):
    cube = SpatioTemporalCube(cell_deg=0.05, time_bucket_s=900.0)
    for trajectory in regional_result.trajectories:
        spec = regional_run.specs.get(trajectory.mmsi)
        category = spec.ship_type.name.lower() if spec else "unknown"
        for point in trajectory:
            cube.add(point.lat, point.lon, point.t, category)
    return cube


def test_e9_drill_down(cube, benchmark, report):
    box = BoundingBox(47.8, 48.8, -5.5, -4.0)
    cells = benchmark(cube.drill_down, box, 0.0, 10_800.0)
    report(
        "",
        "E9 — aggregation cube",
        f"  base cells: {cube.total} observations, "
        f"{len(cube.categories())} categories",
        f"  drill-down into 1°x1.5° box: {len(cells)} cells, "
        f"{sum(cells.values())} observations",
    )
    assert sum(cells.values()) == cube.count(
        CubeQuery(box=box, t0=0.0, t1=10_800.0)
    )


def test_e9_roll_up_consistency(cube, benchmark, report):
    def roll_ups():
        return [cube.roll_up_space(factor) for factor in (2, 5, 10)]

    spaces = benchmark.pedantic(roll_ups, iterations=1, rounds=3)
    totals = [sum(level.values()) for level in spaces]
    cells = [len(level) for level in spaces]
    report(
        f"  roll-up x2/x5/x10: {cells} cells, totals {totals}",
    )
    # Totals preserved at every scale; cell counts shrink monotonically.
    assert all(total == cube.total for total in totals)
    assert cells[0] >= cells[1] >= cells[2]


def test_e9_situation_monitor(regional_result, benchmark, report):
    pol = regional_result.pol
    monitor = SituationMonitor(pol, alarm_threshold=0.85)
    # Score every final state; time the scoring loop.
    states = {
        tr.mmsi: tr.points[-1] for tr in regional_result.trajectories
    }

    def score_all():
        local = SituationMonitor(pol, alarm_threshold=0.85)
        for mmsi, point in states.items():
            local.offer(mmsi, point)
        return local

    monitor = benchmark(score_all)
    report(
        f"  situation monitor: {len(states)} live tracks scored, "
        f"{len(monitor.alarms)} alarms "
        f"(model: {pol.n_cells} cells, {pol.n_training_points} fixes)",
    )
    for alarm in monitor.alarms:
        assert alarm.explanation  # every alarm is explained (§3.2/§4)
