"""E4 — open-world vs closed-world rendezvous querying (§4, [9], [43]).

The paper: 27% of ships go dark ≥10% of the time, so "querying rendez-vous
events from an AIS database will return only those events reflected by the
AIS data".  We sweep the dark-ship rate, measure closed-world recall of
injected rendezvous, and show the open-world evaluation recovering the
missed events as possibility mass.  Shape: closed-world recall degrades
as ships go dark; the open-world upper bound stays high exactly when the
data is incomplete.
"""

import pytest

from repro.core import MaritimePipeline
from repro.events import EventKind, match_events
from repro.simulation import regional_scenario
from repro.uncertainty import OpenWorldRelation, ProbabilisticRelation
from repro.uncertainty.openworld import unobserved_pair_candidates

DARK_RATES = [0.0, 0.27, 0.6]


@pytest.fixture(scope="module")
def sweep_results():
    out = []
    for dark_rate in DARK_RATES:
        run = regional_scenario(
            n_vessels=24,
            duration_s=2 * 3600.0,
            seed=404,
            dark_ship_fraction=dark_rate,
            include_spoofer=False,
            n_rendezvous_pairs=2,
        ).run()
        result = MaritimePipeline().process(run)
        rendezvous_events = result.events_of(EventKind.RENDEZVOUS)
        score = match_events(
            rendezvous_events, run.truth_events, "rendezvous",
            time_slack_s=1800.0, distance_slack_m=30_000.0,
        )
        observed = ProbabilisticRelation()
        for event in rendezvous_events:
            observed.add(event.mmsis, event.confidence)
        n_dark = sum(1 for s in run.specs.values() if s.goes_dark)
        hidden = unobserved_pair_candidates(n_dark, len(run.specs))
        interval = OpenWorldRelation(
            observed, completion_lambda=0.05
        ).probability_exists(lambda v: True, n_unobserved=hidden)
        out.append((dark_rate, n_dark, score, interval))
    return out


def test_e4_openworld_sweep(sweep_results, benchmark, report):
    benchmark.pedantic(lambda: list(sweep_results), iterations=1, rounds=1)
    report(
        "",
        "E4 — rendezvous under the closed vs open world",
        f"  {'dark rate':>10}{'dark':>6}{'recall(CW)':>12}"
        f"{'P(CW)':>8}{'P(OW) upper':>13}{'ignorance':>11}",
    )
    for dark_rate, n_dark, score, interval in sweep_results:
        report(
            f"  {dark_rate:>10.2f}{n_dark:>6}{score.recall:>12.2f}"
            f"{interval.lower:>8.2f}{interval.upper:>13.2f}"
            f"{interval.width:>11.2f}"
        )
    by_rate = {r: (s, i) for r, __, s, i in sweep_results}
    # Closed-world answers shrink as the fleet goes dark...
    assert by_rate[0.0][0].recall >= by_rate[0.6][0].recall
    # ...but open-world ignorance (interval width) grows to compensate.
    assert by_rate[0.6][1].width >= by_rate[0.0][1].width
    # With no dark ships the interval is (nearly) closed.
    assert by_rate[0.0][1].width <= 0.05


def test_e4_openworld_query_speed(benchmark):
    relation = ProbabilisticRelation()
    for i in range(1000):
        relation.add(i, 0.3)
    ow = OpenWorldRelation(relation, completion_lambda=0.05)
    interval = benchmark(
        ow.probability_exists, lambda v: v % 7 == 0, 500
    )
    assert 0.0 <= interval.lower <= interval.upper <= 1.0
