"""CI trend gate: fail when a spatial backend regresses against baseline.

Usage::

    python benchmarks/check_bench_trend.py \
        [--current BENCH_spatial.json] \
        [--baseline benchmarks/baselines/BENCH_spatial_smoke.json] \
        [--tolerance 0.30]

Compares the smoke-mode ``BENCH_spatial.json`` a CI run just produced
against the committed baseline.  Times are normalised by each file's
``calibration_s`` (a fixed pure-python workload timed on the same
machine), so the check measures *code* regressions, not runner-size
differences.  A backend fails when its normalised total exceeds the
baseline by more than ``--tolerance`` (default 30%, per ROADMAP).

Result-set invariants (pair counts, chosen auto backend) are compared
exactly: the fleets are seeded, so any drift there is a correctness
regression, not noise.
"""

import argparse
import json
import sys

DEFAULT_BASELINE = "benchmarks/baselines/BENCH_spatial_smoke.json"
BACKENDS = ("grid", "rtree")


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def check(current: dict, baseline: dict, tolerance: float) -> list[str]:
    failures: list[str] = []
    cur_cal = current.get("calibration_s") or 0.0
    base_cal = baseline.get("calibration_s") or 0.0
    if cur_cal <= 0 or base_cal <= 0:
        return ["missing calibration_s in current or baseline JSON"]
    for name, base_wl in baseline.get("workloads", {}).items():
        cur_wl = current.get("workloads", {}).get(name)
        if cur_wl is None:
            failures.append(f"{name}: workload missing from current run")
            continue
        if cur_wl.get("pairs") != base_wl.get("pairs"):
            failures.append(
                f"{name}: pair count changed "
                f"{base_wl.get('pairs')} -> {cur_wl.get('pairs')} "
                "(correctness regression, not noise)"
            )
        if cur_wl.get("auto_backend") != base_wl.get("auto_backend"):
            failures.append(
                f"{name}: auto backend changed "
                f"{base_wl.get('auto_backend')} -> {cur_wl.get('auto_backend')}"
            )
        for backend in BACKENDS:
            base_t = base_wl.get(backend, {}).get("total_s")
            cur_t = cur_wl.get(backend, {}).get("total_s")
            if not base_t or cur_t is None:
                continue
            base_norm = base_t / base_cal
            cur_norm = cur_t / cur_cal
            ratio = cur_norm / base_norm if base_norm > 0 else float("inf")
            marker = "FAIL" if ratio > 1.0 + tolerance else "ok"
            print(
                f"  {name:>16} {backend:>6}: normalised "
                f"{base_norm:8.2f} -> {cur_norm:8.2f}  "
                f"({ratio - 1.0:+.1%})  {marker}"
            )
            if ratio > 1.0 + tolerance:
                failures.append(
                    f"{name}/{backend}: {ratio - 1.0:+.1%} vs baseline "
                    f"(tolerance {tolerance:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--current", default="BENCH_spatial.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args(argv)

    try:
        baseline = load(args.baseline)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; nothing to compare")
        return 0
    current = load(args.current)
    if bool(current.get("smoke")) != bool(baseline.get("smoke")):
        print(
            "warning: smoke flags differ between current and baseline; "
            "fleet sizes are not comparable"
        )
    print(
        f"trend check: {args.current} vs {args.baseline} "
        f"(tolerance {args.tolerance:.0%})"
    )
    failures = check(current, baseline, args.tolerance)
    if failures:
        print("\nREGRESSIONS:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
