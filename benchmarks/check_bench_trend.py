"""CI trend gate: fail when a spatial backend regresses against baseline.

Usage::

    python benchmarks/check_bench_trend.py \
        [--current BENCH_spatial.json] \
        [--baseline benchmarks/baselines/BENCH_spatial_smoke.json] \
        [--tolerance 0.30] \
        [--pipeline BENCH_pipeline.json]

Compares the smoke-mode ``BENCH_spatial.json`` a CI run just produced
against the committed baseline.  Times are normalised by each file's
``calibration_s`` (a fixed pure-python workload timed on the same
machine), so the check measures *code* regressions, not runner-size
differences.  A backend fails when its normalised total exceeds the
baseline by more than ``--tolerance`` (default 30%, per ROADMAP).

Result-set invariants (pair counts, chosen auto backend) are compared
exactly: the fleets are seeded, so any drift there is a correctness
regression, not noise.

With ``--pipeline``, the sink-dispatch, workers, decode and durability
sections of ``BENCH_pipeline.json`` are guarded too — self-relative (no
committed baseline needed): the async dispatcher must keep ingest within
``--dispatch-tolerance`` of the no-subscriber wall clock while the sync
path shows the slow-sink degradation, and the delivered/dropped
accounting must reconcile exactly; the sharded runtime must keep exact
product parity at every worker count and meet a hardware-aware speedup
bar (>= 1.8x at 4 workers where threads can overlap, an overhead floor
under the GIL or on small runners); the vectorised batch decoder must
hold its recorded speedup floor over the scalar loop whenever numpy is
available; and the durable-state overheads (SQLite track store attached,
per-barrier checkpoints) must stay under their recorded ceilings with
products identical to the bare pipeline.  The fan-out section guards the
subscription index: indexed dispatch must beat the full-scan hub by the
recorded floor at the largest subscriber count, deliver the identical
event set, and the shared pool's thread count must not move with the
subscriber count.
"""

import argparse
import json
import sys

DEFAULT_BASELINE = "benchmarks/baselines/BENCH_spatial_smoke.json"
BACKENDS = ("grid", "rtree")


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def check(current: dict, baseline: dict, tolerance: float) -> list[str]:
    failures: list[str] = []
    cur_cal = current.get("calibration_s") or 0.0
    base_cal = baseline.get("calibration_s") or 0.0
    if cur_cal <= 0 or base_cal <= 0:
        return ["missing calibration_s in current or baseline JSON"]
    for name, base_wl in baseline.get("workloads", {}).items():
        cur_wl = current.get("workloads", {}).get(name)
        if cur_wl is None:
            failures.append(f"{name}: workload missing from current run")
            continue
        if cur_wl.get("pairs") != base_wl.get("pairs"):
            failures.append(
                f"{name}: pair count changed "
                f"{base_wl.get('pairs')} -> {cur_wl.get('pairs')} "
                "(correctness regression, not noise)"
            )
        if cur_wl.get("auto_backend") != base_wl.get("auto_backend"):
            failures.append(
                f"{name}: auto backend changed "
                f"{base_wl.get('auto_backend')} -> {cur_wl.get('auto_backend')}"
            )
        for backend in BACKENDS:
            base_t = base_wl.get(backend, {}).get("total_s")
            cur_t = cur_wl.get(backend, {}).get("total_s")
            if not base_t or cur_t is None:
                continue
            base_norm = base_t / base_cal
            cur_norm = cur_t / cur_cal
            ratio = cur_norm / base_norm if base_norm > 0 else float("inf")
            marker = "FAIL" if ratio > 1.0 + tolerance else "ok"
            print(
                f"  {name:>16} {backend:>6}: normalised "
                f"{base_norm:8.2f} -> {cur_norm:8.2f}  "
                f"({ratio - 1.0:+.1%})  {marker}"
            )
            if ratio > 1.0 + tolerance:
                failures.append(
                    f"{name}/{backend}: {ratio - 1.0:+.1%} vs baseline "
                    f"(tolerance {tolerance:.0%})"
                )
    return failures


def check_pipeline_dispatch(
    pipeline: dict, dispatch_tolerance: float
) -> list[str]:
    """Self-relative guard on the sink-dispatch measurement.

    The async dispatcher's whole point is that a slow subscriber does
    not stall ingestion: the async wall clock must stay within
    ``dispatch_tolerance`` of the no-subscriber baseline *and* beat the
    sync path, and every submitted increment must be accounted for as
    delivered or dropped.
    """
    dispatch = pipeline.get("dispatch")
    if dispatch is None:
        return ["dispatch section missing from pipeline JSON"]
    failures: list[str] = []
    baseline_s = dispatch.get("baseline", {}).get("total_s") or 0.0
    sync_s = dispatch.get("sync", {}).get("total_s") or 0.0
    async_section = dispatch.get("async", {})
    async_s = async_section.get("total_s") or 0.0
    if baseline_s <= 0 or sync_s <= 0 or async_s <= 0:
        return ["dispatch section carries no usable wall times"]
    async_ratio = async_s / baseline_s
    marker = "FAIL" if async_ratio > 1.0 + dispatch_tolerance else "ok"
    print(
        f"  dispatch: async {async_s:.3f}s vs baseline {baseline_s:.3f}s "
        f"({async_ratio - 1.0:+.1%}, tolerance "
        f"{dispatch_tolerance:.0%})  {marker}; sync {sync_s:.3f}s"
    )
    if async_ratio > 1.0 + dispatch_tolerance:
        failures.append(
            f"dispatch/async: {async_ratio - 1.0:+.1%} over the "
            f"no-subscriber baseline (tolerance {dispatch_tolerance:.0%})"
        )
    if async_s >= sync_s:
        failures.append(
            f"dispatch/async: wall {async_s:.3f}s did not beat the sync "
            f"path's {sync_s:.3f}s — the dispatcher is not shielding "
            "ingestion"
        )
    submitted = async_section.get("n_submitted")
    delivered = async_section.get("n_delivered")
    dropped = async_section.get("n_dropped")
    if submitted != (delivered or 0) + (dropped or 0):
        failures.append(
            f"dispatch/async: accounting does not reconcile "
            f"({submitted} submitted != {delivered} delivered "
            f"+ {dropped} dropped)"
        )
    return failures


def check_pipeline_workers(pipeline: dict) -> list[str]:
    """Self-relative guard on the sharded-runtime workers axis.

    Parity flags are hard invariants: every worker count must have
    produced the workers=1 event set and cube cells.  The speedup guard
    is hardware-aware — the benchmark records the runner's core count
    and GIL state: where threads can actually overlap (>= 4 cores,
    free-threaded) workers=4 must reach ``expected_min_speedup`` over
    workers=1 (calibration-free: both walls come from the same run on
    the same machine); everywhere else sharding must merely stay above
    the overhead floor (it may not *slow* the pipeline down much).
    """
    workers = pipeline.get("workers")
    if workers is None:
        return ["workers section missing from pipeline JSON"]
    failures: list[str] = []
    runs = workers.get("runs", {})
    for count, run in sorted(runs.items(), key=lambda kv: int(kv[0])):
        if not run.get("events_equal_workers1") or not run.get(
            "cube_equal_workers1"
        ):
            failures.append(
                f"workers/{count}: products diverged from workers=1 "
                "(parity is a correctness invariant, not noise)"
            )
    run_4 = runs.get("4", {})
    speedup = run_4.get("speedup_vs_workers1")
    if speedup is None:
        failures.append("workers/4: speedup_vs_workers1 missing")
        return failures
    if workers.get("parallel_capable"):
        required = workers.get("expected_min_speedup") or 1.8
        label = f"parallel hardware: require >= {required}x"
    else:
        required = workers.get("overhead_floor") or 0.65
        label = (
            f"{workers.get('cpu_count')} cores, "
            f"GIL {'on' if workers.get('gil_enabled') else 'off'}: "
            f"require overhead floor >= {required}x"
        )
    marker = "FAIL" if speedup < required else "ok"
    print(
        f"  workers: 4-shard speedup {speedup:.2f}x vs workers=1 "
        f"({label})  {marker}"
    )
    if speedup < required:
        failures.append(
            f"workers/4: speedup {speedup:.2f}x below the required "
            f"{required}x ({label})"
        )
    return failures


def check_pipeline_decode(pipeline: dict) -> list[str]:
    """Self-relative guard on the decode axis.

    Scalar and batch decode are timed in the same run on the same
    machine over the same assembled payloads, so their ratio needs no
    calibration: when the vectorised path is available it must hold the
    speedup floor the benchmark recorded, or the hot message types have
    fallen off the vector path (a perf regression the parity tests
    cannot see).  Without numpy the floor does not apply — the fallback
    is the scalar loop itself.
    """
    decode = pipeline.get("decode")
    if decode is None:
        return ["decode section missing from pipeline JSON"]
    if not decode.get("vectorised"):
        print(
            "  decode: vectorised path unavailable (no numpy); "
            "speedup floor not applied"
        )
        return []
    speedup = decode.get("speedup") or 0.0
    required = decode.get("min_speedup") or 3.5
    marker = "FAIL" if speedup < required else "ok"
    print(
        f"  decode: batch {speedup:.2f}x vs scalar over "
        f"{decode.get('n_staged')} payloads (require >= {required}x)  "
        f"{marker}"
    )
    if speedup < required:
        return [
            f"decode/batch: speedup {speedup:.2f}x below the required "
            f"{required}x over the scalar loop"
        ]
    return []


def check_pipeline_fanout(pipeline: dict) -> list[str]:
    """Self-relative guard on the subscription fan-out measurement.

    Both hubs ran the same increments with the same subscriber
    population on the same machine, so the speedup needs no
    calibration: at the largest subscriber count the indexed hub must
    beat the full scan by the floor the benchmark recorded (10x in full
    runs).  Delivery equality is a hard invariant — the index may only
    over-select, never drop — and the pool thread count must be the
    same at every subscriber count (threads are a constant of the hub,
    not of the audience).
    """
    fanout = pipeline.get("fanout")
    if fanout is None:
        return ["fanout section missing from pipeline JSON"]
    runs = fanout.get("runs") or []
    if not runs:
        return ["fanout section carries no runs"]
    failures: list[str] = []
    floor = fanout.get("min_speedup") or 0.0
    largest = max(runs, key=lambda run: run.get("subscribers") or 0)
    speedup = largest.get("speedup") or 0.0
    marker = "FAIL" if speedup < floor else "ok"
    print(
        f"  fanout: indexed {speedup:.1f}x the scan hub at "
        f"{largest.get('subscribers'):,} subscribers "
        f"(floor {floor}x)  {marker}"
    )
    if speedup < floor:
        failures.append(
            f"fanout: indexed dispatch only {speedup:.1f}x the scan "
            f"baseline at {largest.get('subscribers')} subscribers "
            f"(floor {floor}x)"
        )
    for run in runs:
        if not run.get("events_equal"):
            failures.append(
                f"fanout: indexed delivery diverged from the scan at "
                f"{run.get('subscribers')} subscribers (correctness "
                "invariant, not noise)"
            )
    threads = {run.get("threads_added") for run in runs}
    if len(threads) > 1:
        failures.append(
            f"fanout: pool thread count varies with subscriber count "
            f"({sorted(threads)}) — dispatch threads must be a constant "
            "of the hub"
        )
    return failures


def check_pipeline_durability(pipeline: dict) -> list[str]:
    """Self-relative guard on the durable-state axis.

    Both overheads come from the same run on the same machine, so their
    ratios need no calibration: archiving into the SQLite track store
    (async, blocking overflow) and writing a full-state checkpoint at
    every barrier must each stay under the ceiling the benchmark
    recorded — a creeping serialisation hot spot shows up here long
    before it breaks a latency target.  Product-equality flags are hard
    invariants: durability must never change what the pipeline emits.
    """
    durability = pipeline.get("durability")
    if durability is None:
        return ["durability section missing from pipeline JSON"]
    failures: list[str] = []
    for axis in ("store", "checkpoint"):
        section = durability.get(axis, {})
        overhead = section.get("overhead_vs_baseline")
        ceiling = section.get("max_overhead")
        if overhead is None or not ceiling:
            failures.append(f"durability/{axis}: overhead not recorded")
            continue
        marker = "FAIL" if overhead > ceiling else "ok"
        print(
            f"  durability: {axis} overhead {overhead:.2f}x vs bare "
            f"pipeline (ceiling {ceiling}x)  {marker}"
        )
        if overhead > ceiling:
            failures.append(
                f"durability/{axis}: {overhead:.2f}x over the bare "
                f"pipeline exceeds the {ceiling}x ceiling"
            )
        if not section.get("events_equal_baseline"):
            failures.append(
                f"durability/{axis}: products diverged from the bare "
                "pipeline (correctness invariant, not noise)"
            )
    restore_s = durability.get("checkpoint", {}).get("restore_s")
    if restore_s is None:
        failures.append("durability/checkpoint: restore_s not recorded")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--current", default="BENCH_spatial.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument(
        "--pipeline", default=None, metavar="BENCH_pipeline.json",
        help="also guard the sink-dispatch section of this pipeline "
        "benchmark JSON (self-relative, no baseline file)",
    )
    parser.add_argument(
        "--dispatch-tolerance", type=float, default=0.50,
        help="allowed async-vs-no-subscriber wall overhead (CI runners "
        "are noisy; the acceptance target on quiet hardware is 0.10)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    try:
        baseline = load(args.baseline)
    except FileNotFoundError:
        # No spatial baseline is fine (nothing to compare), but it must
        # not short-circuit the self-relative pipeline guard below.
        print(f"no baseline at {args.baseline}; nothing to compare")
        baseline = None
    if baseline is not None:
        current = load(args.current)
        if bool(current.get("smoke")) != bool(baseline.get("smoke")):
            print(
                "warning: smoke flags differ between current and baseline; "
                "fleet sizes are not comparable"
            )
        print(
            f"trend check: {args.current} vs {args.baseline} "
            f"(tolerance {args.tolerance:.0%})"
        )
        failures += check(current, baseline, args.tolerance)
    if args.pipeline is not None:
        try:
            pipeline = load(args.pipeline)
        except FileNotFoundError:
            pipeline = None
            failures.append(f"pipeline JSON missing at {args.pipeline}")
        if pipeline is not None:
            failures += check_pipeline_dispatch(
                pipeline, args.dispatch_tolerance
            )
            failures += check_pipeline_workers(pipeline)
            failures += check_pipeline_decode(pipeline)
            failures += check_pipeline_durability(pipeline)
            failures += check_pipeline_fanout(pipeline)
    if failures:
        print("\nREGRESSIONS:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
