"""E8 — trajectory-oriented storage vs generic stores (§2.3).

The paper: "current RDF stores with spatial and/or temporal support are
not tailored to offer efficient trajectory-oriented data management".
The same spatio-temporal range query runs three ways:

- dedicated moving-object store (grid index)  — our §2.3 answer;
- full scan over stored segments              — the no-index floor;
- triple store with per-fix triples + filters — the generic-store path.

Shape: the dedicated index beats the triple-pattern evaluation by orders
of magnitude, and all three return identical answers.
"""

import pytest

from repro.geo import BoundingBox
from repro.storage import (
    RangeQuery,
    TrajectoryStore,
    TripleStore,
    Variable,
)

V = Variable
QUERY = RangeQuery(BoundingBox(47.5, 48.8, -6.0, -4.0), 1800.0, 7200.0)


@pytest.fixture(scope="module")
def stores(regional_result):
    trajectory_store = TrajectoryStore(cell_deg=0.1, time_bucket_s=1800.0)
    triple_store = TripleStore()
    for trajectory in regional_result.trajectories:
        trajectory_store.add(trajectory)
        for i, point in enumerate(trajectory):
            node = f"fix:{trajectory.mmsi}:{i}:{point.t}"
            triple_store.add(node, "mmsi", trajectory.mmsi)
            triple_store.add(node, "lat", point.lat)
            triple_store.add(node, "lon", point.lon)
            triple_store.add(node, "t", point.t)
    return trajectory_store, triple_store


def query_grid(store):
    return {(p.mmsi, p.t) for p in store.range_points(QUERY)}


def query_scan(store):
    return {(p.mmsi, p.t) for p in store.range_points_scan(QUERY)}


def query_triples(store):
    bindings = store.query(
        [
            (V("f"), "lat", V("lat")),
            (V("f"), "lon", V("lon")),
            (V("f"), "t", V("t")),
            (V("f"), "mmsi", V("mmsi")),
        ],
        filters=[
            lambda b: QUERY.box.lat_min <= b["lat"] <= QUERY.box.lat_max,
            lambda b: QUERY.box.lon_min <= b["lon"] <= QUERY.box.lon_max,
            lambda b: QUERY.t0 <= b["t"] <= QUERY.t1,
        ],
    )
    return {(b["mmsi"], b["t"]) for b in bindings}


def test_e8_grid_index(stores, benchmark, report):
    trajectory_store, __ = stores
    result = benchmark(query_grid, trajectory_store)
    report(
        "",
        "E8 — spatio-temporal range query over "
        f"{len(trajectory_store)} fixes: {len(result)} hits",
        "  (compare the three bench timings: grid vs scan vs triples)",
    )
    assert result


def test_e8_full_scan(stores, benchmark):
    trajectory_store, __ = stores
    result = benchmark(query_scan, trajectory_store)
    assert result == query_grid(trajectory_store)


def test_e8_triple_store(stores, benchmark):
    trajectory_store, triple_store = stores
    result = benchmark.pedantic(
        query_triples, args=(triple_store,), iterations=1, rounds=2
    )
    assert result == query_grid(trajectory_store)


def test_e8_knn(stores, benchmark):
    trajectory_store, __ = stores
    result = benchmark(
        trajectory_store.knn, 48.2, -4.8, 0.0, 10_800.0, 10
    )
    assert len(result) == 10
    distances = [d for d, __ in result]
    assert distances == sorted(distances)
