"""E3 — event detection quality and latency (§3.1).

Scores the pipeline's detectors against the scenario's injected ground
truth: rendezvous, dark episodes (gaps), spoofing.  Shape to reproduce:
the §3.1 events are recoverable from the observable feed with useful
precision/recall, and detection is fast enough for "real-time".
"""

import pytest

from repro.events import EventKind, detect_rendezvous, match_events
from repro.simulation.world import REGIONAL_PORTS


@pytest.fixture(scope="module")
def scores(regional_run, regional_result):
    result = regional_result
    truth = regional_run.truth_events
    gap_events = result.events_of(EventKind.GAP)
    rendezvous_events = result.events_of(EventKind.RENDEZVOUS)
    spoof_events = (
        result.events_of(EventKind.TELEPORT)
        + result.events_of(EventKind.IDENTITY_CLASH)
    )
    return {
        "rendezvous": match_events(
            rendezvous_events, truth, "rendezvous",
            time_slack_s=1200.0, distance_slack_m=20_000.0,
        ),
        "dark(gap)": match_events(
            gap_events, truth, "dark",
            time_slack_s=900.0, distance_slack_m=60_000.0,
        ),
        "spoof": match_events(
            spoof_events, truth, "spoof",
            time_slack_s=1800.0, distance_slack_m=80_000.0,
        ),
    }


def test_e3_detection_scores(scores, benchmark, report):
    # The timed portion: re-scoring detections against truth (cheap but
    # representative of the E3 harness loop).
    benchmark.pedantic(lambda: dict(scores), iterations=1, rounds=1)
    report(
        "",
        "E3 — event detection vs injected ground truth",
        f"  {'event':<12}{'truth':>6}{'det':>6}{'prec':>7}{'recall':>8}{'F1':>6}",
    )
    for name, score in scores.items():
        report(
            f"  {name:<12}{score.n_truth:>6}{score.n_detected:>6}"
            f"{score.precision:>7.2f}{score.recall:>8.2f}{score.f1:>6.2f}"
        )
    assert scores["rendezvous"].recall >= 0.5
    assert scores["spoof"].recall >= 0.9
    assert scores["dark(gap)"].recall >= 0.5
    # Gap detection over-triggers on coverage holes by design (the §1
    # veracity point: silence is ambiguous); precision is reported, not
    # asserted.


def test_e3_rendezvous_detector_speed(regional_result, benchmark):
    trajectories = regional_result.trajectories
    events = benchmark(detect_rendezvous, trajectories, REGIONAL_PORTS)
    assert isinstance(events, list)
