"""A1 (ablation) — does compression compromise detection? (§2.1)

The paper's exact challenge: "address high levels of data compression
without compromising the accuracy of the prediction / detection
components."  This ablation sweeps the pipeline's synopsis threshold and
measures rendezvous recall downstream of compression.  Shape: recall
holds through aggressive (>90%) compression and only collapses when the
synopsis tolerance approaches the rendezvous distance gate itself.
"""

import pytest

from repro.events import detect_rendezvous, match_events
from repro.simulation.world import REGIONAL_PORTS
from repro.trajectory import compression_ratio, dead_reckoning_compress

#: Synopsis thresholds from "off" to beyond the rendezvous gate (500 m).
THRESHOLDS_M = [0.0, 60.0, 120.0, 240.0, 1000.0]


@pytest.fixture(scope="module")
def ablation(regional_run, regional_result):
    trajectories = regional_result.trajectories
    truth = regional_run.truth_events
    out = []
    for threshold in THRESHOLDS_M:
        if threshold == 0.0:
            synopses = trajectories
            ratio = 0.0
        else:
            synopses = [
                dead_reckoning_compress(tr, threshold) for tr in trajectories
            ]
            pairs = list(zip(trajectories, synopses))
            ratio = sum(
                compression_ratio(a, b) for a, b in pairs
            ) / len(pairs)
        events = detect_rendezvous(synopses, REGIONAL_PORTS)
        score = match_events(
            events, truth, "rendezvous",
            time_slack_s=1200.0, distance_slack_m=20_000.0,
        )
        out.append((threshold, ratio, score))
    return out


def test_a1_synopsis_vs_rendezvous_recall(ablation, benchmark, report):
    benchmark.pedantic(lambda: list(ablation), iterations=1, rounds=1)
    report(
        "",
        "A1 — synopsis threshold vs rendezvous recall",
        f"  {'threshold (m)':>14}{'compression':>13}{'recall':>8}"
        f"{'precision':>11}",
    )
    for threshold, ratio, score in ablation:
        report(
            f"  {threshold:>14.0f}{ratio:>13.1%}{score.recall:>8.2f}"
            f"{score.precision:>11.2f}"
        )
    by_threshold = {t: (r, s) for t, r, s in ablation}
    baseline_recall = by_threshold[0.0][1].recall
    # The paper's target: ≥90% compression without losing detections.
    assert by_threshold[120.0][0] >= 0.90
    assert by_threshold[120.0][1].recall >= baseline_recall
    # Past the rendezvous gate, compression may finally hurt — but even
    # a 1 km tolerance must not produce junk detections from nothing.
    assert by_threshold[1000.0][1].precision >= 0.3 or (
        by_threshold[1000.0][1].n_detected == 0
    )
