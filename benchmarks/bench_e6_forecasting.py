"""E6 — trajectory prediction error vs horizon (§3.1).

Compares constant-velocity dead reckoning, Kalman prediction and
route-graph prediction over 5-60 minute horizons on lane traffic with a
mid-route turn.  Shape to reproduce: CV is unbeatable at short horizons;
the route-based predictor overtakes it as the horizon crosses the next
manoeuvre — the crossover that motivates learning routes from history.
"""

import random

import pytest

from repro.forecasting import (
    KalmanPredictor,
    RouteGraph,
    RouteGraphConfig,
    RoutePredictor,
    evaluate_predictor,
    predict_constant_velocity,
)
from repro.simulation.behaviours import plan_transit
from repro.trajectory.points import TrackPoint, Trajectory

HORIZONS_S = [300.0, 900.0, 1800.0, 3600.0]

#: A dog-leg lane: north along -6.5°E, then a 90° turn east at 48.35°N —
#: the shape every coastal lane has (rounding a headland or TSS corner).
#: Memoryless predictors sail straight past the corner; the route graph
#: has seen the turn.
LEG1_START = (47.0, -6.5)
TURN = (48.35, -6.5)
LEG2_END = (48.35, -4.0)


def _lane_track(seed, mmsi):
    rng = random.Random(seed)
    offset = rng.uniform(-0.03, 0.03)
    from repro.simulation.movement import WaypointPlan

    plan = WaypointPlan.from_waypoints(
        0.0,
        [
            (LEG1_START[0], LEG1_START[1] + offset),
            (TURN[0] + offset, TURN[1] + offset),
            (LEG2_END[0] + offset, LEG2_END[1]),
        ],
        speed_knots=13.0 + rng.uniform(-0.5, 0.5),
    )
    points = [
        TrackPoint(s.t, s.lat, s.lon, s.sog_knots, s.cog_deg)
        for s in plan.sample(60.0)
    ]
    return Trajectory(mmsi, points)


@pytest.fixture(scope="module")
def route_world():
    history = [_lane_track(seed, 100 + seed) for seed in range(12)]
    test_tracks = [_lane_track(100 + seed, 900 + seed) for seed in range(4)]
    graph = RouteGraph(RouteGraphConfig(cell_deg=0.03))
    graph.train(history)
    return graph, test_tracks


def test_e6_error_vs_horizon(route_world, benchmark, report):
    graph, test_tracks = route_world
    route_predictor = RoutePredictor(graph)
    kalman = KalmanPredictor()
    predictors = {
        "constant-velocity": (
            lambda prefix, h: predict_constant_velocity(prefix.points[-1], h)
        ),
        "kalman": kalman.predict_point,
        "route-graph": route_predictor.predict_point,
    }

    def run_all():
        # Cuts bracket the lane's turn (~50% of the voyage), so longer
        # horizons cross the corner — where route knowledge pays off.
        return {
            name: evaluate_predictor(
                predictor, test_tracks, HORIZONS_S,
                cut_fractions=[0.40, 0.45, 0.50],
            )
            for name, predictor in predictors.items()
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)

    report(
        "",
        "E6 — forecast error (median, metres) vs horizon",
        "  " + f"{'horizon':<10}" + "".join(
            f"{name:>20}" for name in predictors
        ),
    )
    for i, horizon in enumerate(HORIZONS_S):
        row = f"  {horizon / 60:<10.0f}"
        for name in predictors:
            row += f"{results[name][i].median_error_m:>20.0f}"
        report(row)

    cv = results["constant-velocity"]
    route = results["route-graph"]
    # Errors grow with horizon for the memoryless predictors.
    assert cv[-1].median_error_m > cv[0].median_error_m
    # The crossover shape: short horizons — CV is near-exact and at least
    # competitive; past the turn (1 h), the route predictor wins clearly.
    assert cv[0].median_error_m < 2_000.0
    assert route[-1].median_error_m < cv[-1].median_error_m
    assert cv[-1].median_error_m > 5_000.0  # straight-line sails off the lane


def test_e6_route_predict_speed(route_world, benchmark):
    graph, test_tracks = route_world
    predictor = RoutePredictor(graph)
    prefix = test_tracks[0].slice_time(0.0, test_tracks[0].duration_s * 0.4)
    lat, lon = benchmark(predictor.predict, prefix, 1800.0)
    assert -90.0 <= lat <= 90.0
