"""Regenerate Figure 1: worldwide AIS positions acquired by satellites.

Simulates a day of global port-to-port traffic observed by a satellite
constellation (with realistic revisit gaps and message collisions), then
renders the received positions as an ASCII density map — the same visual
story as the paper's Figure 1: dense Europe/Asia corridors, sparse open
ocean, visible coverage banding from the orbit model.

Run:  python examples/global_picture.py            (quick, ~150 vessels)
      python examples/global_picture.py --full     (denser picture)

The same feed can be exported for the live pipeline: ``repro simulate
--world --tagged --output feed.nmea`` writes it with TAG-block
timestamps, and ``repro pipeline --live --nmea-file feed.nmea`` streams
it through the monitoring service.
"""

import sys

from repro.ais.decoder import AisDecoder
from repro.ais.types import ClassBPositionReport, PositionReport
from repro.geo import BoundingBox
from repro.simulation import global_scenario
from repro.simulation.world import WORLD_PORTS
from repro.visual import DensityMap, render_ascii_map


def main(full: bool = False) -> None:
    n_vessels = 400 if full else 150
    duration_s = (24 if full else 8) * 3600.0
    print(f"simulating {n_vessels} vessels over {duration_s / 3600:.0f} h ...")
    run = global_scenario(n_vessels=n_vessels, duration_s=duration_s, seed=7).run()

    decoder = AisDecoder()
    lats, lons = [], []
    for obs in run.observations:
        message = decoder.feed(obs.sentence)
        if isinstance(message, (PositionReport, ClassBPositionReport)):
            if message.has_position:
                lats.append(message.lat)
                lons.append(message.lon)

    coverage = len(lats) / max(1, len(run.transmissions))
    print(
        f"{len(run.transmissions)} transmissions, {len(lats)} positions "
        f"received by satellite ({coverage:.0%} coverage — open-ocean AIS "
        f"is sparse, as §1 of the paper stresses)"
    )

    density = DensityMap(
        BoundingBox(-65.0, 75.0, -180.0, 180.0), n_lat_bins=36, n_lon_bins=110
    )
    density.add_positions(lats, lons)
    markers = {(p.lat, p.lon): "o" for p in WORLD_PORTS}
    print()
    print(render_ascii_map(density, markers=markers))
    print()
    print("densest cells (lat, lon, positions):")
    for lat, lon, count in density.top_cells(5):
        print(f"  ({lat:6.1f}, {lon:7.1f}): {count}")


if __name__ == "__main__":
    main(full="--full" in sys.argv)
