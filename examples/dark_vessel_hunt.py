"""Dark-vessel hunt: fusion + open-world reasoning (§2.4 and §4).

The paper's §4 makes two points this example demonstrates end to end:

1. **Fusion beats any single source.**  27% of ships go dark part of the
   time [43]; coastal radar still sees them.  We associate anonymous
   radar contacts to AIS tracks; the contacts that associate to *nothing*
   are candidate dark vessels.

2. **The AIS database violates the closed-world assumption.**  Querying
   rendezvous from AIS alone "will return only those events reflected by
   the AIS data"; open-world evaluation returns probability *bounds* that
   widen with the number of vessel pairs that could have met unobserved.

Run:  python examples/dark_vessel_hunt.py
"""

from repro.core import MaritimePipeline
from repro.events import EventKind
from repro.fusion.hardsoft import SoftReport, fuse_hard_soft
from repro.simulation import regional_scenario
from repro.uncertainty import OpenWorldRelation, ProbabilisticRelation
from repro.uncertainty.openworld import unobserved_pair_candidates


def main() -> None:
    scenario = regional_scenario(
        n_vessels=35, duration_s=3 * 3600.0, seed=23, dark_ship_fraction=0.3
    )
    run = scenario.run()
    result = MaritimePipeline().process(run)

    # -- 1. Fuse radar with AIS ------------------------------------------------
    # The fuse stage already associated every radar contact causally
    # during the run; ``result.fused`` is the multi-sensor picture, and
    # sustained anonymous tracks surfaced as UNCORRELATED_TRACK events.
    tracker = result.fused
    dark_candidates = result.events_of(EventKind.UNCORRELATED_TRACK)
    print(
        f"radar: {len(run.radar_contacts)} contacts over the window "
        f"→ {len(tracker.anonymous_tracks)} anonymous radar tracks, "
        f"{len(dark_candidates)} reported as dark-vessel candidates"
    )
    dark_truth = {
        spec.mmsi for spec in run.specs.values() if spec.goes_dark
    }
    print(f"ground truth: {len(dark_truth)} vessels go dark in this window")

    # -- 2. Open-world rendezvous query ------------------------------------------
    observed = ProbabilisticRelation()
    for event in result.events:
        if event.kind.value == "rendezvous":
            observed.add(
                {"mmsis": event.mmsis, "t": event.t_start}, event.confidence
            )
    n_dark = len(dark_truth)
    hidden_pairs = unobserved_pair_candidates(n_dark, len(run.specs))
    open_world = OpenWorldRelation(observed, completion_lambda=0.05)
    interval = open_world.probability_exists(
        lambda fact: True, n_unobserved=hidden_pairs
    )
    print(
        f"\nrendezvous query: closed-world P = {interval.lower:.2f}; "
        f"open-world P ∈ [{interval.lower:.2f}, {interval.upper:.2f}] "
        f"({hidden_pairs} dark vessel-pairs could have met unobserved)"
    )

    # -- 3. Hard-soft fusion: a sighting report --------------------------------------
    # A fishing skipper reports "a vessel holding position" near the first
    # truth rendezvous — can we attribute it?
    rendezvous_truth = [
        e for e in run.truth_events if e.kind == "rendezvous"
    ]
    if rendezvous_truth:
        truth = rendezvous_truth[0]
        report = SoftReport(
            t=truth.t_start,
            lat=truth.lat + 0.01,
            lon=truth.lon - 0.01,
            sigma_m=3000.0,
            sigma_t_s=1200.0,
            confidence=0.7,
            text="vessel holding position mid-channel, no lights",
        )
        matches = fuse_hard_soft(report, result.trajectories)
        print(f"\nsoft report: {report.text!r}")
        for match in matches[:3]:
            marker = (
                " ← rendezvous participant"
                if match.mmsi in truth.mmsis else ""
            )
            print(
                f"  candidate MMSI {match.mmsi}: consistency "
                f"{match.consistency:.2f}, {match.distance_m / 1000:.1f} km "
                f"off{marker}"
            )


if __name__ == "__main__":
    main()
