"""Quickstart: simulate a surveillance theatre, run the full pipeline.

This is the smallest end-to-end use of the library: build the regional
scenario (a Celtic Sea / Biscay theatre with coastal receivers, fishing
traffic, dark ships and a spoofer), run the Figure 2 pipeline over its
AIS feed, and triage the detected events for a watch officer.

Run:  python examples/quickstart.py
"""

from repro.core import (
    DecisionSupport,
    MaritimePipeline,
    OperatorProfile,
    PipelineConfig,
)
from repro.simulation import regional_scenario


def main() -> None:
    # 1. A deterministic synthetic world: 30 vessels, 3 hours.
    scenario = regional_scenario(n_vessels=30, duration_s=3 * 3600.0, seed=11)
    run = scenario.run()
    print(
        f"scenario '{scenario.name}': {len(run.specs)} vessels, "
        f"{len(run.observations)} received AIS sentences, "
        f"{len(run.radar_contacts)} radar contacts"
    )

    # 2. The integrated pipeline of the paper's Figure 2.  Knobs live in
    #    one validated config — an impossible combination (an eviction
    #    horizon shorter than the detectors that read through it) fails
    #    here, not hours into a run.  ``workers=N`` shards the
    #    per-vessel phase (decode, reconstruction, synopses, forecasts)
    #    across N vessel-partitioned workers; products are identical
    #    for every count, so it is purely a throughput knob.
    config = PipelineConfig.from_overrides(gap_min_s=900.0, workers=2)
    pipeline = MaritimePipeline(config)
    result = pipeline.process(run)
    print()
    print(result.summary())
    print(
        f"synopsis compression: "
        f"{pipeline.mean_compression_ratio(result):.1%} "
        f"(paper cites 95% [29])"
    )

    # 3. Decision support: filter and explain for one operator profile.
    officer = DecisionSupport(OperatorProfile(name="watch-officer"))
    alerts = officer.triage(result.events + result.complex_events)
    print(f"\n{len(alerts)} alerts after triage:")
    for alert in alerts[:10]:
        print("  " + alert.render())

    # 4. The situation overview (§3.2).
    if result.overview is not None:
        print("\n" + result.overview.headline())

    # Next: the same infrastructure as a *service* — sources, ticks and
    # subscriptions — in examples/live_stream_monitor.py.


if __name__ == "__main__":
    main()
