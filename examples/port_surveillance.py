"""Port surveillance: zones, semantic queries and forecasting (§3).

A harbour-master's view of the regional scenario: watch a protected zone
off Brest, detect entries and loitering, query the semantic store for
suspicious activity by vessel class, and forecast where current traffic
will be in 30 minutes (with honest uncertainty, §4).

Run:  python examples/port_surveillance.py
"""

from repro.core import MaritimePipeline, PipelineConfig
from repro.events.detectors import ZoneWatch
from repro.forecasting import estimate_eta
from repro.geo import CircleRegion
from repro.semantics.ontology import VOCAB
from repro.simulation import regional_scenario
from repro.simulation.world import REGIONAL_PORTS
from repro.storage import Variable


def main() -> None:
    run = regional_scenario(n_vessels=30, duration_s=3 * 3600.0, seed=5).run()

    # -- zone watching -----------------------------------------------------
    # The watched zone is part of the pipeline's configuration: the
    # detect stage emits zone events alongside every other detector.
    protected = ZoneWatch(
        name="IROISE-PROTECTED",
        region=CircleRegion(lat=48.3, lon=-5.1, radius_m=25_000.0),
        restricted=True,
    )
    config = PipelineConfig.from_overrides(loiter_min_s=1800.0)
    result = MaritimePipeline(config, zones=[protected]).process(run)

    entries = [e for e in result.events if e.kind.value == "zone_entry"]
    print(f"protected-zone entries: {len(entries)}")
    for event in entries[:5]:
        spec = run.specs.get(event.mmsis[0])
        name = spec.name if spec else "?"
        print(f"  {name} (MMSI {event.mmsis[0]}) at t={event.t_start:.0f}")

    # -- semantic queries over the annotated store -----------------------------
    V = Variable
    suspicious = result.triples.query(
        [
            (V("event"), VOCAB.EVENT_TYPE, "loitering"),
            (V("event"), VOCAB.ACTOR, V("vessel")),
            (V("vessel"), VOCAB.TYPE, V("class")),
        ]
    )
    print(f"\nloitering activities in the semantic store: {len(suspicious)}")
    for binding in suspicious[:5]:
        print(
            f"  {binding['vessel']} ({binding['class']}) "
            f"in {binding['event']}"
        )
    port_call_count = len(
        result.triples.query([(V("e"), VOCAB.TYPE, "PortCall")])
    )
    print(f"port calls recorded: {port_call_count}")

    # -- forecasting with uncertainty ------------------------------------------
    print("\n30-minute forecasts (position ± 1σ):")
    shown = 0
    for mmsi, predictions in result.forecasts.items():
        for prediction in predictions:
            if prediction.horizon_s == 1800.0 and shown < 5:
                print(
                    f"  MMSI {mmsi}: ({prediction.lat:.3f}, "
                    f"{prediction.lon:.3f}) ± {prediction.sigma_m:.0f} m"
                )
                shown += 1

    # -- ETA estimation -----------------------------------------------------------
    print("\ndestination guesses from course/speed:")
    shown = 0
    for trajectory in result.trajectories:
        estimate = estimate_eta(trajectory, REGIONAL_PORTS)
        if estimate is not None and shown < 5:
            print(
                f"  MMSI {trajectory.mmsi} → {estimate.port.name}, "
                f"ETA {estimate.eta_s / 3600:.1f} h "
                f"(course agreement {estimate.course_agreement:.0%})"
            )
            shown += 1


if __name__ == "__main__":
    main()
