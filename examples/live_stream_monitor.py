"""Live stream monitoring: the monitoring service end to end (§2-§3).

Unlike the batch replay, this example consumes the feed *as a stream*
through the public service API — and the way a real watch floor gets
it: **several concurrent feeds**.  The simulated theatre's terrestrial
receptions are written to an NMEA file with TAG-block timestamps
(replayed by ``NmeaFileSource``, exactly what a receiver's logger
produces), its satellite downlink stays an in-process batch
(``IterableSource``, what a provider API hands you — swap in
``NmeaTcpSource(host, port)`` for a live socket).  A ``MaritimeMonitor``
merges both on reception time, and *subscriptions* fan the products
out: an operator console (filtered events, synchronous — it must never
lag), a triaged alert log, and a JSONL archive on an **async
dispatcher** — archival I/O may stall, the pipeline must not.

Run:  python examples/live_stream_monitor.py
"""

import io
import os
import tempfile

from repro import MaritimeMonitor
from repro.events import EventKind, SequencePattern
from repro.simulation import regional_scenario
from repro.sinks import AlertLogSink, JsonlSink
from repro.sources import IterableSource, NmeaFileSource, write_nmea_file


def main() -> None:
    # One theatre, two transports: terrestrial stations log to a file,
    # the satellite downlink arrives as its own (much later) feed.
    run = regional_scenario(n_vessels=30, duration_s=3 * 3600.0, seed=31).run()
    terrestrial = [o for o in run.observations if o.source != "satellite"]
    satellite = [o for o in run.observations if o.source == "satellite"]
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".nmea", delete=False
    ) as fh:
        feed_path = fh.name
        write_nmea_file(terrestrial, fh)
    print(
        f"streaming {len(terrestrial)} terrestrial sentences from "
        f"{feed_path}\n     plus {len(satellite)} satellite sentences "
        "in-process, merged on reception time\n"
    )

    monitor = MaritimeMonitor(
        cep_patterns=[
            SequencePattern(
                name="repeated_silence",
                sequence=(EventKind.GAP, EventKind.GAP),
                window_s=4 * 3600.0,
            )
        ],
        specs=run.specs,
        weather=run.weather,
    )
    # attach(*sources): the merge holds each feed back by at most half
    # the reorder stage's lateness budget (the other half stays
    # reserved for the feeds' own reception latency), so cross-feed
    # disorder is repaired before detection.
    monitor.attach(
        NmeaFileSource(feed_path),
        IterableSource(satellite, name="satellite"),
    )

    # Console subscription: only the kinds a watch officer acts on —
    # synchronous, so a broken console fails the run loudly.
    def console(event):
        print(f"  {event.describe()}")

    monitor.subscribe(
        on_event=console,
        kinds=[EventKind.RENDEZVOUS, EventKind.COLLISION_RISK,
               EventKind.COMPLEX],
    )

    # Sinks: triaged alerts (sync), plus a JSONL archive of every
    # increment behind an async dispatcher — archival I/O may stall,
    # ingestion must not ("block" because an archive wants every
    # increment; "drop_oldest" suits freshest-picture consumers).
    alert_log = AlertLogSink()
    alert_log.attach(monitor.hub)
    archive = io.StringIO()
    jsonl = JsonlSink(archive)
    monitor.hub.subscribe(
        on_increment=jsonl.write_increment,
        async_dispatch=True, max_queue=64, overflow="block",
    )

    report = monitor.run(tick_s=600.0)

    print(f"\n{report.describe()}")
    print(
        f"tick latency: p95 {report.latency_quantile_s(0.95) * 1000:.1f} ms "
        f"over {report.n_increments} increments"
    )
    for stats in report.sources:
        print(
            f"feed {stats.name}: {stats.n_observations} observations, "
            f"{stats.n_dropped} dropped, {stats.n_rejected} rejected"
        )
    for i, sub in enumerate(report.subscriptions):
        mode = "async" if sub.async_dispatch else "sync"
        print(f"subscription {i} ({mode}): {sub.delivered}")
    print(f"alert log kept {len(alert_log.alerts)} triaged alerts:")
    for alert in alert_log.alerts[:5]:
        print(f"  {alert.render()}")
    print(f"jsonl archive: {jsonl.n_lines} lines, {archive.tell()} bytes")

    state = monitor.session.state
    overview = monitor.session.overview.snapshot(state)
    print("\n" + overview.headline())
    os.unlink(feed_path)


if __name__ == "__main__":
    main()
