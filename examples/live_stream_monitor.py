"""Live stream monitoring: incremental windows, sketches and CEP (§2-§3).

Unlike the batch pipeline, this example processes the feed *as a stream*:
sentences arrive in reception order, are decoded one by one, summarised
by sliding sketches (chattiest vessels, densest cells), windowed into
per-vessel sessions, and matched online against a complex-event pattern —
the "single pass, bounded memory" discipline of §2.1's in-situ vision.

Run:  python examples/live_stream_monitor.py
"""

from repro.ais.decoder import AisDecoder
from repro.ais.types import ClassBPositionReport, PositionReport
from repro.events import CepEngine, EventKind, SequencePattern
from repro.events.detectors import detect_gaps
from repro.geo import geohash_encode
from repro.simulation import regional_scenario
from repro.streaming import Record, Stream, session_windows
from repro.streaming.synopses import CountMinSketch, HeavyHitters
from repro.trajectory.points import TrackPoint, Trajectory


def main() -> None:
    run = regional_scenario(n_vessels=30, duration_s=3 * 3600.0, seed=31).run()
    print(f"replaying {len(run.observations)} sentences in reception order\n")

    decoder = AisDecoder()
    chattiest = HeavyHitters(k=5)
    cell_counts = CountMinSketch(width=2048, depth=4)
    cep = CepEngine(
        [
            SequencePattern(
                name="repeated_silence",
                sequence=(EventKind.GAP, EventKind.GAP),
                window_s=4 * 3600.0,
            )
        ]
    )

    # One pass over the feed: decode → sketch → per-vessel session windows.
    def position_records():
        for obs in run.observations:
            message = decoder.feed(obs.sentence, received_at=obs.t_received)
            if not isinstance(message, (PositionReport, ClassBPositionReport)):
                continue
            if not message.has_position:
                continue
            chattiest.add(message.mmsi)
            cell_counts.add(geohash_encode(message.lat, message.lon, 5))
            yield Record(
                obs.t_transmitted, message.mmsi,
                TrackPoint(obs.t_transmitted, message.lat, message.lon,
                           message.sog_knots, message.cog_deg),
            )

    sessions = session_windows(Stream(position_records()), gap_s=900.0)
    complex_hits = []
    n_sessions = 0
    for record in sessions:
        n_sessions += 1
        window = record.value
        points = sorted(window.values, key=lambda p: p.t)
        deduped = [
            p for i, p in enumerate(points) if i == 0 or p.t > points[i - 1].t
        ]
        if len(deduped) < 2:
            continue
        trajectory = Trajectory(record.key, deduped)
        for gap in detect_gaps(trajectory, min_gap_s=600.0):
            complex_hits.extend(cep.feed(gap))

    print(f"per-vessel sessions closed: {n_sessions}")
    print("\nchattiest vessels (Misra-Gries, 5 counters):")
    for mmsi, count in chattiest.top():
        name = run.specs[mmsi].name if mmsi in run.specs else "?"
        print(f"  {mmsi} ({name}): ≥{count} messages")

    print("\nbusiest 5-char geohash cells (count-min estimates):")
    seen_cells = {
        geohash_encode(tx.lat, tx.lon, 5) for tx in run.transmissions[::97]
    }
    top_cells = sorted(
        seen_cells, key=cell_counts.estimate, reverse=True
    )[:5]
    for cell in top_cells:
        print(f"  {cell}: ~{cell_counts.estimate(cell)} messages")

    print(f"\ncomplex events (repeated silence): {len(complex_hits)}")
    for event in complex_hits[:5]:
        print(f"  {event.describe()}")


if __name__ == "__main__":
    main()
