"""Live stream monitoring: the incremental pipeline on a live feed (§2-§3).

Unlike the batch replay, this example consumes the feed *as a stream*:
``MaritimePipeline.run_live`` slices the observations into micro-batches
of reception time and drives the same stage runtime the batch replay
uses — decode, reorder, reconstruct, synopses, integrate, fuse, detect,
forecast, overview — with bounded state ("single pass, bounded memory",
§2.1).  Each tick yields a ``PipelineIncrement``: the events discovered,
complex-event matches, forecast updates and monitor alarms of that tick,
which is what a real operator console would render.

Run:  python examples/live_stream_monitor.py
"""

from repro.core import MaritimePipeline
from repro.events import EventKind, SequencePattern
from repro.simulation import regional_scenario


def main() -> None:
    run = regional_scenario(n_vessels=30, duration_s=3 * 3600.0, seed=31).run()
    print(f"streaming {len(run.observations)} sentences in reception order\n")

    pipeline = MaritimePipeline(
        cep_patterns=[
            SequencePattern(
                name="repeated_silence",
                sequence=(EventKind.GAP, EventKind.GAP),
                window_s=4 * 3600.0,
            )
        ]
    )

    n_ticks = 0
    n_records = 0
    events_by_kind: dict[str, int] = {}
    complex_hits = []
    alarms = 0
    last_overview = None
    for increment in pipeline.replay_live(run, tick_s=600.0):
        n_ticks += 1
        n_records += increment.n_records
        for event in increment.new_events:
            events_by_kind[event.kind.value] = (
                events_by_kind.get(event.kind.value, 0) + 1
            )
        complex_hits.extend(increment.new_complex_events)
        alarms += len(increment.new_alarms)
        if increment.overview is not None:
            last_overview = increment.overview
        if increment.new_events or increment.new_complex_events:
            shown = ", ".join(
                e.describe() for e in increment.new_events[:2]
            )
            more = len(increment.new_events) - 2
            print(
                f"tick {n_ticks:>3} ({increment.n_records} records, "
                f"{increment.seconds * 1000:.0f} ms): {shown}"
                + (f" (+{more} more)" if more > 0 else "")
            )

    print(f"\nticks: {n_ticks}, records: {n_records}")
    print("events by kind:")
    for kind, count in sorted(events_by_kind.items()):
        print(f"  {kind}: {count}")
    print(f"monitor alarms: {alarms}")
    print(f"complex events (repeated silence): {len(complex_hits)}")
    for event in complex_hits[:5]:
        print(f"  {event.describe()}")
    if last_overview is not None:
        print("\n" + last_overview.headline())


if __name__ == "__main__":
    main()
