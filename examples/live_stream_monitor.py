"""Live stream monitoring: the monitoring service end to end (§2-§3).

Unlike the batch replay, this example consumes the feed *as a stream*
through the public service API: a ``MaritimeMonitor`` wires a *source*
(here the simulated feed written to an NMEA file with TAG-block
timestamps, replayed by ``NmeaFileSource`` — swap in
``NmeaTcpSource(host, port)`` for a real receiver) into the incremental
pipeline, and *subscriptions* fan the products out: an operator console
(filtered events), a triaged alert log, and a JSONL archive of every
increment — each consumer seeing only what it asked for.

Run:  python examples/live_stream_monitor.py
"""

import io
import os
import tempfile

from repro import MaritimeMonitor
from repro.events import EventKind, SequencePattern
from repro.simulation import regional_scenario
from repro.sinks import AlertLogSink, JsonlSink
from repro.sources import NmeaFileSource, write_nmea_file


def main() -> None:
    # A real deployment points NmeaFileSource at a receiver's log (tail
    # mode) or NmeaTcpSource at its socket; here we materialise the
    # simulated feed as the file a logger would have written.
    run = regional_scenario(n_vessels=30, duration_s=3 * 3600.0, seed=31).run()
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".nmea", delete=False
    ) as fh:
        feed_path = fh.name
        write_nmea_file(run.observations, fh)
    print(f"streaming {len(run.observations)} sentences from {feed_path}\n")

    monitor = MaritimeMonitor(
        cep_patterns=[
            SequencePattern(
                name="repeated_silence",
                sequence=(EventKind.GAP, EventKind.GAP),
                window_s=4 * 3600.0,
            )
        ],
        specs=run.specs,
        weather=run.weather,
    )
    monitor.attach(NmeaFileSource(feed_path))

    # Console subscription: only the kinds a watch officer acts on.
    def console(event):
        print(f"  {event.describe()}")

    monitor.subscribe(
        on_event=console,
        kinds=[EventKind.RENDEZVOUS, EventKind.COLLISION_RISK,
               EventKind.COMPLEX],
    )

    # Sinks: triaged alerts, plus a JSONL archive of every increment.
    alert_log = AlertLogSink()
    alert_log.attach(monitor.hub)
    archive = io.StringIO()
    jsonl = JsonlSink(archive)
    jsonl.attach(monitor.hub)

    report = monitor.run(tick_s=600.0)

    print(f"\n{report.describe()}")
    print(
        f"tick latency: p95 {report.latency_quantile_s(0.95) * 1000:.1f} ms "
        f"over {report.n_increments} increments"
    )
    print(f"alert log kept {len(alert_log.alerts)} triaged alerts:")
    for alert in alert_log.alerts[:5]:
        print(f"  {alert.render()}")
    print(f"jsonl archive: {jsonl.n_lines} lines, {archive.tell()} bytes")

    state = monitor.session.state
    overview = monitor.session.overview.snapshot(state)
    print("\n" + overview.headline())
    os.unlink(feed_path)


if __name__ == "__main__":
    main()
